"""Resilient training runtime: crash-safe fit checkpoints + recovery.

This module hardens :meth:`repro.nn.Trainer.fit` (the engine under the
§V-C / Fig. 15 continual-retraining loop) against the two failure
classes that previously destroyed a run:

* **Crashes** — :class:`CheckpointManager` serializes the *complete*
  epoch-boundary fit state (model parameters and buffers, optimizer
  slot buffers and step counts, LR-scheduler progress, early-stopping
  bookkeeping incl. the best-weights snapshot, the loss history and
  every RNG the loop consumes — the DataLoader's shuffle generator and
  the model's dropout generators) to a single atomically-replaced file.
  A fit killed at any point and resumed from its checkpoint produces
  **bit-identical** final parameters and loss history to an
  uninterrupted fit; the regression tests pin this byte-for-byte.
* **Divergence** — :class:`DivergenceGuard` turns non-finite losses,
  NaN/inf parameters and loss-spike blowups from hard crashes into a
  bounded recovery loop: roll back to the last good checkpoint (or the
  pre-epoch snapshot when no checkpoint exists), scale the learning
  rate down, and retry — up to :attr:`RecoveryPolicy.max_recoveries`
  times before :class:`TrainingDivergedError` surfaces.

Checkpoint file format (version 1)::

    b"REPRO-FITCKPT/1\\n"            magic + format version
    <32 hex chars>b"\\n"             blake2b-128 digest of the payload
    <payload>                        npz archive (arrays + JSON meta)

The digest covers every payload byte, so truncated or bit-flipped
checkpoints always raise :class:`FitCheckpointError` — they can never
load silently.  Writes go through
:func:`repro.obs.fsio.atomic_write_bytes`, so the previous checkpoint
survives a crash (or an injected ``ckpt_write_fail`` fault) mid-write.
"""

from __future__ import annotations

import hashlib
import io
import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import obs
from repro.obs.fsio import atomic_write_bytes

__all__ = [
    "CKPT_MAGIC",
    "FitCheckpointError",
    "CheckpointWriteError",
    "DivergenceError",
    "TrainingDivergedError",
    "RecoveryPolicy",
    "FitState",
    "capture_fit_state",
    "restore_fit_state",
    "encode_fit_state",
    "decode_fit_state",
    "CheckpointManager",
    "DivergenceGuard",
]

CKPT_MAGIC = b"REPRO-FITCKPT/1\n"
_META_KEY = "__meta__"


class FitCheckpointError(RuntimeError):
    """A fit checkpoint is missing, truncated, corrupt, or inconsistent
    with the trainer it is being restored into."""


class CheckpointWriteError(OSError):
    """A checkpoint write failed (organic I/O error or injected fault)."""


class DivergenceError(RuntimeError):
    """Training blew up: NaN/inf parameters or a loss spike."""


class TrainingDivergedError(RuntimeError):
    """Divergence persisted past the bounded recovery budget."""


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs for :class:`DivergenceGuard`.

    ``spike_factor`` compares each epoch's training loss against the
    median of the trailing ``spike_window`` epochs; ``None`` disables
    spike detection (non-finite losses and parameters are always
    caught).
    """

    max_recoveries: int = 3
    lr_factor: float = 0.5
    min_lr: float = 1e-7
    spike_factor: float | None = 50.0
    spike_window: int = 5
    check_params: bool = True

    def __post_init__(self) -> None:
        if self.max_recoveries < 1:
            raise ValueError("max_recoveries must be >= 1")
        if not 0.0 < self.lr_factor < 1.0:
            raise ValueError("lr_factor must be in (0, 1)")
        if self.spike_factor is not None and self.spike_factor <= 1.0:
            raise ValueError("spike_factor must exceed 1")
        if self.spike_window < 1:
            raise ValueError("spike_window must be >= 1")


@dataclass
class FitState:
    """Complete epoch-boundary snapshot of a ``Trainer.fit`` in flight."""

    epoch_next: int
    model: dict[str, np.ndarray]
    optimizer: dict
    scheduler: dict | None
    early_stopping: dict | None
    history_train: list[float]
    history_val: list[float]
    #: ``bit_generator.state`` dicts for every generator the loop
    #: consumes, in :func:`_generators` order.
    rngs: list[dict]
    recoveries: int = 0
    stopped: bool = False


def _generators(model, train_loader) -> list[np.random.Generator]:
    """Every RNG the fit loop draws from, deduplicated, in stable order.

    The DataLoader's shuffle generator comes first, then each module's
    ``rng`` attribute in sub-tree traversal order.  Modules routinely
    share one generator (``_dense_blocks`` passes the same ``rng`` into
    every Dropout), so duplicates are dropped by identity.
    """
    gens: list[np.random.Generator] = []
    seen: set[int] = set()

    def add(gen) -> None:
        if isinstance(gen, np.random.Generator) and id(gen) not in seen:
            seen.add(id(gen))
            gens.append(gen)

    if train_loader is not None:
        add(getattr(train_loader, "rng", None))
    for module in model.modules():
        add(getattr(module, "rng", None))
    return gens


def capture_fit_state(
    trainer,
    train_loader,
    history,
    early_stopping,
    *,
    epoch_next: int,
    recoveries: int = 0,
    stopped: bool = False,
) -> FitState:
    """Deep-copy everything :func:`restore_fit_state` needs."""
    return FitState(
        epoch_next=epoch_next,
        model=trainer.model.state_dict(),
        optimizer=trainer.optimizer.state_dict(),
        scheduler=(
            trainer.scheduler.state_dict()
            if trainer.scheduler is not None else None
        ),
        early_stopping=(
            early_stopping.state_dict() if early_stopping is not None else None
        ),
        history_train=list(history.train_loss),
        history_val=list(history.val_loss),
        rngs=[
            json.loads(json.dumps(g.bit_generator.state))
            for g in _generators(trainer.model, train_loader)
        ],
        recoveries=recoveries,
        stopped=stopped,
    )


def restore_fit_state(trainer, train_loader, history, early_stopping,
                      state: FitState) -> None:
    """Rewind a trainer (and its companions) to ``state``, in place."""
    trainer.model.load_state_dict(state.model)
    trainer.optimizer.load_state_dict(state.optimizer)
    if (trainer.scheduler is None) != (state.scheduler is None):
        raise FitCheckpointError(
            "checkpoint/trainer scheduler mismatch: one has a scheduler, "
            "the other does not"
        )
    if trainer.scheduler is not None:
        trainer.scheduler.load_state_dict(state.scheduler)
    if (early_stopping is None) != (state.early_stopping is None):
        raise FitCheckpointError(
            "checkpoint/trainer early-stopping mismatch: one tracks early "
            "stopping, the other does not"
        )
    if early_stopping is not None:
        early_stopping.load_state_dict(state.early_stopping)
    history.train_loss[:] = list(state.history_train)
    history.val_loss[:] = list(state.history_val)
    gens = _generators(trainer.model, train_loader)
    if len(gens) != len(state.rngs):
        raise FitCheckpointError(
            f"checkpoint holds {len(state.rngs)} RNG states, the trainer "
            f"exposes {len(gens)} generators"
        )
    for gen, rng_state in zip(gens, state.rngs):
        try:
            gen.bit_generator.state = rng_state
        except (KeyError, TypeError, ValueError) as error:
            raise FitCheckpointError(
                f"incompatible RNG state in checkpoint: {error}"
            ) from error


# -- wire format --------------------------------------------------------------

def encode_fit_state(state: FitState) -> bytes:
    """Serialize a :class:`FitState` into the digested checkpoint format."""
    arrays: dict[str, np.ndarray] = {}
    for key, value in state.model.items():
        arrays[f"model/{key}"] = np.asarray(value)
    slot_shapes: dict[str, int] = {}
    for slot, slot_arrays in state.optimizer.get("slots", {}).items():
        slot_shapes[slot] = len(slot_arrays)
        for i, value in enumerate(slot_arrays):
            arrays[f"opt/{slot}/{i}"] = np.asarray(value)
    es_meta = None
    if state.early_stopping is not None:
        es_meta = {
            k: v for k, v in state.early_stopping.items() if k != "best_state"
        }
        best_state = state.early_stopping.get("best_state")
        es_meta["has_best_state"] = best_state is not None
        if best_state is not None:
            for key, value in best_state.items():
                arrays[f"es/{key}"] = np.asarray(value)
    meta = {
        "version": 1,
        "epoch_next": state.epoch_next,
        "model_keys": sorted(state.model),
        "optimizer": {
            "lr": state.optimizer["lr"],
            "extra": state.optimizer.get("extra", {}),
            "slots": slot_shapes,
        },
        "scheduler": state.scheduler,
        "early_stopping": es_meta,
        "history_train": state.history_train,
        "history_val": state.history_val,
        "rngs": state.rngs,
        "recoveries": state.recoveries,
        "stopped": state.stopped,
    }
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    payload = buffer.getvalue()
    digest = hashlib.blake2b(payload, digest_size=16).hexdigest()
    return CKPT_MAGIC + digest.encode("ascii") + b"\n" + payload


def decode_fit_state(blob: bytes) -> FitState:
    """Parse + verify checkpoint bytes; any corruption raises."""
    if not blob.startswith(CKPT_MAGIC):
        raise FitCheckpointError(
            "not a fit checkpoint (bad magic; wrong file or truncated header)"
        )
    rest = blob[len(CKPT_MAGIC):]
    newline = rest.find(b"\n")
    if newline < 0:
        raise FitCheckpointError("truncated fit checkpoint (no digest line)")
    digest, payload = rest[:newline], rest[newline + 1:]
    actual = hashlib.blake2b(payload, digest_size=16).hexdigest()
    if digest.decode("ascii", errors="replace") != actual:
        raise FitCheckpointError(
            "corrupt fit checkpoint (payload digest mismatch)"
        )
    try:
        with np.load(io.BytesIO(payload), allow_pickle=False) as archive:
            arrays = {key: archive[key] for key in archive.files}
        meta = json.loads(bytes(arrays.pop(_META_KEY)).decode("utf-8"))
    except Exception as error:  # digest passed yet payload unreadable
        raise FitCheckpointError(
            f"unreadable fit checkpoint payload: {error}"
        ) from error
    if meta.get("version") != 1:
        raise FitCheckpointError(
            f"unsupported fit-checkpoint version {meta.get('version')!r}"
        )
    model = {
        key: arrays[f"model/{key}"] for key in meta["model_keys"]
    }
    optimizer = {
        "lr": meta["optimizer"]["lr"],
        "extra": meta["optimizer"]["extra"],
        "slots": {
            slot: [arrays[f"opt/{slot}/{i}"] for i in range(count)]
            for slot, count in meta["optimizer"]["slots"].items()
        },
    }
    es_meta = meta["early_stopping"]
    early_stopping = None
    if es_meta is not None:
        early_stopping = {
            k: v for k, v in es_meta.items() if k != "has_best_state"
        }
        early_stopping["best_state"] = (
            {
                key[len("es/"):]: value
                for key, value in arrays.items()
                if key.startswith("es/")
            }
            if es_meta["has_best_state"] else None
        )
    return FitState(
        epoch_next=int(meta["epoch_next"]),
        model=model,
        optimizer=optimizer,
        scheduler=meta["scheduler"],
        early_stopping=early_stopping,
        history_train=[float(x) for x in meta["history_train"]],
        history_val=[float(x) for x in meta["history_val"]],
        rngs=meta["rngs"],
        recoveries=int(meta["recoveries"]),
        stopped=bool(meta["stopped"]),
    )


# -- checkpoint manager -------------------------------------------------------

class CheckpointManager:
    """Epoch-granular checkpoint writer/reader for one fit.

    ``interval`` saves every N-th epoch boundary (the final state is
    always saved); ``chaos`` is an optional trainer-fault hook
    (:class:`repro.faults.training.TrainingChaos`) whose injected
    ``ckpt_write_fail`` windows exercise the degraded path: a failed
    write is counted and *skipped* — the previous checkpoint survives
    and training continues.
    """

    def __init__(self, path, interval: int = 1, chaos=None,
                 name: str = "model") -> None:
        if interval < 1:
            raise ValueError("checkpoint interval must be >= 1")
        self.path = Path(path)
        self.interval = interval
        self.chaos = chaos
        self.name = name
        self.saves = 0
        self.write_failures = 0

    def exists(self) -> bool:
        return self.path.exists()

    def save(self, state: FitState, *, force: bool = False) -> bool:
        """Atomically persist ``state``; returns False on skip/failure."""
        if not force and state.epoch_next % self.interval != 0:
            return False
        try:
            if self.chaos is not None:
                self.chaos.checkpoint_write(state.epoch_next)
            atomic_write_bytes(self.path, encode_fit_state(state))
        except OSError as error:  # CheckpointWriteError is an OSError
            self.write_failures += 1
            if obs.enabled():
                obs.metrics().counter(
                    "nn_checkpoint_write_failures_total",
                    "Fit-checkpoint writes that failed (previous kept)",
                    labels=("model",),
                ).labels(model=self.name).inc()
                obs.tracer().instant(
                    "nn.checkpoint_write_failed", category="nn.resilience",
                    model=self.name, epoch_next=state.epoch_next,
                    error=str(error),
                )
            return False
        self.saves += 1
        if obs.enabled():
            obs.metrics().counter(
                "nn_checkpoints_saved_total",
                "Fit checkpoints successfully written",
                labels=("model",),
            ).labels(model=self.name).inc()
        return True

    def load(self) -> FitState:
        """Read + verify the checkpoint; raises if missing or corrupt."""
        try:
            blob = self.path.read_bytes()
        except FileNotFoundError:
            raise FitCheckpointError(
                f"no fit checkpoint at {self.path}"
            ) from None
        return decode_fit_state(blob)

    def try_load(self) -> FitState | None:
        """The checkpoint, or ``None`` when the file does not exist.

        A file that exists but fails verification still raises — a
        corrupt checkpoint must never be silently ignored.
        """
        if not self.exists():
            return None
        return self.load()


# -- divergence guard ---------------------------------------------------------

class DivergenceGuard:
    """Rollback + LR-reduction recovery loop around ``Trainer.fit``."""

    def __init__(self, policy: RecoveryPolicy, name: str = "model",
                 recoveries: int = 0) -> None:
        self.policy = policy
        self.name = name
        self.recoveries = recoveries
        #: (epoch, cause, new_lr) recovery history for audit/tests.
        self.events: list[tuple[int, str, float]] = []

    def check(self, model, train_loss: float, history) -> None:
        """Raise :class:`DivergenceError` on blown-up parameters/losses.

        Called after a successful epoch (non-finite *losses* inside the
        epoch already raise in ``train_epoch``); catches NaN/inf that
        reached the parameters on the final batches and loss spikes.
        """
        policy = self.policy
        if policy.check_params:
            for param in model.parameters():
                if not np.all(np.isfinite(param.value)):
                    raise DivergenceError(
                        f"non-finite values in parameter {param.name!r}"
                    )
        if policy.spike_factor is not None and history.train_loss:
            recent = history.train_loss[-policy.spike_window:]
            reference = float(np.median(recent))
            if reference > 0.0 and train_loss > policy.spike_factor * reference:
                raise DivergenceError(
                    f"training-loss spike: {train_loss:.4g} exceeds "
                    f"{policy.spike_factor:g}x the trailing median "
                    f"{reference:.4g}"
                )

    def recover(
        self,
        trainer,
        train_loader,
        history,
        early_stopping,
        checkpoint: CheckpointManager | None,
        snapshot: FitState | None,
        error: Exception,
        epoch: int,
    ) -> int:
        """Roll back, reduce the LR, and return the epoch to retry.

        Prefers the last on-disk checkpoint (survives multi-epoch
        damage); falls back to the caller's pre-epoch snapshot.  Raises
        :class:`TrainingDivergedError` once the budget is exhausted.
        """
        self.recoveries += 1
        if self.recoveries > self.policy.max_recoveries:
            raise TrainingDivergedError(
                f"training diverged {self.recoveries} times "
                f"(budget {self.policy.max_recoveries}); last cause: {error}"
            ) from error
        candidates = [snapshot] if snapshot is not None else []
        if checkpoint is not None:
            try:
                loaded = checkpoint.try_load()
            except FitCheckpointError:
                loaded = None  # fall back to the in-memory snapshot
            if loaded is not None:
                candidates.append(loaded)
        # Prefer whichever good state lost the fewest epochs.
        state = max(candidates, key=lambda s: s.epoch_next, default=None)
        restored_epoch = epoch
        if state is not None:
            restore_fit_state(trainer, train_loader, history, early_stopping,
                              state)
            restored_epoch = state.epoch_next
        new_lr = max(trainer.optimizer.lr * self.policy.lr_factor,
                     self.policy.min_lr)
        trainer.optimizer.lr = new_lr
        if trainer.scheduler is not None:
            # Schedulers recompute the LR from base_lr every step, so the
            # reduction must land there or the next step would undo it.
            trainer.scheduler.base_lr = max(
                trainer.scheduler.base_lr * self.policy.lr_factor,
                self.policy.min_lr,
            )
        self.events.append((epoch, type(error).__name__, new_lr))
        if obs.enabled():
            obs.metrics().counter(
                "nn_divergence_recoveries_total",
                "Divergence recoveries (rollback + LR reduction)",
                labels=("model", "cause"),
            ).labels(model=self.name, cause=type(error).__name__).inc()
            obs.tracer().instant(
                "nn.divergence_recovery", category="nn.resilience",
                model=self.name, epoch=epoch, cause=type(error).__name__,
                detail=str(error), lr=new_lr, recovery=self.recoveries,
            )
        live = obs.live_session()
        if live is not None:
            live.note_event(
                "training", model=self.name, phase="recovery", epoch=epoch,
                cause=type(error).__name__, lr=new_lr,
            )
        return restored_epoch
