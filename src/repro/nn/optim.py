"""Gradient-descent optimizers operating on :class:`Parameter` objects."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "RMSprop"]


class Optimizer:
    """Base optimizer; subclasses implement :meth:`_update_one`.

    Optimizers are checkpointable: :meth:`state_dict` captures the LR,
    any scalar bookkeeping (:meth:`_extra_state`) and every per-parameter
    slot array (:meth:`_slots` — momentum/moment buffers), so a training
    run restored from a checkpoint continues bit-identically.
    """

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        for index, param in enumerate(self.params):
            self._update_one(index, param)

    def _update_one(self, index: int, param: Parameter) -> None:
        raise NotImplementedError

    # -- checkpointing -------------------------------------------------------
    def _slots(self) -> dict[str, list[np.ndarray]]:
        """Live per-parameter slot buffers, by slot name (no copies)."""
        return {}

    def _extra_state(self) -> dict:
        """JSON-safe scalar state beyond the LR (e.g. Adam's step count)."""
        return {}

    def _load_extra(self, extra: dict) -> None:
        pass

    def state_dict(self) -> dict:
        """Copies of the LR, scalar state and slot buffers."""
        return {
            "lr": self.lr,
            "extra": dict(self._extra_state()),
            "slots": {
                name: [a.copy() for a in arrays]
                for name, arrays in self._slots().items()
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output; slot shapes must match."""
        slots = state.get("slots", {})
        own = self._slots()
        if set(slots) != set(own):
            raise ValueError(
                f"optimizer slot mismatch: saved {sorted(slots)}, "
                f"expected {sorted(own)}"
            )
        for name, arrays in slots.items():
            targets = own[name]
            if len(arrays) != len(targets):
                raise ValueError(
                    f"slot {name!r} holds {len(arrays)} arrays, "
                    f"optimizer has {len(targets)} parameters"
                )
            for target, value in zip(targets, arrays):
                value = np.asarray(value, dtype=np.float64)
                if target.shape != value.shape:
                    raise ValueError(
                        f"slot {name!r} shape mismatch: "
                        f"{target.shape} vs {value.shape}"
                    )
                target[...] = value
        self.lr = float(state["lr"])
        self._load_extra(state.get("extra", {}))


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if momentum < 0 or weight_decay < 0:
            raise ValueError("momentum and weight_decay must be non-negative")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in self.params]

    def _update_one(self, index: int, param: Parameter) -> None:
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.value
        if self.momentum:
            self._velocity[index] = self.momentum * self._velocity[index] + grad
            grad = self._velocity[index]
        param.value -= self.lr * grad

    def _slots(self) -> dict[str, list[np.ndarray]]:
        return {"velocity": self._velocity}


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) — the optimizer used to train both models."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ValueError("betas must be in [0, 1)")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.value) for p in self.params]
        self._v = [np.zeros_like(p.value) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        super().step()

    def _update_one(self, index: int, param: Parameter) -> None:
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.value
        m = self._m[index]
        v = self._v[index]
        m[...] = self.beta1 * m + (1 - self.beta1) * grad
        v[...] = self.beta2 * v + (1 - self.beta2) * grad**2
        m_hat = m / (1 - self.beta1**self._t)
        v_hat = v / (1 - self.beta2**self._t)
        param.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _slots(self) -> dict[str, list[np.ndarray]]:
        return {"m": self._m, "v": self._v}

    def _extra_state(self) -> dict:
        return {"t": self._t}

    def _load_extra(self, extra: dict) -> None:
        self._t = int(extra["t"])


class RMSprop(Optimizer):
    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        alpha: float = 0.99,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params, lr)
        if not 0 <= alpha < 1:
            raise ValueError("alpha must be in [0, 1)")
        self.alpha = alpha
        self.eps = eps
        self._sq = [np.zeros_like(p.value) for p in self.params]

    def _update_one(self, index: int, param: Parameter) -> None:
        sq = self._sq[index]
        sq[...] = self.alpha * sq + (1 - self.alpha) * param.grad**2
        param.value -= self.lr * param.grad / (np.sqrt(sq) + self.eps)

    def _slots(self) -> dict[str, list[np.ndarray]]:
        return {"sq": self._sq}
