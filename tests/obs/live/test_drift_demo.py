"""Acceptance: the drift demo degrades a predictor mid-run and the
Page–Hinkley alarm fires within a bounded number of simulated seconds,
visible in both the stream and the metrics dump."""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[3]


class TestDriftAlarmDemo:
    def test_alarm_fires_within_bound_and_lands_in_artifacts(self, tmp_path):
        out = tmp_path / "demo"
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        result = subprocess.run(
            [
                sys.executable,
                str(REPO / "examples" / "drift_alarm_demo.py"),
                "--out", str(out),
                "--duration", "1800",
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        summary = json.loads(result.stdout.strip().splitlines()[-1])
        assert summary["alarms"] >= 1
        # Bounded detection: within 600 simulated seconds of the
        # degradation (min_samples joined decisions, each bounded by a
        # BE runtime).
        assert 0 <= summary["detection_lag_s"] <= 600

        # The alarm is visible in the stream ...
        stream = [
            json.loads(line)
            for line in (out / "stream.jsonl").read_text().splitlines()
        ]
        drift_events = [
            r for r in stream if r.get("t") == "event" and r.get("kind") == "drift"
        ]
        assert drift_events
        assert stream[-1]["t"] == "end"

        # ... and in the metrics dump.
        metrics = json.loads((out / "metrics.json").read_text())
        families = {f["name"]: f for f in metrics["metrics"]}
        alarms = families["predictor_drift_alarms_total"]
        assert sum(s["value"] for s in alarms["series"]) >= 1
