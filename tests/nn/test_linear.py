import numpy as np
import pytest

from repro.nn import Linear
from tests.helpers import check_input_grad, check_param_grads


class TestForward:
    def test_matches_manual_affine(self):
        rng = np.random.default_rng(0)
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        expected = x @ layer.weight.value.T + layer.bias.value
        assert np.allclose(layer.forward(x), expected)

    def test_no_bias(self):
        rng = np.random.default_rng(1)
        layer = Linear(3, 2, bias=False, rng=rng)
        assert layer.bias is None
        x = rng.normal(size=(4, 3))
        assert np.allclose(layer.forward(x), x @ layer.weight.value.T)

    def test_3d_input_broadcasts_over_time(self):
        rng = np.random.default_rng(2)
        layer = Linear(5, 3, rng=rng)
        x = rng.normal(size=(2, 7, 5))
        out = layer.forward(x)
        assert out.shape == (2, 7, 3)
        assert np.allclose(out[1, 3], layer.forward(x[1, 3:4])[0])

    def test_wrong_feature_dim_raises(self):
        layer = Linear(3, 2)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((4, 5)))

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            Linear(0, 2)
        with pytest.raises(ValueError):
            Linear(2, -1)


class TestBackward:
    def test_param_grads_numerically(self):
        rng = np.random.default_rng(3)
        layer = Linear(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        y = rng.normal(size=(5, 3))
        check_param_grads(layer, (x,), y)

    def test_input_grad_numerically(self):
        rng = np.random.default_rng(4)
        layer = Linear(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        y = rng.normal(size=(5, 3))
        check_input_grad(layer, x, y)

    def test_3d_param_grads_numerically(self):
        rng = np.random.default_rng(5)
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(2, 4, 3))
        y = rng.normal(size=(2, 4, 2))
        check_param_grads(layer, (x,), y)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Linear(2, 2).backward(np.zeros((1, 2)))

    def test_grads_accumulate_across_calls(self):
        rng = np.random.default_rng(6)
        layer = Linear(2, 2, rng=rng)
        x = rng.normal(size=(3, 2))
        layer.forward(x)
        layer.backward(np.ones((3, 2)))
        first = layer.weight.grad.copy()
        layer.forward(x)
        layer.backward(np.ones((3, 2)))
        assert np.allclose(layer.weight.grad, 2 * first)
