import numpy as np
import pytest

from repro.nn import GRU, StackedGRU
from tests.helpers import check_input_grad, check_param_grads


class TestGRUForward:
    def test_output_shapes(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 6, 4))
        seq = GRU(4, 5, return_sequences=True, rng=rng)
        last = GRU(4, 5, return_sequences=False, rng=rng)
        assert seq.forward(x).shape == (3, 6, 5)
        assert last.forward(x).shape == (3, 5)

    def test_last_of_sequence_equals_last_state(self):
        rng = np.random.default_rng(1)
        a = GRU(3, 4, return_sequences=True, rng=np.random.default_rng(2))
        b = GRU(3, 4, return_sequences=False, rng=np.random.default_rng(2))
        x = rng.normal(size=(2, 5, 3))
        assert np.allclose(a.forward(x)[:, -1], b.forward(x))

    def test_hidden_bounded(self):
        rng = np.random.default_rng(3)
        gru = GRU(3, 8, rng=rng)
        x = 50.0 * rng.normal(size=(2, 10, 3))
        out = gru.forward(x)
        assert np.all(np.abs(out) <= 1.0)
        assert np.all(np.isfinite(out))

    def test_zero_update_gate_keeps_candidate(self):
        # With z ~ 0 (large negative update bias) h_t ~ candidate.
        gru = GRU(2, 3, return_sequences=False, rng=np.random.default_rng(4))
        gru.bias_x.value[3:6] = -50.0  # update-gate slice
        x = np.random.default_rng(5).normal(size=(1, 1, 2))
        out = gru.forward(x)
        # h_prev = 0, z ~ 0 -> h = candidate = tanh(Wn x) (r gates only
        # the recurrent term, which is zero at t=0).
        expected = np.tanh(x[:, 0, :] @ gru.w_x.value[6:9].T + gru.bias_x.value[6:9])
        assert np.allclose(out, expected, atol=1e-9)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            GRU(3, 4).forward(np.zeros((2, 5)))
        with pytest.raises(ValueError):
            GRU(0, 4)


class TestGRUBackward:
    @pytest.mark.parametrize("return_sequences", [True, False])
    def test_param_grads_numerically(self, return_sequences):
        rng = np.random.default_rng(6)
        gru = GRU(3, 4, return_sequences=return_sequences, rng=rng)
        x = rng.normal(size=(2, 6, 3))
        shape = (2, 6, 4) if return_sequences else (2, 4)
        y = rng.normal(size=shape)
        check_param_grads(gru, (x,), y, tol=1e-5)

    def test_input_grad_numerically(self):
        rng = np.random.default_rng(7)
        gru = GRU(3, 4, return_sequences=False, rng=rng)
        x = rng.normal(size=(2, 5, 3))
        y = rng.normal(size=(2, 4))
        check_input_grad(gru, x, y, tol=1e-5)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            GRU(2, 2).backward(np.zeros((1, 2)))


class TestStackedGRU:
    def test_wiring(self):
        stack = StackedGRU(7, 16, num_layers=3, return_sequences=False)
        assert len(stack) == 3
        assert stack[0].return_sequences and not stack[2].return_sequences

    def test_param_grads_numerically(self):
        rng = np.random.default_rng(8)
        stack = StackedGRU(2, 3, num_layers=2, return_sequences=False, rng=rng)
        x = rng.normal(size=(2, 4, 2))
        y = rng.normal(size=(2, 3))
        check_param_grads(stack, (x,), y, tol=1e-5, n_checks=3)

    def test_fewer_parameters_than_lstm(self):
        from repro.nn import StackedLSTM

        gru = StackedGRU(7, 32, num_layers=2)
        lstm = StackedLSTM(7, 32, num_layers=2)
        assert gru.num_parameters() < lstm.num_parameters()

    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            StackedGRU(2, 3, num_layers=0)
