"""Online predictive monitoring with the Watcher and Predictor.

Demonstrates the run-time loop of Fig. 7: a Watcher attached to a live
cluster streams counter samples; when a candidate application arrives,
the Predictor forecasts the system state over the next horizon window
and estimates the application's performance under both memory modes —
the inputs to the Adrias placement decision.

Usage:  python examples/online_prediction.py
"""

from repro.cluster import ClusterEngine, ScenarioConfig, generate_arrivals
from repro.orchestrator import TrainingBudget, train_predictor
from repro.telemetry import Watcher
from repro.workloads import MemoryMode, WorkloadKind, spark_profile

HISTORY_S = 120.0


def main() -> None:
    print("training a quick predictor (one-off, ~1 minute)...")
    predictor = train_predictor(TrainingBudget.quick())

    engine = ClusterEngine()
    watcher = Watcher()
    watcher.attach(engine)

    # Generate background load from a moderate scenario.
    arrivals = generate_arrivals(
        ScenarioConfig(duration_s=600.0, spawn_interval=(5, 40), seed=77)
    )
    candidates = ("nweight", "gmm", "lr", "pca")
    next_check = 200.0

    for arrival in arrivals:
        gap = arrival.time - engine.now
        if gap > 0:
            engine.run_for(gap)
        mode = arrival.mode if arrival.mode is not None else MemoryMode.LOCAL
        try:
            engine.deploy(arrival.profile, mode, duration_s=arrival.duration_s)
        except Exception:
            continue

        if engine.now >= next_check:
            next_check += 200.0
            history = watcher.history(HISTORY_S)
            s_hat = predictor.predict_system_state(history)
            print(f"\n=== t={engine.now:.0f}s, "
                  f"{len(engine.running)} apps running ===")
            print("predicted mean link latency over next 120 s: "
                  f"{s_hat[-1]:.0f} cycles")
            for name in candidates:
                profile = spark_profile(name)
                estimates = predictor.predict_both_modes(profile, history)
                local = estimates[MemoryMode.LOCAL]
                remote = estimates[MemoryMode.REMOTE]
                verdict = "remote OK" if local >= 0.8 * remote else "keep local"
                print(f"  {name:8s} local≈{local:7.1f}s remote≈{remote:7.1f}s"
                      f"  -> {verdict}")

    print("\ndone: predictions tracked the live congestion of the cluster")


if __name__ == "__main__":
    main()
