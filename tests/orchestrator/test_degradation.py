"""AdriasPolicy graceful degradation: deadline, breaker, fallback ladder."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.cluster.engine import ClusterEngine
from repro.faults.breaker import CircuitState
from repro.faults.errors import InferenceTimeout
from repro.orchestrator.policies import (
    AdriasPolicy,
    AllLocalPolicy,
    InterferenceThresholdPolicy,
)
from repro.workloads import MemoryMode, spark_profile
from repro.workloads.ibench import IBENCH


class StubPredictor:
    """Scriptable predictor: healthy estimates, NaNs, or timeouts."""

    def __init__(self, behavior="healthy"):
        self.behavior = behavior
        self.config = SimpleNamespace(history_s=30.0)
        self.calls = 0

    def has_signature(self, profile):
        return True

    def attach(self, engine):
        pass

    def predict_both_modes(self, profile, history, deadline_s=None):
        self.calls += 1
        if self.behavior == "timeout":
            raise InferenceTimeout(latency_s=5.0, deadline_s=deadline_s or 1.0)
        if self.behavior == "nan":
            return {MemoryMode.LOCAL: float("nan"), MemoryMode.REMOTE: 40.0}
        return {MemoryMode.LOCAL: 30.0, MemoryMode.REMOTE: 40.0}


@pytest.fixture
def engine():
    return ClusterEngine()


@pytest.fixture
def profile():
    return spark_profile("scan")


class TestInterferenceThresholdPolicy:
    def test_offloads_on_idle_link(self, engine, profile):
        policy = InterferenceThresholdPolicy(max_link_utilization=0.7)
        assert policy.decide(profile, engine) is MemoryMode.REMOTE

    def test_keeps_local_on_busy_link(self, engine, profile):
        # Two memBw trashers push the idle link well past 0.2 utilization.
        for _ in range(2):
            engine.deploy(IBENCH["memBw"], MemoryMode.REMOTE, duration_s=500.0)
        policy = InterferenceThresholdPolicy(max_link_utilization=0.2)
        assert policy.decide(profile, engine) is MemoryMode.LOCAL

    def test_interference_stays_local(self, engine):
        policy = InterferenceThresholdPolicy()
        assert policy.decide(IBENCH["memBw"], engine) is MemoryMode.LOCAL

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            InterferenceThresholdPolicy(max_link_utilization=0.0)


class TestBreakerIntegration:
    def test_healthy_path_keeps_circuit_closed(self, engine, profile):
        policy = AdriasPolicy(StubPredictor("healthy"), beta=0.8)
        mode = policy.decide(profile, engine)
        # 30 < 0.8 * 40 -> local wins the beta-slack comparison.
        assert mode is MemoryMode.LOCAL
        assert policy.breaker.state is CircuitState.CLOSED
        assert policy.degraded_decisions == 0

    def test_timeouts_open_the_circuit(self, engine, profile):
        predictor = StubPredictor("timeout")
        policy = AdriasPolicy(predictor, failure_threshold=3)
        for _ in range(3):
            policy.decide(profile, engine)
        assert policy.breaker.state is CircuitState.OPEN
        assert policy.degraded_decisions == 3
        # While open the predictor is not consulted at all.
        calls_before = predictor.calls
        policy.decide(profile, engine)
        assert predictor.calls == calls_before

    def test_nan_estimates_count_as_failures(self, engine, profile):
        policy = AdriasPolicy(StubPredictor("nan"), failure_threshold=2)
        policy.decide(profile, engine)
        policy.decide(profile, engine)
        assert policy.breaker.state is CircuitState.OPEN

    def test_circuit_recloses_after_recovery(self, engine, profile):
        predictor = StubPredictor("timeout")
        policy = AdriasPolicy(
            predictor, failure_threshold=2, cooldown_s=50.0
        )
        policy.decide(profile, engine)
        policy.decide(profile, engine)
        assert policy.breaker.state is CircuitState.OPEN
        predictor.behavior = "healthy"  # the fault window closes
        engine.run_for(60.0)
        policy.decide(profile, engine)  # half-open probe succeeds
        assert policy.breaker.state is CircuitState.CLOSED
        arcs = [(old, new) for _, old, new in policy.breaker.transitions]
        assert arcs == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ]


class TestFallbackLadder:
    def test_fallback_decision_is_audited(self, engine, profile):
        policy = AdriasPolicy(StubPredictor("timeout"))
        policy.decide(profile, engine)
        detail = policy._audit_detail()
        assert detail["reason"].startswith("fallback:")
        assert detail["cause"] == "InferenceTimeout"
        assert "circuit" in detail

    def test_default_ladder_uses_interference_heuristic(self, engine, profile):
        policy = AdriasPolicy(StubPredictor("timeout"))
        # Idle link -> the interference-threshold rung still offloads.
        assert policy.decide(profile, engine) is MemoryMode.REMOTE

    def test_custom_ladder(self, engine, profile):
        policy = AdriasPolicy(
            StubPredictor("timeout"), fallback=(AllLocalPolicy(),)
        )
        assert policy.decide(profile, engine) is MemoryMode.LOCAL
        assert policy._audit_detail()["reason"] == "fallback:all-local"

    def test_exhausted_ladder_ends_static_local(self, engine, profile):
        policy = AdriasPolicy(StubPredictor("timeout"), fallback=())
        assert policy.decide(profile, engine) is MemoryMode.LOCAL
        assert policy._audit_detail()["reason"] == "fallback:static-local"

    def test_broken_rung_is_skipped(self, engine, profile):
        class BrokenPolicy:
            name = "broken"

            def decide(self, profile, engine):
                raise RuntimeError("rung down too")

        policy = AdriasPolicy(
            StubPredictor("timeout"),
            fallback=(BrokenPolicy(), AllLocalPolicy()),
        )
        assert policy.decide(profile, engine) is MemoryMode.LOCAL
        assert policy._audit_detail()["reason"] == "fallback:all-local"


class TestObsIntegration:
    def test_degraded_decision_lands_in_audit_log(self, engine, profile):
        # Regression: the fallback detail carries cause/circuit fields
        # the audit schema must accept (crashed with obs enabled).
        from repro import obs

        obs.enable()
        try:
            policy = AdriasPolicy(StubPredictor("timeout"))
            policy(profile, engine)  # __call__ records into the audit log
            (record,) = obs.audit().records
            assert record.reason.startswith("fallback:")
            assert record.cause == "InferenceTimeout"
            assert record.circuit in {"closed", "open", "half-open"}
            assert record.to_dict()["cause"] == "InferenceTimeout"
        finally:
            obs.disable()


class TestPolicyCheckpointState:
    def test_state_dict_round_trip(self, engine, profile):
        policy = AdriasPolicy(StubPredictor("timeout"), failure_threshold=2)
        policy.decide(profile, engine)
        policy.decide(profile, engine)
        restored = AdriasPolicy(StubPredictor("healthy"), failure_threshold=2)
        restored.load_state_dict(policy.state_dict())
        assert restored.breaker.state is CircuitState.OPEN
        assert restored.breaker.consecutive_failures == 2
