"""Experiment Fig. 4 — Redis/Memcached tail latency in isolation.

Expected shape (remark R4): local and remote memory produce almost
identical tail-latency curves at every client count, because in-memory
caches issue many small accesses with minimal bandwidth pressure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.characterization import lc_client_sweep
from repro.analysis.reporting import format_table
from repro.workloads.loadgen import LatencySample
from repro.workloads.memcached import MEMCACHED
from repro.workloads.redis import REDIS, LCProfile

__all__ = ["Fig4Result", "run"]

CLIENT_COUNTS: tuple[int, ...] = (100, 200, 400, 800, 1200)


@dataclass(frozen=True)
class Fig4Result:
    sweeps: dict[str, dict[str, list[LatencySample]]]  # app -> mode -> samples
    client_counts: tuple[int, ...]

    def max_mode_gap(self, app: str) -> float:
        """Largest relative p99 gap between local and remote curves."""
        local = self.sweeps[app]["local"]
        remote = self.sweeps[app]["remote"]
        return max(
            abs(r.p99_ms - l.p99_ms) / l.p99_ms
            for l, r in zip(local, remote)
        )

    def format(self) -> str:
        rows = []
        for app, modes in self.sweeps.items():
            for clients, local, remote in zip(
                self.client_counts, modes["local"], modes["remote"]
            ):
                rows.append(
                    (
                        app,
                        clients,
                        f"{local.p99_ms:.2f}",
                        f"{remote.p99_ms:.2f}",
                        f"{local.p999_ms:.2f}",
                        f"{remote.p999_ms:.2f}",
                    )
                )
        return format_table(
            ["app", "clients", "p99 local ms", "p99 remote ms",
             "p99.9 local ms", "p99.9 remote ms"],
            rows,
            title="Fig. 4 — LC tail latency vs clients, local vs remote",
        )


def run(
    profiles: tuple[LCProfile, ...] = (REDIS, MEMCACHED),
    client_counts: tuple[int, ...] = CLIENT_COUNTS,
) -> Fig4Result:
    return Fig4Result(
        sweeps={
            profile.name: lc_client_sweep(profile, client_counts)
            for profile in profiles
        },
        client_counts=client_counts,
    )
