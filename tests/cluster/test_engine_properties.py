"""Property-based invariants of the cluster engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterEngine
from repro.hardware import Testbed, TestbedConfig
from repro.workloads import MemoryMode, spark_names, spark_profile


APP_NAMES = st.sampled_from(spark_names())
MODES = st.sampled_from([MemoryMode.LOCAL, MemoryMode.REMOTE])


class TestEngineInvariants:
    @given(name=APP_NAMES, mode=MODES)
    @settings(max_examples=10, deadline=None)
    def test_isolated_runtime_matches_profile(self, name, mode):
        """In isolation the measured runtime equals the profile's
        analytic isolated runtime (within one tick)."""
        profile = spark_profile(name)
        engine = ClusterEngine(testbed=Testbed(TestbedConfig(counter_noise=0.0)))
        measured = engine.measure_isolated(profile, mode)
        expected = profile.isolated_runtime(mode)
        assert abs(measured - expected) <= 1.0 + 1e-9

    @given(
        names=st.lists(APP_NAMES, min_size=1, max_size=5),
        mode=MODES,
    )
    @settings(max_examples=10, deadline=None)
    def test_colocated_never_faster_than_isolated(self, names, mode):
        """Adding tenants can only slow an application down."""
        engine = ClusterEngine(testbed=Testbed(TestbedConfig(counter_noise=0.0)))
        deployments = [engine.deploy(spark_profile(n), mode) for n in names]
        engine.run_until_idle()
        for name, deployment in zip(names, deployments):
            isolated = spark_profile(name).isolated_runtime(mode)
            assert deployment.record().runtime_s >= isolated - 1.0 - 1e-9

    @given(names=st.lists(APP_NAMES, min_size=1, max_size=4))
    @settings(max_examples=10, deadline=None)
    def test_every_deployment_finishes_exactly_once(self, names):
        engine = ClusterEngine()
        for name in names:
            engine.deploy(spark_profile(name), MemoryMode.LOCAL)
        engine.run_until_idle()
        assert len(engine.trace.records) == len(names)
        app_ids = [r.app_id for r in engine.trace.records]
        assert len(app_ids) == len(set(app_ids))

    @given(names=st.lists(APP_NAMES, min_size=1, max_size=4))
    @settings(max_examples=10, deadline=None)
    def test_counters_nonnegative_throughout(self, names):
        engine = ClusterEngine()
        for name in names:
            engine.deploy(spark_profile(name), MemoryMode.REMOTE)
        engine.run_for(30.0)
        assert np.all(engine.trace.metrics >= 0.0)
