"""Tests for the training-free experiment drivers (Figs. 2-5, 8)."""

import pytest

from repro.experiments import (
    fig02_link_saturation,
    fig03_spark_isolation,
    fig04_lc_isolation,
    fig05_interference_heatmap,
    fig08_scenarios,
)


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig02_link_saturation.run()

    def test_r1_throughput_cap(self, result):
        assert result.throughput_cap_gbps == pytest.approx(2.5, abs=0.01)

    def test_r2_latency_regimes(self, result):
        assert result.base_latency_cycles == pytest.approx(350, abs=10)
        assert result.saturated_latency_cycles == pytest.approx(900, abs=20)

    def test_format_contains_all_rows(self, result):
        text = result.format()
        for count in fig02_link_saturation.COUNTS:
            assert f"\n{count} " in text or text.splitlines()


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig03_spark_isolation.run()

    def test_mean_band(self, result):
        assert 0.15 <= result.mean_degradation <= 0.32

    def test_extremes(self, result):
        assert result.ratio("nweight") >= 1.8
        assert result.ratio("gmm") <= 1.1

    def test_covers_all_17(self, result):
        assert len(result.results) == 17

    def test_format(self, result):
        text = result.format()
        assert "nweight" in text and "MEAN" in text


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig04_lc_isolation.run()

    def test_r4_modes_nearly_identical(self, result):
        assert result.max_mode_gap("redis") < 0.12
        assert result.max_mode_gap("memcached") < 0.12

    def test_format(self, result):
        assert "p99 local ms" in result.format()


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig05_interference_heatmap.run(
            apps=("nweight", "gmm"), counts=(1, 8, 16)
        )

    def test_r5_chasm_for_membw(self, result):
        assert result.ratio("nweight", "memBw", 16) > 1.5 * result.ratio(
            "nweight", "memBw", 1
        )

    def test_ratios_bounded(self, result):
        for app, heatmap in result.heatmaps.items():
            for row in heatmap.values():
                for ratio in row.values():
                    assert 0.9 < ratio < 10.0

    def test_format(self, result):
        assert "memBw" in result.format()


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig08_scenarios.run(duration_s=900.0)

    def test_heavier_spawn_more_concurrency(self, result):
        by_spawn = {s.spawn_interval: s for s in result.summaries}
        assert by_spawn[(5, 20)].mean_concurrent > by_spawn[(5, 60)].mean_concurrent

    def test_metric_phases_have_spread(self, result):
        assert all(s.mem_loads_std > 0 for s in result.summaries)

    def test_format(self, result):
        assert "{5,20}" in result.format()
