"""Multi-node fleet tests (the §VII scalability extension)."""

import pytest

from repro.cluster import (
    CapacityError,
    ClusterFleet,
    FleetDecision,
    LeastLoadedPlacement,
)
from repro.hardware import NodeConfig, TestbedConfig
from repro.workloads import MemoryMode, ibench_profile, spark_profile


class TestFleetBasics:
    def test_nodes_independent(self):
        fleet = ClusterFleet(n_nodes=2)
        fleet.deploy(spark_profile("lr"), FleetDecision(0, MemoryMode.LOCAL))
        p0 = fleet.engines[0].current_pressure()
        p1 = fleet.engines[1].current_pressure()
        assert p0.cpu_utilization > 0
        assert p1.cpu_utilization == 0

    def test_lockstep_clock(self):
        fleet = ClusterFleet(n_nodes=3)
        fleet.run_for(10.0)
        assert all(e.now == pytest.approx(10.0) for e in fleet.engines)

    def test_run_until_idle_collects_records(self):
        fleet = ClusterFleet(n_nodes=2)
        fleet.deploy(spark_profile("scan"), FleetDecision(0, MemoryMode.LOCAL))
        fleet.deploy(spark_profile("scan"), FleetDecision(1, MemoryMode.REMOTE))
        fleet.run_until_idle()
        records = fleet.records()
        assert len(records) == 2
        assert {r.mode for r in records} == {MemoryMode.LOCAL, MemoryMode.REMOTE}

    def test_invalid_node_index(self):
        fleet = ClusterFleet(n_nodes=2)
        with pytest.raises(ValueError):
            fleet.deploy(spark_profile("scan"), FleetDecision(5, MemoryMode.LOCAL))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ClusterFleet(n_nodes=0)

    def test_deploy_anywhere_falls_through_nodes(self):
        config = TestbedConfig(node=NodeConfig(dram_gb=10.0))
        fleet = ClusterFleet(n_nodes=2, testbed_config=config)
        a = fleet.deploy_anywhere(spark_profile("scan"), MemoryMode.LOCAL)
        b = fleet.deploy_anywhere(spark_profile("scan"), MemoryMode.LOCAL)
        assert {a.app_id, b.app_id} is not None
        assert fleet.engines[0].running and fleet.engines[1].running
        with pytest.raises(CapacityError):
            fleet.deploy_anywhere(spark_profile("scan"), MemoryMode.LOCAL)


class TestLoadBalancing:
    def test_least_loaded_node_tracks_pressure(self):
        fleet = ClusterFleet(n_nodes=2)
        for _ in range(8):
            fleet.deploy(ibench_profile("l3"), FleetDecision(0, MemoryMode.LOCAL),
                         duration_s=1e6)
        assert fleet.least_loaded_node() == 1
        assert fleet.node_load(0) > fleet.node_load(1)

    def test_least_loaded_placement_spreads_work(self):
        from repro.orchestrator import AllLocalPolicy

        fleet = ClusterFleet(n_nodes=2)
        scheduler = LeastLoadedPlacement(AllLocalPolicy())
        placements = []
        for _ in range(6):
            decision = scheduler(spark_profile("lr"), fleet)
            fleet.deploy(spark_profile("lr"), decision)
            placements.append(decision.node_index)
        # Work alternates: each placement raises the target's load.
        assert set(placements) == {0, 1}
        assert placements[0] != placements[1]

    def test_capacity_fallback_across_pools(self):
        from repro.orchestrator import AllRemotePolicy

        config = TestbedConfig(node=NodeConfig(remote_gb=10.0))
        fleet = ClusterFleet(n_nodes=2, testbed_config=config)
        scheduler = LeastLoadedPlacement(AllRemotePolicy())
        modes = []
        for _ in range(4):
            decision = scheduler(spark_profile("scan"), fleet)  # 8 GB each
            fleet.deploy(spark_profile("scan"), decision)
            modes.append(decision.mode)
        # Two fit remotely (one per node); the rest fall back to local.
        assert modes.count(MemoryMode.REMOTE) == 2
        assert modes.count(MemoryMode.LOCAL) == 2
