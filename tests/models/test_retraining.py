"""Continual-retraining workflow tests (§V-C / Fig. 15 loop)."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro import obs
from repro.models import (
    PerformancePredictor,
    Predictor,
    SystemStatePredictor,
    build_performance_dataset,
    build_system_state_dataset,
    evaluate_onboarding,
    onboard_application,
    retrain,
    retrain_on_drift,
)
from repro.workloads import MemoryMode, WorkloadKind, spark_profile


@pytest.fixture(scope="module")
def base_predictor(tiny_traces, signatures, feature_config):
    ss_data = build_system_state_dataset(tiny_traces, feature_config, stride_s=20.0)
    system_state = SystemStatePredictor(feature_config=feature_config, seed=0)
    system_state.fit(ss_data.windows, ss_data.targets, epochs=15)
    be_data = build_performance_dataset(
        tiny_traces, signatures, WorkloadKind.BEST_EFFORT, feature_config
    )
    be = PerformancePredictor(feature_config=feature_config, seed=1)
    be.fit(
        be_data.state, be_data.signature, be_data.mode,
        system_state.predict(be_data.state), be_data.targets, epochs=20,
    )
    return Predictor(
        system_state=system_state, be_performance=be,
        signatures=signatures, feature_config=feature_config,
    )


class TestOnboarding:
    def test_captures_unknown_application(self, base_predictor):
        newcomer = spark_profile("scan").with_overrides(name="scan-v2")
        assert not base_predictor.has_signature(newcomer)
        signature = onboard_application(base_predictor, newcomer)
        assert base_predictor.has_signature(newcomer)
        assert signature.shape[1] == base_predictor.config.n_metrics
        base_predictor.signatures.drop("scan-v2")

    def test_idempotent_for_known_application(self, base_predictor):
        profile = spark_profile("gmm")
        first = onboard_application(base_predictor, profile)
        second = onboard_application(base_predictor, profile)
        assert np.allclose(first, second)


class TestRetrain:
    def test_returns_new_predictor_with_shared_components(
        self, base_predictor, tiny_traces
    ):
        updated = retrain(
            base_predictor, tiny_traces,
            kinds=(WorkloadKind.BEST_EFFORT,), epochs=5,
        )
        assert updated is not base_predictor
        assert updated.system_state is base_predictor.system_state
        assert updated.signatures is base_predictor.signatures
        assert updated.be_performance is not base_predictor.be_performance
        # The untouched LC slot carries over.
        assert updated.lc_performance is base_predictor.lc_performance

    def test_retrained_model_is_usable(self, base_predictor, tiny_traces):
        updated = retrain(
            base_predictor, tiny_traces,
            kinds=(WorkloadKind.BEST_EFFORT,), epochs=5,
        )
        history = tiny_traces[-1].window(600.0, updated.config.history_s)
        estimate = updated.predict_performance(
            spark_profile("gmm"), history, MemoryMode.LOCAL
        )
        assert np.isfinite(estimate) and estimate > 0

    def test_interference_kind_rejected(self, base_predictor, tiny_traces):
        with pytest.raises(ValueError):
            retrain(base_predictor, tiny_traces,
                    kinds=(WorkloadKind.INTERFERENCE,), epochs=1)

    def test_requires_system_state(self, tiny_traces, signatures, feature_config):
        bare = Predictor(system_state=None, signatures=signatures,
                         feature_config=feature_config)
        with pytest.raises(ValueError):
            retrain(bare, tiny_traces, epochs=1)


class TestRetrainOnDrift:
    """The drift-alarm callback closes the Fig. 15 retraining loop."""

    def _policy_and_callback(self, monkeypatch):
        policy = SimpleNamespace(predictor=object())
        fresh = object()
        calls = []

        def fake_retrain(predictor, traces, *, kinds, epochs, seed):
            calls.append((predictor, traces, kinds, epochs, seed))
            return fresh

        monkeypatch.setattr("repro.models.retraining.retrain", fake_retrain)
        callback = retrain_on_drift(
            policy, ["corpus"],
            kinds=(WorkloadKind.BEST_EFFORT,), epochs=3, seed=9,
        )
        return policy, fresh, calls, callback

    def test_alarm_swaps_in_the_fresh_predictor(self, monkeypatch):
        policy, fresh, calls, callback = self._policy_and_callback(monkeypatch)
        stale = policy.predictor
        callback(SimpleNamespace(stream="be"))
        assert policy.predictor is fresh
        assert calls == [
            (stale, ["corpus"], (WorkloadKind.BEST_EFFORT,), 3, 9)
        ]

    def test_retrain_is_counted_and_traced_when_obs_enabled(self, monkeypatch):
        _, _, _, callback = self._policy_and_callback(monkeypatch)
        obs.enable()
        try:
            callback(SimpleNamespace(stream="lc"))
            counter = obs.metrics().get("predictor_retrains_total")
            assert counter.labels().snapshot() == 1.0
            instants = [
                e for e in obs.tracer().events if e["name"] == "drift_retrain"
            ]
            assert instants and instants[0]["args"]["stream"] == "lc"
        finally:
            obs.disable()

    def test_works_silently_with_obs_disabled(self, monkeypatch):
        policy, fresh, _, callback = self._policy_and_callback(monkeypatch)
        callback(SimpleNamespace(stream="be"))
        assert policy.predictor is fresh


class TestEvaluateOnboarding:
    def test_reports_before_after_gain(self, base_predictor, tiny_traces):
        scores = evaluate_onboarding(
            base_predictor, tiny_traces, benchmark="gmm", epochs=15,
        )
        assert set(scores) == {"before", "after", "gain"}
        assert scores["gain"] == pytest.approx(
            scores["after"] - scores["before"]
        )

    def test_unknown_benchmark_rejected(self, base_predictor, tiny_traces):
        with pytest.raises(ValueError):
            evaluate_onboarding(base_predictor, tiny_traces,
                                benchmark="nosuchapp", epochs=1)
