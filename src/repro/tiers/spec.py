"""Memory-tier specifications (§VII: "Adrias & HW heterogeneity").

The paper notes that a system offering both remote DRAM and NVMe would
appear to Adrias as "two different memory tiers, with different latency
characteristics", with no need to know the actual medium.  This package
realizes that: a tier is just a capacity plus (for non-local tiers) a
channel model and a medium slowdown — exactly the quantities the
monitored metrics expose.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.config import LinkConfig

__all__ = ["TierSpec", "LOCAL_DRAM", "REMOTE_DRAM", "REMOTE_NVME", "default_tiers"]


@dataclass(frozen=True)
class TierSpec:
    """One memory tier of a heterogeneous pool."""

    name: str
    capacity_gb: float
    #: Channel model for disaggregated tiers; None for node-local DRAM
    #: (which contends on the memory bus instead).
    link: LinkConfig | None = None
    #: Isolated medium slowdown relative to local DRAM for a
    #: memory-sensitive application (the Fig. 3 ratio generalized per
    #: tier).  Applications scale this by their own remote sensitivity.
    medium_slowdown: float = 1.0

    def __post_init__(self) -> None:
        if self.capacity_gb <= 0:
            raise ValueError("tier capacity must be positive")
        if self.medium_slowdown < 1.0:
            raise ValueError("medium_slowdown must be >= 1")

    @property
    def is_local(self) -> bool:
        return self.link is None


#: The borrower node's own DRAM (capacity from NodeConfig.dram_gb).
LOCAL_DRAM = TierSpec(name="local-dram", capacity_gb=1200.0)

#: The paper's ThymesisFlow remote-DRAM tier.
REMOTE_DRAM = TierSpec(
    name="remote-dram",
    capacity_gb=512.0,
    link=LinkConfig(),
    medium_slowdown=1.0,  # the per-app remote_slowdown already covers it
)

#: A hypothetical NVMe-backed tier: bigger, slower, saturates earlier.
REMOTE_NVME = TierSpec(
    name="remote-nvme",
    capacity_gb=4096.0,
    link=LinkConfig(
        capacity_gbps=1.2,
        base_latency_cycles=2500.0,
        saturated_latency_cycles=8000.0,
    ),
    medium_slowdown=1.6,
)


def default_tiers() -> list[TierSpec]:
    """Local DRAM + remote DRAM + remote NVMe."""
    return [LOCAL_DRAM, REMOTE_DRAM, REMOTE_NVME]
