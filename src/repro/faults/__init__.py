"""repro.faults — deterministic fault injection and graceful degradation.

The subsystem has two halves:

* **Injection** — a seeded, schedule-driven :class:`FaultPlan` (JSON in,
  JSON out) drives a :class:`FaultInjector` attached to a scenario
  engine through its tick hooks: remote-link degradation and outage
  windows, Watcher sample dropouts and NaN-corrupted counters, and
  predictor NaN/inf outputs and inference delays.
* **Degradation** — the orchestration stack is hardened to survive all
  of it: the AdriasPolicy runs a decision deadline plus a
  :class:`CircuitBreaker` over a fallback chain, the feature pipeline
  imputes telemetry gaps, the engine re-queues remote deployments
  during outages, and replays checkpoint/resume crash-safely
  (``repro.faults.checkpoint``).

Arm a plan process-wide with :func:`activate` /
:func:`active_plan`; ``run_scenario`` attaches a fresh injector per
policy-driven replay while a plan is armed and stays bit-identical when
none is.  ``repro.faults.checkpoint`` is imported on demand (it pulls
in the cluster layer).
"""

from repro.faults.breaker import CircuitBreaker, CircuitState
from repro.faults.errors import (
    CheckpointError,
    CorruptPrediction,
    FaultPlanError,
    InferenceFault,
    InferenceTimeout,
    RetrainTimeout,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FAULT_KINDS, TRAINER_KINDS, FaultPlan, FaultSpec
from repro.faults.runtime import activate, active_plan, current_plan, deactivate
from repro.faults.training import TrainingChaos

__all__ = [
    "FAULT_KINDS",
    "TRAINER_KINDS",
    "FaultPlan",
    "FaultSpec",
    "FaultPlanError",
    "FaultInjector",
    "CircuitBreaker",
    "CircuitState",
    "InferenceFault",
    "InferenceTimeout",
    "CorruptPrediction",
    "CheckpointError",
    "RetrainTimeout",
    "TrainingChaos",
    "activate",
    "deactivate",
    "current_plan",
    "active_plan",
]
