"""Bench Fig. 8 — scenario congestion phases.

Paper shape: heavy {5,20} scenarios sustain many more concurrent
applications than relaxed {5,60} ones (paper max: 35 concurrent apps),
and every scenario's metric time series shows distinct phases (non-zero
spread).
"""

from benchmarks.conftest import run_once
from repro.experiments import fig08_scenarios


def test_fig08_scenarios(benchmark, report):
    result = run_once(benchmark, fig08_scenarios.run)
    report(result.format())

    by_spawn = {s.spawn_interval: s for s in result.summaries}
    heavy, moderate, relaxed = by_spawn[(5, 20)], by_spawn[(5, 40)], by_spawn[(5, 60)]

    # Congestion ordering.
    assert heavy.mean_concurrent > moderate.mean_concurrent > relaxed.mean_concurrent
    assert heavy.max_concurrent >= 20  # paper: up to 35 concurrent apps
    assert relaxed.max_concurrent < heavy.max_concurrent

    # Distinct metric phases within each scenario.
    for summary in result.summaries:
        assert summary.mem_loads_std > 0.1 * summary.mem_loads_mean

    # Heavier congestion loads the channel more.
    assert heavy.link_latency_mean > relaxed.link_latency_mean
