"""Experiment Fig. 8 — scenario congestion phases.

Simulates three representative scenarios — heavy {5,20}, moderate
{5,40} and relaxed {5,60} — and summarizes the number of concurrent
applications and the spread of the monitored metrics over time.
Expected shape: heavier spawn intervals sustain more concurrent
applications and higher/wider metric ranges, and each scenario exposes
multiple distinct congestion phases.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import format_table
from repro.cluster.scenario import ScenarioConfig, run_scenario
from repro.cluster.trace import Trace

__all__ = ["ScenarioSummary", "Fig8Result", "run"]

SPAWN_SETS: tuple[tuple[float, float], ...] = ((5, 20), (5, 40), (5, 60))


@dataclass(frozen=True)
class ScenarioSummary:
    spawn_interval: tuple[float, float]
    max_concurrent: int
    mean_concurrent: float
    mem_loads_mean: float
    mem_loads_std: float
    link_latency_mean: float

    @classmethod
    def from_trace(
        cls, trace: Trace, spawn_interval: tuple[float, float]
    ) -> "ScenarioSummary":
        mem_loads = trace.metric("mem_loads")
        return cls(
            spawn_interval=spawn_interval,
            max_concurrent=max(trace.concurrency),
            mean_concurrent=float(np.mean(trace.concurrency)),
            mem_loads_mean=float(mem_loads.mean()),
            mem_loads_std=float(mem_loads.std()),
            link_latency_mean=float(trace.metric("link_latency").mean()),
        )


@dataclass(frozen=True)
class Fig8Result:
    summaries: list[ScenarioSummary]
    traces: list[Trace]

    def format(self) -> str:
        rows = [
            (
                f"{{{s.spawn_interval[0]:.0f},{s.spawn_interval[1]:.0f}}}",
                s.max_concurrent,
                f"{s.mean_concurrent:.1f}",
                f"{s.mem_loads_mean:.3e}",
                f"{s.mem_loads_std:.3e}",
                f"{s.link_latency_mean:.0f}",
            )
            for s in self.summaries
        ]
        return format_table(
            ["spawn set", "max conc.", "mean conc.", "MEM_ld mean",
             "MEM_ld std", "link lat cyc"],
            rows,
            title="Fig. 8 — concurrency and metric phases per scenario",
        )

    def plot(self) -> str:
        """ASCII rendering of the concurrency time series (Fig. 8 top)."""
        from repro.analysis.plotting import ascii_timeseries

        panels = []
        for summary, trace in zip(self.summaries, self.traces):
            low, high = summary.spawn_interval
            panels.append(ascii_timeseries(
                np.asarray(trace.concurrency, dtype=float),
                title=f"concurrent applications — spawn {{{low:.0f},{high:.0f}}}",
                y_label="time ->",
            ))
        return "\n\n".join(panels)


def run(
    duration_s: float = 3600.0,
    spawn_sets: tuple[tuple[float, float], ...] = SPAWN_SETS,
    seed: int = 42,
) -> Fig8Result:
    summaries = []
    traces = []
    for i, spawn in enumerate(spawn_sets):
        trace = run_scenario(
            ScenarioConfig(
                duration_s=duration_s, spawn_interval=spawn, seed=seed + i
            )
        )
        traces.append(trace)
        summaries.append(ScenarioSummary.from_trace(trace, spawn))
    return Fig8Result(summaries=summaries, traces=traces)
