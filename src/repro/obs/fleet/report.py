"""Per-node fleet summaries from a recorded live stream.

``repro obs report --fleet STREAM.jsonl`` and ``repro obs watch
--fleet`` both render the same per-node table — QoS p99, offload rate,
throttled ticks and peak burn rate — computed here from the stream
records a fleet-aware :class:`LiveSession` emits:

* ``tick`` records carry ``node`` (which engine ticked),
* ``finish`` records carry each completed deployment's node, mode,
  runtime/p99 and (when SLO targets are configured) its violation
  verdict,
* ``pool`` records carry the arbiter's per-tick throttle set and
  capacity factors.

Burn rates reuse :func:`repro.obs.live.slo.peak_burn_rate` — the same
offline path :func:`repro.orchestrator.evaluation.burn_rate_summary`
uses — over each node's ``(clock, violated)`` finish events, so the
offline table agrees with what the live per-node gauges showed.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.reporting import format_kv, format_table
from repro.obs.live.slo import peak_burn_rate

__all__ = ["fleet_summary", "render_fleet_frame", "format_fleet_report"]

#: Windows used when the stream's meta record does not carry any.
_DEFAULT_WINDOWS = (60.0, 600.0)

#: Detector stream-event kinds -> the health cell they leave behind.
_HEALTH_EVENTS = {
    "node_up": "UP",
    "node_suspect": "SUSPECT",
    "node_down": "DOWN",
}


def fleet_summary(records: list[dict]) -> dict:
    """Aggregate a parsed stream into per-node statistics.

    Returns ``{"nodes": {node: {...}}, "pool": {...}, "meta": {...}}``;
    nodes appear in label order.  Streams from single-node runs (no
    ``node`` fields) produce an empty node table rather than an error.
    """
    meta = next((r for r in records if r.get("t") == "meta"), {})
    objective = meta.get("objective", 0.99)
    windows = tuple(meta.get("slo_windows") or _DEFAULT_WINDOWS)
    nodes: dict[str, dict] = {}

    def node_state(label: str) -> dict:
        return nodes.setdefault(
            label,
            {
                "ticks": 0,
                "running": 0,
                "link_util": 0.0,
                "finished": 0,
                "remote": 0,
                "lc_p99": [],
                "violations": 0,
                "events": [],  # (clock, violated) for the burn replay
                "throttled_ticks": 0,
                "health": "UP",
                "failovers": 0,
            },
        )

    pool = {"records": 0, "regime": None, "bw_util": 0.0, "throttle_events": 0}
    for record in records:
        kind = record.get("t")
        if kind == "tick" and "node" in record:
            state = node_state(record["node"])
            state["ticks"] += 1
            state["running"] = record.get("running", 0)
            state["link_util"] = record.get("link_util", 0.0)
        elif kind == "finish":
            state = node_state(record.get("node", "n0"))
            state["finished"] += 1
            if record.get("mode") == "remote":
                state["remote"] += 1
            p99 = record.get("p99_ms")
            if record.get("kind") == "lc" and p99 is not None:
                state["lc_p99"].append(p99)
            violated = record.get("violated")
            if violated is not None:
                state["events"].append((record.get("clock", 0.0), violated))
                if violated:
                    state["violations"] += 1
        elif kind == "pool":
            pool["records"] += 1
            pool["regime"] = record.get("regime", pool["regime"])
            pool["bw_util"] = record.get("bw_util", pool["bw_util"])
            for label in record.get("throttled", []):
                node_state(label)["throttled_ticks"] += 1
        elif kind == "event" and record.get("kind") == "pool_throttle":
            # Edge-triggered: an empty node set marks recovery, not onset.
            if record.get("nodes"):
                pool["throttle_events"] += 1
        elif kind == "event" and record.get("kind") in _HEALTH_EVENTS:
            # Edge-triggered detector verdicts: last one wins per node.
            state = node_state(record.get("node", "n0"))
            state["health"] = _HEALTH_EVENTS[record["kind"]]
            if record["kind"] == "node_down":
                state["failovers"] += record.get("drained", 0)

    for state in nodes.values():
        p99s = state.pop("lc_p99")
        state["lc_p99_ms"] = (
            float(np.percentile(p99s, 99)) if p99s else float("nan")
        )
        state["offload_rate"] = (
            state["remote"] / state["finished"] if state["finished"] else float("nan")
        )
        events = state.pop("events")
        state["peak_burn"] = {
            f"{w:g}": (
                round(peak_burn_rate(events, w, objective=objective), 4)
                if events
                else 0.0
            )
            for w in windows
        }
    return {
        "nodes": {label: nodes[label] for label in sorted(nodes)},
        "pool": pool,
        "meta": {"objective": objective, "windows": list(windows)},
    }


def _fmt(value: float, pattern: str = "{:.3f}") -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    return pattern.format(value)


def _node_table(summary: dict) -> str | None:
    nodes = summary["nodes"]
    if not nodes:
        return None
    windows = summary["meta"]["windows"]
    headers = [
        "node", "health", "ticks", "apps", "link util", "done", "offload",
        "LC p99 ms", "throttled", "failovers",
        *(f"burn {w:g}s" for w in windows),
    ]
    rows = []
    for label, state in nodes.items():
        rows.append(
            (
                label,
                state["health"],
                state["ticks"],
                state["running"],
                _fmt(state["link_util"]),
                state["finished"],
                _fmt(state["offload_rate"], "{:.1%}"),
                _fmt(state["lc_p99_ms"], "{:.2f}"),
                state["throttled_ticks"],
                state["failovers"],
                *(
                    _fmt(state["peak_burn"].get(f"{w:g}", 0.0), "{:.2f}")
                    for w in windows
                ),
            )
        )
    return format_table(headers, rows, title="Fleet nodes")


def render_fleet_frame(records: list[dict], skipped: int = 0) -> str:
    """One ``watch --fleet`` dashboard frame from parsed stream records."""
    summary = fleet_summary(records)
    ticks = [r for r in records if r.get("t") == "tick"]
    ended = any(r.get("t") == "end" for r in records)
    if not ticks:
        return "fleet stream: no tick records yet"
    last = ticks[-1]
    header = {
        "status": "finished" if ended else "running",
        "nodes": len(summary["nodes"]) or 1,
        "session clock s": f"{last.get('clock', 0.0):.0f}",
        "fleet sim s": f"{last.get('sim', 0.0):.0f}",
    }
    if skipped:
        header["torn lines skipped"] = skipped
    sections = [format_kv(header, title="Fleet observability")]
    table = _node_table(summary)
    if table is not None:
        sections.append(table)
    else:
        sections.append(
            "no node-labeled records: stream was not produced by a fleet "
            "run (try repro obs watch without --fleet)"
        )
    pool = summary["pool"]
    if pool["records"]:
        sections.append(
            format_kv(
                {
                    "regime": pool["regime"] or "?",
                    "throttled fleet ticks": pool["records"],
                    "throttle onsets": pool["throttle_events"],
                    "last bw util": _fmt(pool["bw_util"]),
                },
                title="Rack pool arbitration",
            )
        )
    return "\n\n".join(sections)


def format_fleet_report(records: list[dict], skipped: int = 0) -> str:
    """Offline per-node report (``repro obs report --fleet``)."""
    summary = fleet_summary(records)
    nodes = summary["nodes"]
    sections = []
    totals = {
        "nodes": len(nodes),
        "finished": sum(s["finished"] for s in nodes.values()),
        "offloaded": sum(s["remote"] for s in nodes.values()),
        "LC violations": sum(s["violations"] for s in nodes.values()),
        "throttled node-ticks": sum(
            s["throttled_ticks"] for s in nodes.values()
        ),
        "failover drains": sum(s["failovers"] for s in nodes.values()),
        "SLO objective": summary["meta"]["objective"],
    }
    if skipped:
        totals["torn lines skipped"] = skipped
    sections.append(format_kv(totals, title="Fleet stream report"))
    table = _node_table(summary)
    if table is not None:
        sections.append(table)
    else:
        sections.append("no node-labeled records in this stream")
    return "\n\n".join(sections)
