"""Spark in-memory analytics workloads (HiBench suite).

The paper evaluates 17 Spark applications from HiBench with the small
dataset and default Spark configuration (§IV-A); each spawns 2 executor
instances with 4 threads (footnote 3), so every profile demands 8
logical threads.

Per-benchmark calibration follows the characterization:

* ``remote_slowdown`` reproduces Fig. 3 — nweight and lr suffer ~2x on
  remote memory while gmm and pca lose <10%; the suite-wide mean is
  ~20-25%.
* ``stacking`` reproduces remark R7: nweight, sort and kmeans degrade on
  remote memory even under cpu/L2-only interference.
* Sensitivity vectors reproduce remark R6: LLC contention is the worst
  interference source for most Spark applications, followed by memory
  bandwidth.
"""

from __future__ import annotations

from repro.workloads.base import SensitivityVector, WorkloadKind, WorkloadProfile

__all__ = ["SPARK_BENCHMARKS", "spark_profile", "spark_names"]


def _spark(
    name: str,
    runtime_s: float,
    remote_slowdown: float,
    stacking: float = 0.0,
    llc_mb: float = 4.0,
    llc_access_gbps: float = 4.0,
    mem_bw_gbps: float = 8.0,
    remote_bw_gbps: float = 0.6,
    footprint_gb: float = 8.0,
    sens_cpu: float = 0.5,
    sens_l2: float = 0.3,
    sens_llc: float = 0.9,
    sens_membw: float = 0.6,
    sens_link: float = 1.0,
) -> WorkloadProfile:
    return WorkloadProfile(
        name=name,
        kind=WorkloadKind.BEST_EFFORT,
        nominal_runtime_s=runtime_s,
        remote_slowdown=remote_slowdown,
        stacking=stacking,
        cpu_threads=8.0,  # 2 executors x 4 threads (footnote 3)
        l2_mb=1.0,
        llc_mb=llc_mb,
        llc_access_gbps=llc_access_gbps,
        mem_bw_gbps=mem_bw_gbps,
        remote_bw_gbps=remote_bw_gbps,
        footprint_gb=footprint_gb,
        sensitivity=SensitivityVector(
            cpu=sens_cpu, l2=sens_l2, llc=sens_llc, membw=sens_membw, link=sens_link
        ),
    )


#: The 17 HiBench-derived Spark applications, keyed by benchmark name.
SPARK_BENCHMARKS: dict[str, WorkloadProfile] = {
    p.name: p
    for p in (
        # Graph: heavy pointer-dense traversal, the worst remote citizen
        # (Fig. 3: ~2x) and the canonical stacking benchmark (R7).
        _spark("nweight", 95.0, 1.95, stacking=0.7, llc_mb=6.0,
               llc_access_gbps=6.0, mem_bw_gbps=10.0, remote_bw_gbps=1.1,
               footprint_gb=12.0, sens_llc=1.2, sens_membw=0.8),
        # Logistic regression: bandwidth-bound iterative scans (~1.9x).
        _spark("lr", 60.0, 1.85, llc_mb=5.0, llc_access_gbps=6.0,
               mem_bw_gbps=12.0, remote_bw_gbps=1.2, sens_membw=0.9),
        # Micro benchmarks.
        _spark("sort", 45.0, 1.45, stacking=0.5, mem_bw_gbps=11.0,
               remote_bw_gbps=1.0, sens_membw=0.8),
        _spark("terasort", 75.0, 1.30, mem_bw_gbps=10.0, remote_bw_gbps=0.9),
        _spark("wordcount", 40.0, 1.12, mem_bw_gbps=6.0, remote_bw_gbps=0.45),
        _spark("repartition", 50.0, 1.20, mem_bw_gbps=9.0, remote_bw_gbps=0.8),
        # SQL.
        _spark("scan", 35.0, 1.08, mem_bw_gbps=7.0, remote_bw_gbps=0.5,
               sens_llc=0.7),
        _spark("join", 55.0, 1.22, mem_bw_gbps=8.0, remote_bw_gbps=0.7),
        _spark("aggregation", 40.0, 1.08, llc_mb=3.6, llc_access_gbps=3.6,
               mem_bw_gbps=6.5, remote_bw_gbps=0.55, sens_llc=0.7),
        # Websearch.
        _spark("pagerank", 85.0, 1.18, llc_mb=5.0, mem_bw_gbps=7.0,
               remote_bw_gbps=0.6, sens_llc=1.0),
        # Machine learning.
        _spark("kmeans", 70.0, 1.40, stacking=0.55, llc_mb=5.0,
               mem_bw_gbps=9.0, remote_bw_gbps=0.85, sens_llc=1.0),
        _spark("als", 80.0, 1.15, mem_bw_gbps=6.0, remote_bw_gbps=0.5),
        _spark("gbt", 90.0, 1.06, llc_mb=3.0, mem_bw_gbps=4.0,
               remote_bw_gbps=0.3, sens_llc=0.8, sens_cpu=0.7),
        _spark("rf", 85.0, 1.07, llc_mb=3.3, llc_access_gbps=4.4,
               mem_bw_gbps=4.5, remote_bw_gbps=0.35, sens_llc=0.8,
               sens_cpu=0.7),
        _spark("lda", 100.0, 1.06, llc_mb=3.5, mem_bw_gbps=5.0,
               remote_bw_gbps=0.35, sens_cpu=0.6),
        # gmm/pca: compute-dense kernels with small working sets; the
        # paper singles them out as <10% remote degradation and notes
        # overlapping local/remote distributions (Fig. 9).
        _spark("gmm", 110.0, 1.04, llc_mb=2.5, llc_access_gbps=3.0,
               mem_bw_gbps=3.5, remote_bw_gbps=0.25, sens_llc=0.6,
               sens_cpu=0.8, sens_membw=0.4),
        _spark("pca", 65.0, 1.05, llc_mb=2.2, llc_access_gbps=2.6,
               mem_bw_gbps=4.0, remote_bw_gbps=0.3, sens_llc=0.6,
               sens_cpu=0.75, sens_membw=0.45),
    )
}


def spark_profile(name: str) -> WorkloadProfile:
    """Look up a Spark benchmark profile by name."""
    try:
        return SPARK_BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown Spark benchmark {name!r}; "
            f"available: {sorted(SPARK_BENCHMARKS)}"
        ) from None


def spark_names() -> list[str]:
    """All Spark benchmark names in a stable order."""
    return list(SPARK_BENCHMARKS)
