"""Property-based guarantees for fit checkpoints (Hypothesis).

Two invariants the resilience layer must hold for *any* input:

* checkpoint → restore → continue is indistinguishable from a
  straight-through fit, for any seed and any split point;
* a corrupted checkpoint never loads silently — any byte flip or
  truncation raises :class:`FitCheckpointError`.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.nn import (  # noqa: E402
    Adam,
    CheckpointManager,
    DataLoader,
    Dropout,
    EarlyStopping,
    FitCheckpointError,
    Linear,
    MSELoss,
    ReLU,
    Sequential,
    StepLR,
    TensorDataset,
    Trainer,
)
from repro.nn.resilience import decode_fit_state  # noqa: E402

EPOCHS = 4


def make_parts(seed):
    rng = np.random.default_rng(seed)
    model = Sequential(
        Linear(3, 8, rng=rng), ReLU(), Dropout(0.1, rng=rng), Linear(8, 1, rng=rng)
    )
    opt = Adam(model.parameters(), lr=1e-2)
    trainer = Trainer(model, opt, MSELoss(),
                      scheduler=StepLR(opt, step_size=2, gamma=0.5))
    data_rng = np.random.default_rng(seed + 1)
    x = data_rng.normal(size=(48, 3))
    ds = TensorDataset(x, x @ np.ones((3, 1)))
    loader = DataLoader(ds, batch_size=16, shuffle=True,
                        rng=np.random.default_rng(seed + 2))
    return trainer, loader, EarlyStopping(patience=50)


def final_state(trainer):
    return {k: v.copy() for k, v in trainer.model.state_dict().items()}


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**16), split=st.integers(1, EPOCHS - 1))
def test_resume_equals_straight_through(tmp_path_factory, seed, split):
    straight, loader, es = make_parts(seed)
    reference = straight.fit(loader, epochs=EPOCHS, early_stopping=es)

    path = tmp_path_factory.mktemp("ckpt") / f"fit-{seed}-{split}.ckpt"
    first, loader1, es1 = make_parts(seed)
    first.fit(loader1, epochs=split, early_stopping=es1,
              checkpoint=CheckpointManager(path))
    second, loader2, es2 = make_parts(seed)
    resumed = second.fit(loader2, epochs=EPOCHS, early_stopping=es2,
                         checkpoint=CheckpointManager(path), resume=True)

    assert resumed.train_loss == reference.train_loss
    ref_state, res_state = final_state(straight), final_state(second)
    assert ref_state.keys() == res_state.keys()
    for key in ref_state:
        assert np.array_equal(ref_state[key], res_state[key])


@pytest.fixture(scope="module")
def checkpoint_blob(tmp_path_factory):
    path = tmp_path_factory.mktemp("blob") / "fit.ckpt"
    trainer, loader, es = make_parts(1234)
    trainer.fit(loader, epochs=2, early_stopping=es,
                checkpoint=CheckpointManager(path))
    return path.read_bytes()


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_corrupt_bytes_never_load(checkpoint_blob, data):
    blob = bytearray(checkpoint_blob)
    pos = data.draw(st.integers(0, len(blob) - 1))
    flip = data.draw(st.integers(1, 255))
    blob[pos] ^= flip
    with pytest.raises(FitCheckpointError):
        decode_fit_state(bytes(blob))


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_truncated_bytes_never_load(checkpoint_blob, data):
    cut = data.draw(st.integers(0, len(checkpoint_blob) - 1))
    with pytest.raises(FitCheckpointError):
        decode_fit_state(checkpoint_blob[:cut])
