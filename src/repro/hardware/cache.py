"""Last-level cache and L2 contention models.

The characterization (remark R6) found LLC contention to be the single
most damaging interference source for most Spark applications: trashed
LLC lines become consecutive misses, which become memory-bandwidth
pressure.  We model the LLC as a shared capacity whose over-subscription
inflates every tenant's miss rate in proportion to how much of its
working set no longer fits.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheState", "SharedCache"]


@dataclass(frozen=True)
class CacheState:
    """Resolved cache pressure for one tick."""

    demanded_mb: float
    capacity_mb: float
    occupancy: float        # demanded / capacity, can exceed 1
    miss_inflation: float   # >= 0, extra miss-rate multiplier component

    @property
    def oversubscribed(self) -> bool:
        return self.occupancy > 1.0


class SharedCache:
    """Capacity-contention model for a shared cache level.

    ``miss_inflation`` grows linearly with over-subscription: when the
    aggregate working set is twice the capacity, a fully cache-sensitive
    tenant sees its miss rate roughly double.  Below capacity there is a
    mild ramp starting at ``pressure_floor`` occupancy, because way
    conflicts start before full occupancy.
    """

    def __init__(
        self,
        capacity_mb: float,
        pressure_floor: float = 0.7,
        inflation_slope: float = 1.0,
        max_inflation: float = 2.5,
    ) -> None:
        if capacity_mb <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= pressure_floor < 1:
            raise ValueError("pressure_floor must be in [0, 1)")
        if inflation_slope <= 0:
            raise ValueError("inflation_slope must be positive")
        if max_inflation <= 0:
            raise ValueError("max_inflation must be positive")
        self.capacity_mb = capacity_mb
        self.pressure_floor = pressure_floor
        self.inflation_slope = inflation_slope
        #: Physical ceiling: a miss rate cannot exceed 100%, so the
        #: inflation a tenant can suffer saturates no matter how many
        #: trashers pile on.
        self.max_inflation = max_inflation

    def resolve(self, demanded_mb: float) -> CacheState:
        if demanded_mb < 0:
            raise ValueError("demanded working set cannot be negative")
        occupancy = demanded_mb / self.capacity_mb
        if occupancy <= self.pressure_floor:
            inflation = 0.0
        else:
            inflation = min(
                self.max_inflation,
                self.inflation_slope * (occupancy - self.pressure_floor),
            )
        return CacheState(
            demanded_mb=demanded_mb,
            capacity_mb=self.capacity_mb,
            occupancy=occupancy,
            miss_inflation=inflation,
        )
