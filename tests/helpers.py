"""Shared test utilities: gradient checking and trace comparison."""

from __future__ import annotations

import numpy as np

from repro.nn.losses import MSELoss
from repro.nn.module import Module


def assert_traces_identical(a, b) -> None:
    """Bit-exact equality of two engine traces (NaN compares equal)."""
    import dataclasses

    assert a.times == b.times
    assert a.concurrency == b.concurrency
    assert len(a._counter_rows) == len(b._counter_rows)
    for i, (ra, rb) in enumerate(zip(a._counter_rows, b._counter_rows)):
        assert np.array_equal(ra, rb, equal_nan=True), f"counter row {i} differs"
    assert len(a.records) == len(b.records)
    for ra, rb in zip(a.records, b.records):
        fa, fb = dataclasses.asdict(ra), dataclasses.asdict(rb)
        assert fa.keys() == fb.keys()
        for key in fa:
            va, vb = fa[key], fb[key]
            same = va == vb or (va != va and vb != vb)  # NaN == NaN
            assert same, f"record {ra.app_id} field {key}: {va!r} != {vb!r}"


def numeric_grad(f, array: np.ndarray, index: tuple, eps: float = 1e-6) -> float:
    """Central-difference derivative of scalar ``f()`` w.r.t. one element."""
    old = array[index]
    array[index] = old + eps
    up = f()
    array[index] = old - eps
    down = f()
    array[index] = old
    return (up - down) / (2 * eps)


def check_param_grads(
    module: Module,
    inputs: tuple[np.ndarray, ...],
    target: np.ndarray,
    n_checks: int = 5,
    tol: float = 1e-5,
    rng: np.random.Generator | None = None,
) -> None:
    """Verify analytic parameter gradients against central differences.

    Runs the module in eval-free deterministic mode is the caller's
    responsibility (disable dropout by calling ``module.eval()`` and
    re-enabling training-mode layers is NOT done here — pass modules
    without stochastic layers, or set dropout p=0).
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    loss = MSELoss()

    def forward_loss() -> float:
        return loss.forward(module.forward(*inputs), target)

    module.zero_grad()
    value = forward_loss()
    assert np.isfinite(value)
    module.backward(loss.backward())

    for param in module.parameters():
        flat = param.value.reshape(-1)
        flat_grad = param.grad.reshape(-1)
        indices = rng.choice(flat.size, size=min(n_checks, flat.size), replace=False)
        for idx in indices:
            num = numeric_grad(forward_loss, flat, (idx,))
            ana = flat_grad[idx]
            assert abs(num - ana) <= tol * max(1.0, abs(num), abs(ana)), (
                f"gradient mismatch for {param.name}[{idx}]: "
                f"analytic {ana}, numeric {num}"
            )


def check_input_grad(
    module: Module,
    x: np.ndarray,
    target: np.ndarray,
    n_checks: int = 5,
    tol: float = 1e-5,
    rng: np.random.Generator | None = None,
) -> None:
    """Verify the returned input gradient against central differences."""
    rng = rng if rng is not None else np.random.default_rng(0)
    loss = MSELoss()

    def forward_loss() -> float:
        return loss.forward(module.forward(x), target)

    module.zero_grad()
    forward_loss()
    dx = module.backward(loss.backward())
    assert dx.shape == x.shape

    flat_x = x.reshape(-1)
    flat_dx = dx.reshape(-1)
    indices = rng.choice(flat_x.size, size=min(n_checks, flat_x.size), replace=False)
    for idx in indices:
        num = numeric_grad(forward_loss, flat_x, (idx,))
        ana = flat_dx[idx]
        assert abs(num - ana) <= tol * max(1.0, abs(num), abs(ana)), (
            f"input-gradient mismatch at {idx}: analytic {ana}, numeric {num}"
        )
