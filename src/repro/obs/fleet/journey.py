"""Cross-node deployment lifecycle tracing for fleet runs.

A *journey* is the full life of one deployment as the rack sees it:
``queued`` (the arrival enters the replay) → ``placement`` (the global
scheduler picks a node) → ``admission`` (the node's engine accepts it)
→ optional ``parked`` / ``retry`` / ``dropped`` hops while a link
outage is waited out → ``finished``.  Every hop carries the fleet
clock and the node that produced it, so a deployment that is decided
on one node, parked there through an outage and finally served can be
replayed hop by hop — the cross-node counterpart of the single-node
decision-audit log, and joined to it by the same
``(app_name, decided_s)`` key :class:`repro.obs.audit.DecisionAuditLog`
uses for its outcome join.

Journeys live in one session-global :class:`FleetJournal` (mirroring
the runtime's single audit log): every :class:`ClusterFleet`
constructed while observability is enabled records into it through
per-node :class:`NodeJourney` recorders, and
:func:`repro.obs.dump` writes ``journeys.jsonl`` plus a Chrome-trace
rendering (``journeys_trace.json``) whenever the journal is non-empty.
The journal never touches an RNG and is only ever created behind
``obs.enabled()`` — disabled fleet runs stay bit-identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = [
    "JourneyHop",
    "DeploymentJourney",
    "FleetJournal",
    "NodeJourney",
    "session_journal",
    "active_journal",
    "reset_journal",
    "HOP_STAGES",
]

#: Recognized lifecycle stages, in their canonical order of appearance.
HOP_STAGES = (
    "queued",      # arrival entered the fleet replay
    "placement",   # global scheduler chose (node, mode)
    "admission",   # the node's engine accepted the deployment
    "parked",      # remote placement parked in an outage retry queue
    "retry",       # a parked retry attempt failed (backoff continues)
    "dropped",     # parked deployment dropped after the retry limit
    "finished",    # the deployment completed on its serving node
)

#: Stages a single deployment passes at most once — used to split
#: same-key journeys (two same-app arrivals decided in one fleet tick).
_UNIQUE_STAGES = frozenset(("queued", "placement", "admission", "parked"))
#: Stages after which a journey accepts no further hops.
_TERMINAL_STAGES = ("finished", "dropped")


@dataclass
class JourneyHop:
    """One lifecycle transition, stamped on the fleet clock."""

    stage: str
    sim_time: float
    node: str | None = None
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        out = {"stage": self.stage, "sim": round(self.sim_time, 6)}
        if self.node is not None:
            out["node"] = self.node
        if self.detail:
            out.update(self.detail)
        return out


@dataclass
class DeploymentJourney:
    """All hops of one deployment, keyed by its decision time."""

    journey_id: int
    app_name: str
    decided_s: float
    hops: list[JourneyHop] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return any(h.stage == "finished" for h in self.hops)

    @property
    def dropped(self) -> bool:
        return any(h.stage == "dropped" for h in self.hops)

    @property
    def closed(self) -> bool:
        return self.finished or self.dropped

    @property
    def serving_node(self) -> str | None:
        """The node that finished (or last touched) the deployment."""
        for hop in reversed(self.hops):
            if hop.node is not None:
                return hop.node
        return None

    def nodes(self) -> tuple[str, ...]:
        """Every node the journey touched, in first-seen order."""
        seen: list[str] = []
        for hop in self.hops:
            if hop.node is not None and hop.node not in seen:
                seen.append(hop.node)
        return tuple(seen)

    def stages(self) -> tuple[str, ...]:
        return tuple(h.stage for h in self.hops)

    def complete(self) -> bool:
        """A finished journey with a coherent hop sequence.

        Complete means: ends in ``finished``, contains an ``admission``
        (the engine really ran it), hop times are non-decreasing, and no
        hop follows the terminal one — the acceptance predicate for
        "no orphaned placement or retry hops".
        """
        if not self.finished:
            return False
        stages = self.stages()
        if stages[-1] != "finished" or "admission" not in stages:
            return False
        times = [h.sim_time for h in self.hops]
        return all(b >= a - 1e-9 for a, b in zip(times, times[1:]))

    def to_dict(self) -> dict:
        return {
            "journey_id": self.journey_id,
            "app": self.app_name,
            "decided_s": round(self.decided_s, 6),
            "nodes": list(self.nodes()),
            "complete": self.complete(),
            "hops": [h.to_dict() for h in self.hops],
        }


class FleetJournal:
    """Append-only journey store shared by every fleet in a session.

    Hops arrive from independent call sites (replay loop, placement,
    engine admission, retry queue, finish loop) and are stitched by the
    ``(app_name, round(decided_s, 6))`` key — the same key the audit
    log joins outcomes on.  Re-used keys are real: two same-app
    arrivals can be decided in the same fleet tick (the replay clock
    advances in whole ticks), and sequential scenario replays repeat
    times.  Disambiguation is FIFO with two refinements: a
    once-per-deployment stage (``queued``/``placement``/``admission``/
    ``parked``) lands on the oldest open journey that *lacks* that
    stage (opening a sibling journey when every open one has it), and
    a retry/terminal hop prefers the oldest open journey already
    touching its node before falling back to the oldest open overall.
    Same-key journeys on one node remain interchangeable — identical
    app, decision time and lane — so FIFO is exact there.
    """

    def __init__(self) -> None:
        self.journeys: list[DeploymentJourney] = []
        self._open: dict[tuple[str, float], list[DeploymentJourney]] = {}

    def __len__(self) -> int:
        return len(self.journeys)

    @staticmethod
    def _key(app_name: str, decided_s: float) -> tuple[str, float]:
        return (app_name, round(decided_s, 6))

    def hop(
        self,
        app_name: str,
        decided_s: float,
        stage: str,
        sim_time: float,
        node: str | None = None,
        **detail,
    ) -> None:
        """Record one lifecycle hop (opens a journey on first sight)."""
        key = self._key(app_name, decided_s)
        queue = self._open.get(key) or []
        journey = None
        if stage in _UNIQUE_STAGES:
            # One per deployment.  Hops of one deployment are recorded
            # contiguously (the replay finishes placing an arrival
            # before touching the next), so the sibling this hop
            # belongs to is the *newest* open journey still missing
            # the stage — an older open sibling missing it is an
            # abandoned journey from an earlier replay.
            for candidate in reversed(queue):
                if stage not in candidate.stages():
                    journey = candidate
                    break
            if journey is None and stage == "placement" and queue:
                # deploy_anywhere records one placement hop per
                # *attempted* node; later attempts belong to the
                # deployment being placed right now.
                journey = queue[-1]
        else:
            # Retry/terminal hops carry the acting node — prefer the
            # sibling journey already on that lane, else oldest open.
            if node is not None:
                for candidate in queue:
                    if node in candidate.nodes():
                        journey = candidate
                        break
            if journey is None and queue:
                journey = queue[0]
        if journey is None:
            # No matching open journey (including a terminal hop on a
            # run started before obs was enabled): open one — it will
            # simply report incomplete if it never sees an admission.
            journey = DeploymentJourney(
                journey_id=len(self.journeys),
                app_name=app_name,
                decided_s=round(decided_s, 6),
            )
            self.journeys.append(journey)
            self._open.setdefault(key, []).append(journey)
        journey.hops.append(
            JourneyHop(stage=stage, sim_time=sim_time, node=node,
                       detail=dict(detail))
        )
        if stage in _TERMINAL_STAGES:
            queue = self._open.get(key)
            if queue:
                queue.remove(journey)
                if not queue:
                    del self._open[key]

    # -- queries -------------------------------------------------------------
    def finished(self) -> list[DeploymentJourney]:
        return [j for j in self.journeys if j.finished]

    def incomplete(self) -> list[DeploymentJourney]:
        """Finished journeys that fail the completeness predicate."""
        return [j for j in self.journeys if j.finished and not j.complete()]

    def open_journeys(self) -> list[DeploymentJourney]:
        """Journeys with no terminal hop yet (running or abandoned)."""
        return [j for j in self.journeys if not j.closed]

    # -- export --------------------------------------------------------------
    def to_jsonl(self) -> str:
        return "".join(
            json.dumps(j.to_dict()) + "\n" for j in self.journeys
        )

    def to_chrome_trace(self) -> dict:
        """Journeys as Chrome trace-event JSON on the simulated clock.

        Each node becomes a thread; consecutive hop pairs of a journey
        become ``ph:"X"`` complete events attributed to the node of the
        *earlier* hop (the node responsible for that leg), so a parked
        deployment shows its outage wait on the node that parked it.
        Zero-length legs are emitted as 1 µs slivers so Perfetto renders
        them.  Loadable in ``chrome://tracing`` exactly like the
        runtime's ``trace.json``.
        """
        nodes = sorted(
            {h.node for j in self.journeys for h in j.hops if h.node is not None}
        )
        tid_of = {node: i + 1 for i, node in enumerate(nodes)}
        events: list[dict] = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": node},
            }
            for node, tid in tid_of.items()
        ]
        for journey in self.journeys:
            for prev, nxt in zip(journey.hops, journey.hops[1:]):
                tid = tid_of.get(prev.node) or tid_of.get(nxt.node) or 0
                duration_us = max((nxt.sim_time - prev.sim_time) * 1e6, 1.0)
                events.append(
                    {
                        "name": f"{journey.app_name}:{prev.stage}→{nxt.stage}",
                        "ph": "X",
                        "cat": "journey",
                        "pid": 1,
                        "tid": tid,
                        "ts": prev.sim_time * 1e6,
                        "dur": duration_us,
                        "args": {
                            "journey_id": journey.journey_id,
                            "app": journey.app_name,
                            "from": prev.stage,
                            "to": nxt.stage,
                            **prev.detail,
                        },
                    }
                )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def reset(self) -> None:
        self.journeys.clear()
        self._open.clear()


class NodeJourney:
    """A journal handle bound to one node label.

    Engines hold one of these (or ``None`` when obs is off) so every
    hop they record is attributed without the engine knowing about the
    fleet — the single-node analogue of a node-labeled metric view.
    """

    __slots__ = ("journal", "node")

    def __init__(self, journal: FleetJournal, node: str) -> None:
        self.journal = journal
        self.node = node

    def hop(
        self, app_name: str, decided_s: float, stage: str, sim_time: float,
        **detail,
    ) -> None:
        self.journal.hop(
            app_name, decided_s, stage, sim_time, node=self.node, **detail
        )


# -- session-global journal ----------------------------------------------------

_journal: FleetJournal | None = None


def session_journal() -> FleetJournal:
    """The session's journal, created on first use (fleet ctor path)."""
    global _journal
    if _journal is None:
        _journal = FleetJournal()
    return _journal


def active_journal() -> FleetJournal | None:
    """The journal if one exists — never creates (dump/reset path)."""
    return _journal


def reset_journal() -> None:
    """Drop the session journal (called by ``obs.disable``/``reset``)."""
    global _journal
    _journal = None
