"""Orchestrator daemon: admission ops, watchdog, checkpoint round-trip."""

import json

import pytest

from repro import obs
from repro.faults.errors import CheckpointError
from repro.faults.plan import FaultPlan, FaultSpec
from repro.serve.daemon import (
    DaemonConfig,
    OrchestratorDaemon,
    load_daemon_checkpoint,
)
from repro.serve.safety import SafetyConstraint, SafetyEnvelope


def make_daemon(clock, *, envelope=None, plan=None, **config):
    config.setdefault("tick_interval_s", 0.5)
    return OrchestratorDaemon(
        DaemonConfig(**config), envelope=envelope, plan=plan, clock=clock
    )


def pump_until(daemon, clock, predicate, limit=200):
    """Advance the fake wall clock and pump until ``predicate(daemon)``."""
    for _ in range(limit):
        if predicate(daemon):
            return True
        clock.advance(daemon.config.tick_interval_s)
        daemon.pump()
    return predicate(daemon)


class TestRequestHandling:
    @pytest.mark.parametrize(
        "line",
        ["{not json", "[1, 2]", '"just a string"', '{"op": "explode"}',
         '{"no": "op"}'],
    )
    def test_bad_input_never_raises(self, clock, line):
        daemon = make_daemon(clock)
        response = daemon.handle_line(line)
        assert response["ok"] is False
        assert daemon.counters["malformed"] == 1

    def test_handler_exceptions_become_error_responses(self, clock):
        daemon = make_daemon(clock)
        response = daemon.handle_line(
            json.dumps({"op": "deploy", "app": "redis", "duration": "soon"})
        )
        assert response["ok"] is False

    def test_deploy_query_roundtrip(self, clock):
        daemon = make_daemon(clock)
        response = daemon.handle_line(
            json.dumps({"op": "deploy", "app": "redis"})
        )
        assert response["ok"] is True
        assert response["status"] == "running"
        assert response["node"].startswith("n")
        queried = daemon.handle_line(
            json.dumps({"op": "query", "id": response["id"]})
        )
        assert queried["ok"] is True
        assert queried["status"] == "running"
        assert daemon.counters["submitted"] == 1

    def test_unknown_workload_rejected(self, clock):
        daemon = make_daemon(clock)
        response = daemon.handle_line(
            json.dumps({"op": "deploy", "app": "kafka"})
        )
        assert response["ok"] is False
        assert "unknown workload" in response["error"]

    def test_complete_uses_the_natural_finish_path(self, clock):
        daemon = make_daemon(clock)
        deployed = daemon.handle_line(
            json.dumps({"op": "deploy", "app": "redis", "duration": 500})
        )
        completing = daemon.handle_line(
            json.dumps({"op": "complete", "id": deployed["id"]})
        )
        assert completing == {
            "ok": True, "id": deployed["id"], "status": "completing",
        }
        daemon.handle_line(json.dumps({"op": "tick", "n": 2}))
        queried = daemon.handle_line(
            json.dumps({"op": "query", "id": deployed["id"]})
        )
        assert queried["status"] == "finished"
        assert daemon.counters["finished"] == 1
        assert daemon.counters["completed_early"] == 1
        assert daemon.counters["double_finished"] == 0

    def test_complete_rejects_unknown_and_nonrunning_ids(self, clock):
        daemon = make_daemon(clock)
        assert daemon.handle_line(
            json.dumps({"op": "complete", "id": "d99"})
        )["ok"] is False
        deployed = daemon.handle_line(
            json.dumps({"op": "deploy", "app": "redis"})
        )
        daemon.handle_line(json.dumps({"op": "complete", "id": deployed["id"]}))
        daemon.handle_line(json.dumps({"op": "tick", "n": 2}))
        again = daemon.handle_line(
            json.dumps({"op": "complete", "id": deployed["id"]})
        )
        assert again["ok"] is False
        assert "finished" in again["error"]

    def test_health_reports_counters_and_safety(self, clock):
        daemon = make_daemon(clock)
        daemon.handle_line(json.dumps({"op": "deploy", "app": "memcached"}))
        health = daemon.handle_line(json.dumps({"op": "health"}))
        assert health["ok"] is True
        assert health["status"] == "serving"
        assert health["running"] == 1
        assert health["breaker"] == "closed"
        assert health["counters"]["submitted"] == 1
        assert health["safety"] == {"vetoes": {}, "downgrades": {}}

    def test_drain_refuses_new_work(self, clock):
        daemon = make_daemon(clock)
        drained = daemon.handle_line(
            json.dumps({"op": "drain", "reason": "test"})
        )
        assert drained == {"ok": True, "status": "draining"}
        assert daemon.drain_reason == "test"
        refused = daemon.handle_line(
            json.dumps({"op": "deploy", "app": "redis"})
        )
        assert refused["ok"] is False
        assert "draining" in refused["error"]
        assert daemon.handle_line(
            json.dumps({"op": "health"})
        )["status"] == "draining"

    def test_pause_stops_the_pump(self, clock):
        daemon = make_daemon(clock)
        daemon.handle_line(json.dumps({"op": "pause"}))
        clock.advance(10.0)
        assert daemon.pump() is False
        assert daemon.fleet.now == 0.0
        daemon.handle_line(json.dumps({"op": "resume"}))
        clock.advance(1.0)
        assert daemon.pump() is True
        assert daemon.fleet.now == daemon.config.dt


class TestSafetyIntegration:
    def test_veto_is_audited_and_counted(self, clock, tmp_path):
        obs.enable_live(tmp_path / "live", flush_every=1, profile=False)
        envelope = SafetyEnvelope(
            (SafetyConstraint("max_concurrent_remote", 1),)
        )
        daemon = make_daemon(clock, envelope=envelope)
        responses = [
            daemon.handle_line(json.dumps({"op": "deploy", "app": "redis"}))
            for _ in range(4)
        ]
        vetoed = [r for r in responses if r.get("status") == "vetoed"]
        assert vetoed, "expected at least one safety veto"
        assert vetoed[0]["ok"] is False
        assert vetoed[0]["constraint"] == "max_concurrent_remote"
        assert daemon.counters["vetoed"] == len(vetoed)
        # Vetoed requests still get a ledger id for postmortems.
        entry = daemon.ledger[vetoed[0]["id"]]
        assert entry["status"] == "vetoed"
        assert entry["constraint"] == "max_concurrent_remote"
        audited = [
            r for r in obs.audit().records
            if r.cause == "max_concurrent_remote"
        ]
        assert len(audited) == len(vetoed)
        assert all(
            r.reason == "safety-veto:max_concurrent_remote" for r in audited
        )
        assert all(r.chosen_mode == "none" for r in audited)

    def test_downgrade_lands_locally(self, clock):
        envelope = SafetyEnvelope(
            (
                SafetyConstraint(
                    "max_concurrent_remote", 1, action="downgrade"
                ),
            )
        )
        daemon = make_daemon(clock, envelope=envelope)
        responses = [
            daemon.handle_line(json.dumps({"op": "deploy", "app": "redis"}))
            for _ in range(3)
        ]
        downgraded = [r for r in responses if r.get("mode") == "local"]
        assert daemon.counters["downgraded"] == len(downgraded)
        assert daemon.counters["vetoed"] == 0
        assert all(r["ok"] for r in responses)


class TestFaultPlan:
    def plan(self):
        return FaultPlan(
            faults=(
                FaultSpec("conn_drop", 0.0, 10.0,
                          {"probability": 1.0}),
                FaultSpec("wedged_tick", 2.0, 3.0),
            ),
            seed=7,
        )

    def test_conn_drop_window(self, clock):
        daemon = make_daemon(clock, plan=self.plan())
        assert daemon.maybe_drop_connection() is True
        assert daemon.counters["dropped_conns"] == 1
        # Outside the window the dice are never rolled.
        daemon.fleet._now = 50.0
        assert daemon.maybe_drop_connection() is False

    def test_watchdog_restarts_wedged_loop_behind_breaker(self, clock):
        daemon = make_daemon(
            clock,
            plan=self.plan(),
            watchdog_timeout_s=2.0,
            breaker_cooldown_s=10.0,
        )
        # Tick up to the wedge window: the loop stops advancing sim time.
        pump_until(daemon, clock, lambda d: d.fleet.now >= 2.0)
        wedged_at = daemon.fleet.now
        assert daemon._wedge_active() is not None
        # The heartbeat ages on the wall clock until the watchdog fires.
        pump_until(
            daemon, clock, lambda d: d.counters["watchdog_restarts"] == 1
        )
        assert daemon.fleet.now == wedged_at  # wedge never advanced sim time
        assert daemon.breaker.state.value == "open"
        # Cooldown runs on the sim clock; the first probe tick re-closes.
        pump_until(
            daemon, clock, lambda d: d.breaker.state.value == "closed"
        )
        assert daemon.fleet.now >= wedged_at + daemon.config.breaker_cooldown_s
        assert daemon.counters["watchdog_restarts"] == 1
        # The cleared window must not re-wedge the loop.
        clock.advance(daemon.config.tick_interval_s)
        assert daemon.pump() is True


class TestCheckpoint:
    def test_save_restore_save_is_bit_identical(self, clock, tmp_path):
        daemon = make_daemon(clock, checkpoint_path=str(tmp_path / "d.ckpt"))
        for app in ("redis", "memcached", "redis"):
            daemon.handle_line(json.dumps({"op": "deploy", "app": app}))
        daemon.handle_line(json.dumps({"op": "tick", "n": 3}))
        daemon.handle_line(json.dumps({"op": "nope"}))  # malformed counter
        first = daemon.save(tmp_path / "a.ckpt")
        restored = OrchestratorDaemon.restore(first, clock=clock)
        second = restored.save(tmp_path / "b.ckpt")
        assert first.read_bytes() == second.read_bytes()
        assert restored.counters == daemon.counters
        assert restored.ledger == daemon.ledger
        assert restored.fleet.now == daemon.fleet.now
        assert restored._by_key == daemon._by_key

    def test_restored_deployments_keep_finishing(self, clock, tmp_path):
        daemon = make_daemon(clock)
        deployed = daemon.handle_line(
            json.dumps({"op": "deploy", "app": "redis"})
        )
        path = daemon.save(tmp_path / "d.ckpt")
        restored = OrchestratorDaemon.restore(path, clock=clock)
        completing = restored.handle_line(
            json.dumps({"op": "complete", "id": deployed["id"]})
        )
        assert completing["ok"] is True
        restored.handle_line(json.dumps({"op": "tick", "n": 2}))
        assert restored.ledger[deployed["id"]]["status"] == "finished"
        assert restored.counters["finished"] == 1
        assert restored.counters["double_finished"] == 0

    def test_finalize_writes_checkpoint_and_annotates_stream(
        self, clock, tmp_path
    ):
        live = obs.enable_live(tmp_path / "live", flush_every=1,
                               profile=False)
        stream = live.exporter.path
        daemon = make_daemon(
            clock, checkpoint_path=str(tmp_path / "final.ckpt")
        )
        daemon.handle_line(json.dumps({"op": "deploy", "app": "redis"}))
        daemon.begin_drain("unit test")
        path = daemon.finalize()
        assert path is not None and path.exists()
        records = [
            json.loads(line) for line in stream.read_text().splitlines()
        ]
        end = [r for r in records if r.get("t") == "end"]
        assert end and end[-1]["reason"] == "daemon draining"
        drains = [r for r in records if r.get("kind") == "drain"]
        assert drains and drains[0]["reason"] == "unit test"

    def test_missing_file_is_a_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="no daemon checkpoint"):
            load_daemon_checkpoint(tmp_path / "nope.ckpt")

    def test_corrupt_json_is_a_checkpoint_error(self, tmp_path):
        path = tmp_path / "d.ckpt"
        path.write_text("{truncated")
        with pytest.raises(CheckpointError, match="corrupt"):
            load_daemon_checkpoint(path)

    def test_wrong_version_is_a_checkpoint_error(self, clock, tmp_path):
        daemon = make_daemon(clock)
        path = daemon.save(tmp_path / "d.ckpt")
        data = json.loads(path.read_text())
        data["version"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointError, match="version"):
            load_daemon_checkpoint(path)

    @pytest.mark.parametrize(
        "missing", ["config", "now", "engines", "ledger", "counters"]
    )
    def test_stale_payload_names_the_missing_field(
        self, clock, tmp_path, missing
    ):
        daemon = make_daemon(clock)
        path = daemon.save(tmp_path / "d.ckpt")
        data = json.loads(path.read_text())
        del data[missing]
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointError, match=missing):
            load_daemon_checkpoint(path)

    def test_unknown_config_field_rejected(self, clock, tmp_path):
        daemon = make_daemon(clock)
        path = daemon.save(tmp_path / "d.ckpt")
        data = json.loads(path.read_text())
        data["config"]["turbo"] = True
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointError, match="turbo"):
            OrchestratorDaemon.restore(path)

    def test_engine_count_mismatch_rejected(self, clock, tmp_path):
        daemon = make_daemon(clock)
        path = daemon.save(tmp_path / "d.ckpt")
        data = json.loads(path.read_text())
        data["engines"] = data["engines"][:1]
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointError, match="engines"):
            OrchestratorDaemon.restore(path)


class TestConfigValidation:
    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            DaemonConfig(n_nodes=0)
        with pytest.raises(ValueError):
            DaemonConfig(tick_interval_s=0.0)
        with pytest.raises(ValueError):
            DaemonConfig(drain_grace_s=-1.0)
