"""Watcher.observe_pressure convenience path."""

import numpy as np

from repro.cluster import ClusterEngine
from repro.hardware import Testbed, TestbedConfig
from repro.telemetry import Watcher
from repro.workloads import MemoryMode, spark_profile


class TestObservePressure:
    def test_synthesizes_and_records(self):
        engine = ClusterEngine(testbed=Testbed(TestbedConfig(counter_noise=0.0)))
        watcher = Watcher()
        engine.deploy(spark_profile("lr"), MemoryMode.REMOTE)
        pressure = engine.tick()
        watcher.observe_pressure(engine, pressure)
        assert len(watcher.store) == 1
        window = watcher.history(10.0)
        # Remote deployment -> flit traffic present in the sample.
        assert window[-1, 4] > 0
        assert np.all(window[:-1] == 0)  # zero-padded warm-up

    def test_multiple_ticks_accumulate(self):
        engine = ClusterEngine()
        watcher = Watcher()
        for _ in range(5):
            pressure = engine.tick()
            watcher.observe_pressure(engine, pressure)
        assert len(watcher.store) == 5
