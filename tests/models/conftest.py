"""Shared fixtures for model tests: tiny traces and signatures.

Session-scoped so the (mildly expensive) simulation runs once for the
whole model test module set.
"""

import pytest

from repro.cluster import ScenarioConfig, run_scenario
from repro.models import FeatureConfig, SignatureLibrary
from repro.workloads import be_profiles, lc_profiles


@pytest.fixture(scope="session")
def tiny_traces():
    configs = [
        ScenarioConfig(duration_s=900.0, spawn_interval=(5, high), seed=s)
        for s, high in enumerate((20, 40, 60))
    ]
    return [run_scenario(c) for c in configs]


@pytest.fixture(scope="session")
def feature_config():
    return FeatureConfig()


@pytest.fixture(scope="session")
def signatures(feature_config):
    library = SignatureLibrary(feature_config=feature_config)
    library.capture_all(list(be_profiles().values()))
    library.capture_all(list(lc_profiles().values()))
    return library
