#!/usr/bin/env python
"""Microbenchmark for the Predictor inference fast path.

Measures a multi-candidate orchestration tick — every candidate arrival
needs performance estimates for both memory modes from the same history
window — and compares:

* **sequential** — the pre-fast-path behaviour: one
  ``predict_performance`` call per (candidate, mode) with the memo
  invalidated before each call, so every call re-subsamples the window
  and re-runs the system-state model;
* **fast** — ``predict_both_modes``: one batched N=2 performance-model
  forward per candidate, with the sub-sampled window and Ŝ memoized
  across all candidates of the tick.

Also times the LSTM inference mode (cache-free forward, one input
projection GEMM) against the training-mode forward on the system-state
model.

Outputs are asserted numerically identical (atol=1e-12) between the two
paths before any timing is reported.  Run::

    PYTHONPATH=src python benchmarks/bench_predictor.py            # full
    PYTHONPATH=src python benchmarks/bench_predictor.py --smoke    # CI

The benchmark fabricates trained models (random weights, fitted
scalers): inference cost does not depend on the weight values, and this
keeps the benchmark free of a multi-minute training phase.
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.models.features import FeatureConfig
from repro.models.predictor import Predictor
from repro.obs.perf.bench import fabricate_predictor
from repro.workloads import MemoryMode, spark_profile


def build_predictor(
    config: FeatureConfig, lstm_hidden: int, seed: int = 0
) -> Predictor:
    """A fully wired Predictor with fabricated (untrained) weights.

    Fabrication now lives in :func:`repro.obs.perf.bench.fabricate_predictor`
    (shared with the engine benchmark); this wrapper keeps the historical
    BE-only shape this benchmark has always measured.
    """
    return fabricate_predictor(
        config, lstm_hidden=lstm_hidden, seed=seed, with_lc=False
    )


def _time(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_tick(
    predictor: Predictor,
    history: np.ndarray,
    candidates: int,
    repeats: int,
) -> dict[str, float]:
    profile = spark_profile("gmm")
    modes = (MemoryMode.LOCAL, MemoryMode.REMOTE)

    def sequential() -> list[dict[MemoryMode, float]]:
        out = []
        for _ in range(candidates):
            estimates = {}
            for mode in modes:
                predictor.invalidate_memo()  # pre-fast-path: no reuse at all
                estimates[mode] = predictor.predict_performance(
                    profile, history, mode
                )
            out.append(estimates)
        return out

    def fast() -> list[dict[MemoryMode, float]]:
        predictor.invalidate_memo()  # fresh tick; memo warms on candidate 1
        return [
            predictor.predict_both_modes(profile, history)
            for _ in range(candidates)
        ]

    def fast_per_candidate() -> list[float]:
        """Best-of-1 latency of each candidate within one fast tick."""
        predictor.invalidate_memo()
        latencies = []
        for _ in range(candidates):
            start = time.perf_counter()
            predictor.predict_both_modes(profile, history)
            latencies.append(time.perf_counter() - start)
        return latencies

    # Correctness gate before timing anything.
    reference = sequential()
    batched = fast()
    for seq, bat in zip(reference, batched):
        for mode in modes:
            if abs(seq[mode] - bat[mode]) > 1e-12:
                raise AssertionError(
                    f"fast path diverged for {mode.value}: "
                    f"{seq[mode]!r} vs {bat[mode]!r}"
                )

    t_seq = _time(sequential, repeats)
    t_fast = _time(fast, repeats)
    per_candidate = fast_per_candidate()
    return {
        "sequential_s": t_seq,
        "fast_s": t_fast,
        "speedup": t_seq / t_fast,
        "per_candidate_s": per_candidate,
    }


def bench_lstm_mode(
    predictor: Predictor, repeats: int
) -> dict[str, float]:
    """Training-mode vs inference-mode forward of the system-state model."""
    model = predictor.system_state.model
    config = predictor.config
    x = np.random.default_rng(7).normal(
        size=(8, config.history_steps, config.n_metrics)
    )

    model.train()
    # Dropout/batch-norm noise does not matter for timing; the encoders
    # dominate the cost.
    t_train = _time(lambda: model.forward(x), repeats)
    model.eval()
    t_infer = _time(lambda: model.forward(x), repeats)
    model.eval()
    return {
        "train_mode_s": t_train,
        "inference_mode_s": t_infer,
        "speedup": t_train / t_infer,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--candidates", type=int, default=8,
        help="candidate arrivals sharing one tick (default 8)",
    )
    parser.add_argument(
        "--repeats", type=int, default=20,
        help="timing repetitions, best-of (default 20)",
    )
    parser.add_argument(
        "--hidden", type=int, default=32,
        help="LSTM hidden width (default 32, the paper's size)",
    )
    parser.add_argument(
        "--check-speedup", type=float, default=None, metavar="X",
        help="exit non-zero unless the tick speedup is >= X",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: tiny sizes, single repeat, no thresholds",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the results as a JSON report (e.g. "
             "BENCH_predictor.json, uploaded as a CI artifact)",
    )
    args = parser.parse_args()
    if args.smoke:
        args.candidates, args.repeats, args.hidden = 4, 2, 8
        args.check_speedup = None

    config = FeatureConfig()
    predictor = build_predictor(config, lstm_hidden=args.hidden)
    history = np.random.default_rng(42).uniform(
        0.5, 2.0, size=(config.history_raw_steps, config.n_metrics)
    )

    tick = bench_tick(predictor, history, args.candidates, args.repeats)
    lstm = bench_lstm_mode(predictor, args.repeats)

    print(f"predict_both_modes tick ({args.candidates} candidates, "
          f"hidden={args.hidden}, best of {args.repeats}):")
    print(f"  sequential (per-call, no memo) : {tick['sequential_s'] * 1e3:8.2f} ms")
    print(f"  batched + memoized fast path   : {tick['fast_s'] * 1e3:8.2f} ms")
    print(f"  speedup                        : {tick['speedup']:8.2f}x")
    print("system-state model forward (N=8):")
    print(f"  training-mode (BPTT caches)    : {lstm['train_mode_s'] * 1e3:8.2f} ms")
    print(f"  inference-mode (cache-free)    : {lstm['inference_mode_s'] * 1e3:8.2f} ms")
    print(f"  speedup                        : {lstm['speedup']:8.2f}x")
    print("outputs: batched/cached identical to sequential (atol=1e-12)")

    if args.json is not None:
        report = {
            "kind": "predictor",
            "candidates": args.candidates,
            "hidden": args.hidden,
            "repeats": args.repeats,
            "smoke": args.smoke,
            "tick": tick,
            "lstm": lstm,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"json report: {args.json}")

    if args.check_speedup is not None and tick["speedup"] < args.check_speedup:
        print(f"FAIL: tick speedup {tick['speedup']:.2f}x < "
              f"required {args.check_speedup:.2f}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
