"""Distribution summaries used across the evaluation figures."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DistributionSummary", "summarize", "relative_change"]


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-style summary of a performance sample."""

    count: int
    mean: float
    median: float
    p25: float
    p75: float
    p99: float
    minimum: float
    maximum: float

    def iqr(self) -> float:
        return self.p75 - self.p25


def summarize(values: np.ndarray) -> DistributionSummary:
    values = np.asarray(values, dtype=np.float64)
    values = values[~np.isnan(values)]
    if values.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return DistributionSummary(
        count=int(values.size),
        mean=float(np.mean(values)),
        median=float(np.median(values)),
        p25=float(np.percentile(values, 25)),
        p75=float(np.percentile(values, 75)),
        p99=float(np.percentile(values, 99)),
        minimum=float(np.min(values)),
        maximum=float(np.max(values)),
    )


def relative_change(baseline: float, value: float) -> float:
    """(value - baseline) / baseline; raises on zero baseline."""
    if baseline == 0:
        raise ValueError("baseline must be non-zero")
    return (value - baseline) / baseline
