"""Random deployment scenarios (§V-B1).

The trace-collection procedure of the paper: within each random
inter-arrival interval, pick a random benchmark from the examined
applications or the iBench pool and deploy it randomly on local or
remote memory.  Spawn-interval sets range from {5, 20} (congested) to
{5, 60} (relaxed); 72 diverse one-hour scenarios form the training
corpus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro import obs
from repro.cluster.engine import (
    CapacityError,
    ClusterEngine,
    RemoteUnavailableError,
)
from repro.cluster.trace import Trace
from repro.hardware.config import TestbedConfig
from repro.hardware.testbed import Testbed
from repro.workloads.base import MemoryMode, WorkloadProfile
from repro.workloads.ibench import IBENCH
from repro.workloads.memcached import MEMCACHED
from repro.workloads.redis import REDIS
from repro.workloads.spark import SPARK_BENCHMARKS

__all__ = ["ScenarioConfig", "Arrival", "generate_arrivals", "run_scenario", "default_pool"]

#: A scheduler maps (profile, engine) -> memory mode at arrival time.
Scheduler = Callable[[WorkloadProfile, ClusterEngine], MemoryMode]


def default_pool() -> list[WorkloadProfile]:
    """The paper's deployment pool: Spark + Redis + Memcached + iBench.

    iBench kinds appear once each; the scenario generator draws
    uniformly, which gives interference microbenchmarks the same
    per-draw probability as any one application — replicating the
    "supplementary interference scenarios" role they play in §V-B1.
    """
    pool: list[WorkloadProfile] = list(SPARK_BENCHMARKS.values())
    pool.append(REDIS)
    pool.append(MEMCACHED)
    pool.extend(IBENCH.values())
    return pool


@dataclass(frozen=True)
class ScenarioConfig:
    """One randomized deployment scenario."""

    #: Total scenario duration in seconds (1 hour in the paper).
    duration_s: float = 3600.0
    #: Inter-arrival interval bounds in seconds, e.g. (5, 40) means each
    #: new application arrives after a Uniform(5, 40) delay.
    spawn_interval: tuple[float, float] = (5.0, 40.0)
    seed: int = 0
    #: Wall-clock duration bounds for iBench trashers.  Long-lived
    #: trashers create the sustained interference phases visible in the
    #: paper's Fig. 8 traces.
    interference_duration: tuple[float, float] = (120.0, 600.0)
    #: Drain the cluster after the last arrival so every record is
    #: complete (adds simulated time but no new arrivals).
    drain: bool = True

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        low, high = self.spawn_interval
        if not 0 < low <= high:
            raise ValueError("spawn_interval must satisfy 0 < low <= high")
        ilow, ihigh = self.interference_duration
        if not 0 < ilow <= ihigh:
            raise ValueError("interference_duration must satisfy 0 < low <= high")


@dataclass(frozen=True)
class Arrival:
    """One scheduled arrival of the scenario."""

    time: float
    profile: WorkloadProfile
    #: Mode chosen by the generator; ``None`` defers to the scheduler.
    mode: MemoryMode | None = None
    duration_s: float | None = None


def generate_arrivals(
    config: ScenarioConfig,
    pool: Sequence[WorkloadProfile] | None = None,
    random_modes: bool = True,
) -> list[Arrival]:
    """Draw the arrival sequence for one scenario."""
    pool = list(pool) if pool is not None else default_pool()
    if not pool:
        raise ValueError("workload pool is empty")
    rng = np.random.default_rng(config.seed)
    low, high = config.spawn_interval
    arrivals: list[Arrival] = []
    t = float(rng.uniform(low, high))
    while t < config.duration_s:
        profile = pool[int(rng.integers(len(pool)))]
        mode = (
            MemoryMode.REMOTE if rng.random() < 0.5 else MemoryMode.LOCAL
        ) if random_modes else None
        duration = None
        if profile.kind.value == "ibench":
            ilow, ihigh = config.interference_duration
            duration = float(rng.uniform(ilow, ihigh))
        arrivals.append(Arrival(time=t, profile=profile, mode=mode, duration_s=duration))
        t += float(rng.uniform(low, high))
    return arrivals


def _place(engine: ClusterEngine, arrival: Arrival, mode: MemoryMode) -> bool:
    """Try one placement; park remote arrivals blocked by an outage.

    Returns ``True`` when the arrival was either deployed or queued for
    retry, ``False`` when the pool is genuinely full.
    """
    try:
        engine.deploy(arrival.profile, mode, duration_s=arrival.duration_s)
    except RemoteUnavailableError:
        engine.queue_remote(arrival.profile, duration_s=arrival.duration_s)
    except CapacityError:
        return False
    return True


def run_scenario(
    config: ScenarioConfig,
    scheduler: Scheduler | None = None,
    pool: Sequence[WorkloadProfile] | None = None,
    testbed_config: TestbedConfig | None = None,
    engine: ClusterEngine | None = None,
    checkpoint_path=None,
    checkpoint_every_s: float | None = None,
) -> Trace:
    """Simulate one scenario end to end and return its trace.

    When ``scheduler`` is given it overrides the generator's random mode
    choice — this is how the orchestration evaluation replays identical
    arrival sequences under different scheduling policies (§VI-B).
    Deployments that do not fit the chosen pool fall back to the other
    pool; if neither fits the arrival is dropped (real orchestrators
    would queue, but the paper's scenarios never exhaust 1.2 TB).
    Remote arrivals that hit a link outage *are* queued (with
    exponential-backoff retry inside the engine) because the outage is
    transient, unlike capacity exhaustion.

    When a fault plan is armed (``repro.faults.runtime.activate``) and
    ``scheduler`` is not ``None``, a fresh
    :class:`~repro.faults.injector.FaultInjector` drives the plan
    against this engine for the duration of the replay.  Injection is
    deliberately scoped to policy-driven replays so offline trace
    collection (``scheduler=None``) stays pristine.

    ``checkpoint_path`` + ``checkpoint_every_s`` write a crash-safe
    resume point at arrival boundaries (see ``repro.faults.checkpoint``).
    """
    if engine is None:
        testbed = Testbed(testbed_config) if testbed_config else Testbed(
            TestbedConfig(seed=config.seed)
        )
        engine = ClusterEngine(testbed=testbed)
    arrivals = generate_arrivals(config, pool=pool, random_modes=scheduler is None)

    injector = None
    if scheduler is not None:
        from repro.faults import runtime as faults_runtime

        plan = faults_runtime.current_plan()
        if plan is not None:
            from repro.faults.injector import FaultInjector

            injector = FaultInjector(plan, scenario_seed=config.seed)
            injector.attach(
                engine, predictor=getattr(scheduler, "predictor", None)
            )
    return _replay(
        config,
        scheduler,
        engine,
        arrivals,
        start_index=0,
        injector=injector,
        checkpoint_path=checkpoint_path,
        checkpoint_every_s=checkpoint_every_s,
    )


def _replay(
    config: ScenarioConfig,
    scheduler: Scheduler | None,
    engine: ClusterEngine,
    arrivals: list[Arrival],
    start_index: int = 0,
    injector=None,
    checkpoint_path=None,
    checkpoint_every_s: float | None = None,
) -> Trace:
    """Drive ``arrivals[start_index:]`` through the engine (resumable)."""
    try:
        with obs.tracer().span(
            "scenario",
            seed=config.seed,
            duration_s=config.duration_s,
            arrivals=len(arrivals),
            scheduler=getattr(scheduler, "name", None)
            or (scheduler.__class__.__name__ if scheduler is not None else "random"),
        ) if obs.enabled() else obs.NULL_SPAN:
            last_checkpoint_s = engine.now
            for index in range(start_index, len(arrivals)):
                arrival = arrivals[index]
                # Advance the clock to the arrival instant.
                gap = arrival.time - engine.now
                if gap > 0:
                    engine.run_for(gap)
                if (
                    checkpoint_path is not None
                    and checkpoint_every_s is not None
                    and engine.now - last_checkpoint_s >= checkpoint_every_s
                ):
                    from repro.faults.checkpoint import save_checkpoint

                    save_checkpoint(
                        checkpoint_path,
                        config=config,
                        engine=engine,
                        arrivals_done=index,
                        injector=injector,
                        policy=scheduler,
                    )
                    last_checkpoint_s = engine.now
                if scheduler is not None:
                    mode = scheduler(arrival.profile, engine)
                else:
                    mode = arrival.mode if arrival.mode is not None else MemoryMode.LOCAL
                if not _place(engine, arrival, mode):
                    _place(engine, arrival, mode.other)  # drop if both full

            remaining = config.duration_s - engine.now
            if remaining > 0:
                engine.run_for(remaining)
            if config.drain:
                engine.run_until_idle()
    finally:
        if injector is not None:
            injector.detach()
    return engine.trace
