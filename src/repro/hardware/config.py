"""Testbed configuration.

Default values replicate the ThymesisFlow prototype of §III: two IBM
AC922 POWER9 servers (2 sockets, 64 logical cores, 10 MB LLC per socket,
1.2 TB DDR4-2666) connected back-to-back through Alpha Data 9V3 FPGAs
over OpenCAPI, with a 100 Gbps cable whose *application-visible*
throughput caps at ~2.5 Gbps (remark R1 of §IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LinkConfig", "NodeConfig", "TestbedConfig"]


@dataclass(frozen=True)
class LinkConfig:
    """ThymesisFlow FPGA-to-FPGA channel parameters (remarks R1/R2)."""

    #: Application-visible throughput cap in Gbps.  The paper measures
    #: ~2.5 Gbps regardless of offered load — three orders of magnitude
    #: below conventional DDR4 (R1).
    capacity_gbps: float = 2.5
    #: Channel latency below saturation, in cycles (R2: ~350).
    base_latency_cycles: float = 350.0
    #: Latency plateau once the back-pressure mechanism engages (R2: ~900).
    saturated_latency_cycles: float = 900.0
    #: Offered-load / capacity ratio at which latency starts climbing.
    #: The paper sees the knee between 4 and 8 memBw trashers.
    saturation_knee: float = 0.95
    #: Steepness of the latency transition (logistic in utilization).
    saturation_sharpness: float = 12.0
    #: Flit size of the OpenCAPI transport in bytes (§IV-B: 32 B flits).
    flit_bytes: int = 32
    #: Fraction of capacity that still trickles through during a full
    #: link outage: the FPGA back-pressure FIFOs keep draining in-flight
    #: transactions, so delivered throughput never drops to exactly zero
    #: (which also keeps the back-pressure stretch finite-but-huge
    #: instead of degenerate).
    outage_drain_fraction: float = 0.02

    def __post_init__(self) -> None:
        if self.capacity_gbps <= 0:
            raise ValueError("link capacity must be positive")
        if not 0 < self.outage_drain_fraction < 1:
            raise ValueError("outage_drain_fraction must be in (0, 1)")
        if self.base_latency_cycles <= 0:
            raise ValueError("base latency must be positive")
        if self.saturated_latency_cycles < self.base_latency_cycles:
            raise ValueError("saturated latency must be >= base latency")
        if not 0 < self.saturation_knee < 2:
            raise ValueError("saturation knee must be in (0, 2)")
        if self.flit_bytes <= 0:
            raise ValueError("flit size must be positive")


@dataclass(frozen=True)
class NodeConfig:
    """Borrower-node compute and memory-hierarchy parameters."""

    #: Logical cores per server (2 sockets x 32 SMT threads on AC922).
    logical_cores: int = 64
    #: Aggregate last-level cache in MB (10 MB per socket x 2).
    llc_mb: float = 20.0
    #: Aggregate private L2 in MB.
    l2_mb: float = 8.0
    #: Local DRAM capacity in GB (1.2 TB on the prototype).
    dram_gb: float = 1200.0
    #: Sustained local DRAM bandwidth in Gbps (§IV-B cites ~120 Gbps
    #: theoretical sustained for DDR4 systems).
    dram_bw_gbps: float = 120.0
    #: Local DRAM load latency in ns (§V-B1: ~80 ns local).
    dram_latency_ns: float = 80.0
    #: Remote (disaggregated) memory latency in ns (§V-B1: ~900 ns).
    remote_latency_ns: float = 900.0
    #: Remote memory capacity lent by the remote node, in GB.
    remote_gb: float = 512.0

    def __post_init__(self) -> None:
        if self.logical_cores <= 0:
            raise ValueError("logical_cores must be positive")
        for name in ("llc_mb", "l2_mb", "dram_gb", "dram_bw_gbps", "remote_gb"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.remote_latency_ns < self.dram_latency_ns:
            raise ValueError("remote latency must be >= local latency")


@dataclass(frozen=True)
class TestbedConfig:
    """Full two-node disaggregated testbed (borrower + lender + link)."""

    node: NodeConfig = field(default_factory=NodeConfig)
    link: LinkConfig = field(default_factory=LinkConfig)
    #: Relative amplitude of multiplicative measurement noise applied to
    #: performance counters (real perf counters are never exact).
    counter_noise: float = 0.02
    #: Random seed for counter noise.
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.counter_noise < 1:
            raise ValueError("counter_noise must be in [0, 1)")
