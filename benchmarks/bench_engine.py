#!/usr/bin/env python
"""Engine benchmark CLI: ticks/sec, decisions/sec, phase breakdown.

Thin wrapper over :mod:`repro.obs.perf.bench` — measures the simulator's
throughput at three scenario scales, the full Adrias decision path at
1–1000 candidate placements per tick, and a per-phase cost breakdown of
a congested policy-driven scenario.  Run::

    PYTHONPATH=src python benchmarks/bench_engine.py                 # full
    PYTHONPATH=src python benchmarks/bench_engine.py --smoke         # CI
    PYTHONPATH=src python benchmarks/bench_engine.py --json BENCH_engine.json

The committed baseline lives at ``benchmarks/baselines/BENCH_engine.json``
and is enforced by ``repro obs perfcheck`` (see the CI ``perf-smoke``
job).  Refresh it by re-running this script with ``--json`` on a quiet
machine and committing the result.
"""

from __future__ import annotations

import argparse
import json

from repro.obs.perf.bench import format_report, run_engine_bench


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: short durations, tiny LSTM, fewer candidate counts",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions, best-of (default 3)",
    )
    parser.add_argument(
        "--hidden", type=int, default=32,
        help="LSTM hidden width (default 32, the paper's size)",
    )
    parser.add_argument(
        "--candidates", type=int, nargs="+", default=None, metavar="N",
        help="candidate counts for the decision sweep "
             "(default 1 8 64 256 1000; smoke: 1 8 64)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="scenario seed (default 0)"
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the report as JSON (e.g. BENCH_engine.json)",
    )
    args = parser.parse_args()

    report = run_engine_bench(
        smoke=args.smoke,
        repeats=args.repeats,
        hidden=args.hidden,
        candidate_counts=tuple(args.candidates) if args.candidates else None,
        seed=args.seed,
    )
    print(format_report(report))
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"json report: {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
