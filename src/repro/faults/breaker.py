"""Circuit breaker for the prediction-driven decision path.

Classic three-state breaker driven by the *simulated* clock: the
AdriasPolicy records a failure for every predictor timeout or corrupt
estimate, and after ``failure_threshold`` consecutive failures the
circuit opens — decisions flow through the fallback chain without
touching the predictor.  After ``cooldown_s`` simulated seconds the
breaker half-opens and lets a single probe inference through; a
successful probe re-closes the circuit, a failed one re-opens it (and
restarts the cooldown).

State is exported as ``policy_circuit_state`` (0 = closed, 1 = open,
2 = half-open), labeled by policy *and* node — fleet runs stamp the
label of the node whose decision drove the transition, so per-node
breaker arcs survive the fleet rollup — and every transition is counted
and pushed onto the live event stream, so an outage's open → half-open
→ closed arc is visible in both the metrics and the ``repro obs watch``
dashboard.
"""

from __future__ import annotations

import enum

from repro import obs

__all__ = ["CircuitState", "CircuitBreaker"]


class CircuitState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


#: Gauge encoding of the states (documented in DESIGN.md §10).
_STATE_GAUGE = {
    CircuitState.CLOSED: 0.0,
    CircuitState.OPEN: 1.0,
    CircuitState.HALF_OPEN: 2.0,
}


class CircuitBreaker:
    """Consecutive-failure breaker on a simulated clock."""

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 120.0,
        name: str = "adrias",
        node: str | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.name = name
        #: Node label stamped on metric exports; callers on fleet paths
        #: (e.g. AdriasPolicy.decide) refresh it per decision so a shared
        #: breaker attributes each transition to the node that drove it.
        self.node = node
        self.state = CircuitState.CLOSED
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        #: (time, old state, new state) transition history.
        self.transitions: list[tuple[float, str, str]] = []

    # -- queries -------------------------------------------------------------
    def allow(self, now: float) -> bool:
        """Whether the predictor may be consulted at time ``now``.

        While open, flips to half-open (allowing one probe) once the
        cooldown has elapsed.
        """
        if self.state is CircuitState.OPEN:
            assert self.opened_at is not None
            if now - self.opened_at >= self.cooldown_s:
                self._transition(CircuitState.HALF_OPEN, now)
        return self.state is not CircuitState.OPEN

    # -- updates -------------------------------------------------------------
    def record_success(self, now: float) -> None:
        self.consecutive_failures = 0
        if self.state is CircuitState.HALF_OPEN:
            self.opened_at = None
            self._transition(CircuitState.CLOSED, now)

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.state is CircuitState.HALF_OPEN:
            # The probe failed: back to open, restart the cooldown.
            self.opened_at = now
            self._transition(CircuitState.OPEN, now)
        elif (
            self.state is CircuitState.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self.opened_at = now
            self._transition(CircuitState.OPEN, now)

    def _transition(self, new: CircuitState, now: float) -> None:
        old, self.state = self.state, new
        self.transitions.append((now, old.value, new.value))
        node = self.node or "n0"
        if obs.enabled():
            metrics = obs.metrics()
            metrics.gauge(
                "policy_circuit_state",
                "Decision-path circuit state (0 closed, 1 open, 2 half-open)",
                labels=("policy", "node"),
            ).labels(policy=self.name, node=node).set(_STATE_GAUGE[new])
            metrics.counter(
                "policy_circuit_transitions_total",
                "Circuit-breaker state transitions",
                labels=("policy", "to"),
            ).labels(policy=self.name, to=new.value).inc()
        live = obs.live_session()
        if live is not None:
            live.note_event(
                "circuit", policy=self.name, node=node, sim=now,
                transition=f"{old.value}->{new.value}",
            )

    # -- checkpointing -------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "state": self.state.value,
            "consecutive_failures": self.consecutive_failures,
            "opened_at": self.opened_at,
            "transitions": [list(t) for t in self.transitions],
        }

    def load_state_dict(self, data: dict) -> None:
        self.state = CircuitState(data["state"])
        self.consecutive_failures = int(data["consecutive_failures"])
        self.opened_at = data["opened_at"]
        self.transitions = [tuple(t) for t in data.get("transitions", [])]
