"""Determinism audit: seeded runs are bit-reproducible, fault arming is inert.

Two invariants the orchestration results rest on:

* the same scenario seed + the same (seeded) policy produce bit-identical
  traces and decision logs across runs;
* arming a fault plan whose windows never open (or an empty plan) leaves
  a run bit-identical to one executed without ``--faults`` at all.
"""

import numpy as np

from repro.cluster.scenario import ScenarioConfig, generate_arrivals, run_scenario
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.runtime import active_plan
from repro.orchestrator.policies import RandomPolicy, RoundRobinPolicy
from tests.helpers import assert_traces_identical

CONFIG = ScenarioConfig(duration_s=300.0, spawn_interval=(10.0, 25.0), seed=4)


class RecordingScheduler:
    """Wraps a policy and logs every (time, app, mode) decision."""

    def __init__(self, inner):
        self.inner = inner
        self.name = getattr(inner, "name", "wrapped")
        self.decisions = []

    def __call__(self, profile, engine):
        mode = self.inner(profile, engine)
        self.decisions.append((engine.now, profile.name, mode.value))
        return mode


class TestSeededReproducibility:
    def test_arrivals_regenerate_identically(self):
        a = generate_arrivals(CONFIG)
        b = generate_arrivals(CONFIG)
        assert [(x.time, x.profile.name, x.mode, x.duration_s) for x in a] == [
            (x.time, x.profile.name, x.mode, x.duration_s) for x in b
        ]

    def test_two_seeded_runs_bit_identical(self):
        first = RecordingScheduler(RandomPolicy(seed=9))
        second = RecordingScheduler(RandomPolicy(seed=9))
        trace_a = run_scenario(CONFIG, scheduler=first)
        trace_b = run_scenario(CONFIG, scheduler=second)
        assert_traces_identical(trace_a, trace_b)
        assert first.decisions == second.decisions
        assert first.decisions, "scenario must actually place workloads"

    def test_different_scenario_seeds_differ(self):
        other = ScenarioConfig(
            duration_s=300.0, spawn_interval=(10.0, 25.0), seed=5
        )
        trace_a = run_scenario(CONFIG, scheduler=RoundRobinPolicy())
        trace_b = run_scenario(other, scheduler=RoundRobinPolicy())
        assert trace_a.times != trace_b.times or any(
            not np.array_equal(x, y)
            for x, y in zip(trace_a._counter_rows, trace_b._counter_rows)
        )

    def test_counter_noise_reproducible_without_scheduler(self):
        trace_a = run_scenario(CONFIG)
        trace_b = run_scenario(CONFIG)
        assert_traces_identical(trace_a, trace_b)


class TestFaultArmingInertness:
    def test_empty_plan_is_inert(self):
        baseline_sched = RecordingScheduler(RandomPolicy(seed=9))
        baseline = run_scenario(CONFIG, scheduler=baseline_sched)
        armed_sched = RecordingScheduler(RandomPolicy(seed=9))
        with active_plan(FaultPlan(faults=(), seed=99)):
            armed = run_scenario(CONFIG, scheduler=armed_sched)
        assert_traces_identical(baseline, armed)
        assert baseline_sched.decisions == armed_sched.decisions

    def test_windows_past_horizon_are_inert(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    kind="telemetry_dropout",
                    start_s=10_000.0,
                    duration_s=60.0,
                    params={"probability": 1.0},
                ),
                FaultSpec(kind="link_outage", start_s=20_000.0, duration_s=60.0),
            ),
            seed=1,
        )
        baseline = run_scenario(CONFIG, scheduler=RandomPolicy(seed=9))
        with active_plan(plan):
            armed = run_scenario(CONFIG, scheduler=RandomPolicy(seed=9))
        assert_traces_identical(baseline, armed)

    def test_armed_plan_does_not_leak_across_runs(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    kind="telemetry_dropout", start_s=0.0, duration_s=300.0,
                    params={"probability": 1.0},
                ),
            ),
            seed=1,
        )
        with active_plan(plan):
            faulted = run_scenario(CONFIG, scheduler=RandomPolicy(seed=9))
        assert any(np.isnan(r).any() for r in faulted._counter_rows)
        # The context manager restored the no-plan state: this run is clean.
        clean = run_scenario(CONFIG, scheduler=RandomPolicy(seed=9))
        assert all(np.isfinite(r).all() for r in clean._counter_rows)

    def test_offline_collection_never_injected(self):
        # scheduler=None is the offline trace-collection path; fault
        # plans must not touch it even while armed.
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    kind="telemetry_dropout", start_s=0.0, duration_s=300.0,
                    params={"probability": 1.0},
                ),
            ),
            seed=1,
        )
        baseline = run_scenario(CONFIG)
        with active_plan(plan):
            armed = run_scenario(CONFIG)
        assert_traces_identical(baseline, armed)
