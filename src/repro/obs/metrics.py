"""Process-wide metrics: labeled counters, gauges and histograms.

The reproduction instruments its own hot paths the same way the paper's
Watcher instruments the testbed: cheap always-on counters aggregated in
memory, exported on demand.  A :class:`MetricsRegistry` owns metric
*families* (name + kind + label names); each distinct label-value
combination materializes a child instrument on first use.

Two export formats are supported:

* :meth:`MetricsRegistry.to_json` — a structured snapshot for
  programmatic consumption (``metrics.json``);
* :meth:`MetricsRegistry.to_prometheus` — Prometheus text exposition
  format 0.0.4 (``metrics.prom``), scrape-able or diff-able.

When observability is disabled the process uses :class:`NullRegistry`,
whose instruments are shared no-op singletons — instrumented code pays
one attribute lookup and an empty call, nothing else.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets: latency-flavoured, in seconds.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0,
)


def _validate_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(f"invalid metric name {name!r}")


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """Instantaneous value; can move in either direction."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics: value <= le)."""

    __slots__ = ("buckets", "counts", "sum", "count", "min", "max")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        edges = tuple(float(b) for b in buckets)
        if not edges or list(edges) != sorted(set(edges)):
            raise ValueError("buckets must be non-empty, sorted and unique")
        self.buckets = edges
        self.counts = [0] * (len(edges) + 1)  # final slot is +Inf
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def cumulative_counts(self) -> list[int]:
        """Counts as Prometheus cumulative ``le`` buckets (incl. +Inf)."""
        out, running = [], 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean if self.count else None,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {
                ("+Inf" if i == len(self.buckets) else repr(self.buckets[i])): c
                for i, c in enumerate(self.cumulative_counts())
            },
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric plus its per-label-set children.

    A family declared with no labels acts as its own single child, so
    ``registry.counter("ticks_total", "...").inc()`` works directly.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> None:
        _validate_name(name)
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self._buckets = tuple(buckets) if buckets is not None else None
        self._children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}
        if not self.label_names:
            self._children[()] = self._make_child()

    def _make_child(self):
        if self.kind == "histogram":
            if self._buckets is not None:
                return Histogram(self._buckets)
            return Histogram()
        return _KINDS[self.kind]()

    def labels(self, **labels: object):
        """The child instrument for one label-value combination."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, got "
                f"{tuple(sorted(labels))}"
            )
        key = tuple(str(labels[n]) for n in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make_child()
        return child

    # -- unlabeled convenience passthroughs --------------------------------
    def _solo(self):
        if self.label_names:
            raise ValueError(
                f"{self.name} is labeled {self.label_names}; use .labels()"
            )
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def children(self) -> Iterable[tuple[tuple[str, ...], object]]:
        return self._children.items()

    def snapshot(self) -> dict:
        series = []
        for key, child in sorted(self._children.items()):
            series.append(
                {
                    "labels": dict(zip(self.label_names, key)),
                    "value": child.snapshot(),
                }
            )
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "series": series,
        }


class MetricsRegistry:
    """Process-wide registry of metric families.

    Get-or-create semantics: calling :meth:`counter` twice with the same
    name returns the same family, so instrumented call sites need no
    setup phase.  Redeclaring a name with a different kind or label set
    is a programming error and raises.
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    # -- declaration ---------------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Sequence[str],
        buckets: Sequence[float] | None = None,
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, kind, help, labels, buckets)
                self._families[name] = family
                return family
        if family.kind != kind or family.label_names != tuple(labels):
            raise ValueError(
                f"metric {name!r} already declared as {family.kind} with "
                f"labels {family.label_names}"
            )
        if buckets is not None and kind == "histogram":
            effective = (
                family._buckets if family._buckets is not None
                else DEFAULT_BUCKETS
            )
            if tuple(float(b) for b in buckets) != effective:
                raise ValueError(
                    f"histogram {name!r} already declared with buckets "
                    f"{effective}; redeclaring with {tuple(buckets)} would "
                    f"be silently ignored"
                )
        return family

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, "counter", help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> MetricFamily:
        return self._family(name, "histogram", help, labels, buckets)

    # -- lifecycle -----------------------------------------------------------
    def get(self, name: str) -> MetricFamily | None:
        """The declared family for ``name``, or ``None`` (read-only peek)."""
        return self._families.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __len__(self) -> int:
        return len(self._families)

    def reset(self) -> None:
        """Drop every family (fresh registry state)."""
        with self._lock:
            self._families.clear()

    # -- export --------------------------------------------------------------
    def snapshot(self) -> list[dict]:
        return [f.snapshot() for _, f in sorted(self._families.items())]

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps({"metrics": self.snapshot()}, indent=indent)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        lines: list[str] = []
        for name, family in sorted(self._families.items()):
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key, child in sorted(family.children()):
                labels = dict(zip(family.label_names, key))
                if family.kind == "histogram":
                    assert isinstance(child, Histogram)
                    cumulative = child.cumulative_counts()
                    for i, edge in enumerate(child.buckets):
                        bucket_labels = {**labels, "le": _fmt_float(edge)}
                        lines.append(
                            f"{name}_bucket{_label_str(bucket_labels)} "
                            f"{cumulative[i]}"
                        )
                    lines.append(
                        f"{name}_bucket{_label_str({**labels, 'le': '+Inf'})} "
                        f"{cumulative[-1]}"
                    )
                    lines.append(
                        f"{name}_sum{_label_str(labels)} {_fmt_float(child.sum)}"
                    )
                    lines.append(f"{name}_count{_label_str(labels)} {child.count}")
                else:
                    lines.append(
                        f"{name}{_label_str(labels)} "
                        f"{_fmt_float(child.snapshot())}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt_float(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    formatted = repr(float(value))
    return formatted[:-2] if formatted.endswith(".0") else formatted


def _label_str(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


# -- disabled path -------------------------------------------------------------


class _NullInstrument:
    """Shared no-op child: absorbs every instrument method."""

    __slots__ = ()

    def labels(self, **labels: object) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Zero-cost registry used while observability is disabled."""

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()):
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()):
        return _NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ):
        return _NULL_INSTRUMENT

    def get(self, name: str) -> None:
        return None

    def __contains__(self, name: str) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def reset(self) -> None:
        pass

    def snapshot(self) -> list[dict]:
        return []

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps({"metrics": []}, indent=indent)

    def to_prometheus(self) -> str:
        return ""


NULL_REGISTRY = NullRegistry()
