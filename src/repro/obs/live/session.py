"""Live observability session: ties stream, drift, SLO and profiler
to the running simulation.

A :class:`LiveSession` is created by :func:`repro.obs.enable_live` (CLI:
``--obs-stream``) and attaches itself to every :class:`ClusterEngine`
constructed while it is active (the engine checks ``obs.live_session()`` in its
constructor).  Per engine it installs

* a tick hook that drives the whole pipeline once per simulated second,
* a :class:`~repro.telemetry.watcher.Watcher` mirroring the engine's
  counter samples — the "realized measurements" that Ŝ forecasts are
  joined against.

Per tick the session

1. joins matured Ŝ forecasts (noted by the Predictor) against the
   Watcher's realized horizon mean and feeds the ``system_state`` drift
   stream;
2. drains newly joined decision-audit rows and feeds their relative
   prediction errors to the ``be`` / ``lc`` drift streams;
3. classifies newly finished LC deployments against the SLO targets and
   refreshes multi-window burn rates;
4. emits one ``tick`` record (clocks, load, link regime, decision mix,
   drift scores, SLO burn) to the JSONL stream.

Everything runs on the session clock — cumulative simulated seconds
across *all* engines — so back-to-back scenario replays (each restarting
its own clock at zero) keep windows and rates well-defined.

When no live session exists, ``obs.live_session()`` returns ``None`` and every
integration point is a single predicate — simulations are bit-identical
to a build without this module.
"""

from __future__ import annotations

import time
import weakref
from pathlib import Path
from typing import Callable

import numpy as np

from repro.obs import runtime
from repro.obs.live.drift import DriftAlarm, DriftDetector
from repro.obs.live.slo import SloEngine
from repro.obs.live.stream import StreamExporter
from repro.obs.perf.profiler import IntervalProfiler

__all__ = ["LiveSession", "STREAM_VERSION"]

STREAM_VERSION = 1

_REL_EPS = 1e-9


class _EngineState:
    """Per-engine bookkeeping held weakly by the session."""

    __slots__ = ("index", "watcher", "records_seen", "forecasts")

    def __init__(self, index: int, watcher) -> None:
        self.index = index
        self.watcher = watcher
        #: engine.trace.records already classified against the SLO.
        self.records_seen = 0
        #: pending Ŝ forecasts: (emit_time, due_time, s_hat).
        self.forecasts: list[tuple[float, float, np.ndarray]] = []


class LiveSession:
    """Streaming telemetry pipeline over one or more engines."""

    def __init__(
        self,
        out_dir: str | Path,
        *,
        stream_name: str = "stream.jsonl",
        flush_every: int = 64,
        qos_p99_ms: dict[str, float] | None = None,
        objective: float = 0.99,
        slo_windows: tuple[float, ...] = (60.0, 600.0),
        alert_burn: float = 2.0,
        drift_alpha: float = 0.2,
        drift_delta: float = 0.1,
        drift_threshold: float = 8.0,
        drift_min_samples: int = 8,
        on_drift: Callable[[DriftAlarm], None] | None = None,
        profile: bool = True,
        profile_interval_s: float = 0.02,
        profile_every_ticks: int = 200,
        max_pending_decisions: int = 4096,
    ) -> None:
        self.out_dir = Path(out_dir)
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self.exporter = StreamExporter(
            self.out_dir / stream_name,
            flush_every=flush_every,
            openmetrics_path=self.out_dir / "stream.prom",
            openmetrics_source=lambda: runtime.metrics().to_prometheus(),
        )
        self.on_drift = on_drift
        self.drift = DriftDetector(
            alpha=drift_alpha,
            delta=drift_delta,
            threshold=drift_threshold,
            min_samples=drift_min_samples,
            on_alarm=self._handle_drift_alarm,
        )
        self.slo = SloEngine(
            targets=qos_p99_ms,
            objective=objective,
            windows=slo_windows,
            alert_burn=alert_burn,
        )
        #: Per-node SLO scorers (fleet runs only), created lazily the
        #: first time a node-labeled engine finishes an LC deployment.
        self._node_slo: dict[str, SloEngine] = {}
        self._slo_kwargs = {
            "targets": qos_p99_ms,
            "objective": objective,
            "windows": slo_windows,
            "alert_burn": alert_burn,
        }
        #: Set on the first tick from a node-labeled engine; gates the
        #: per-node drift streams and the fleet burn rollup.
        self._fleet_seen = False
        self.profiler = (
            IntervalProfiler(interval_s=profile_interval_s) if profile else None
        )
        self.profile_every_ticks = profile_every_ticks
        #: Cumulative simulated seconds across every attached engine.
        self.clock = 0.0
        self.ticks = 0
        self._engines: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self._n_attached = 0
        self._current: Callable[[], object | None] = lambda: None
        self._audit_seen = 0
        self._audit_pending: list = []
        self._max_pending = max_pending_decisions
        self._tick_decisions: dict[str, dict[str, int]] = {}
        self._last_regimes: dict[tuple[str, ...], float] = {}
        self._wall_epoch = time.perf_counter()
        self._closed = False
        self.exporter.emit(
            {
                "t": "meta",
                "version": STREAM_VERSION,
                "created_unix": time.time(),
                "objective": objective,
                "slo_windows": list(slo_windows),
                "qos_apps": sorted(qos_p99_ms) if qos_p99_ms else [],
                "drift": {
                    "delta": drift_delta,
                    "threshold": drift_threshold,
                    "min_samples": drift_min_samples,
                },
            }
        )
        self.exporter.flush()

    # -- engine wiring -------------------------------------------------------
    def attach(self, engine) -> None:
        """Start streaming ``engine`` (idempotent; called by its ctor)."""
        if self._closed or engine in self._engines:
            return
        from repro.telemetry.watcher import Watcher  # late: layering

        capacity_s = max(1024.0 * engine.dt, 4.0 * 120.0)
        watcher = Watcher(history_capacity_s=capacity_s, dt=engine.dt)
        watcher.attach(engine)
        state = _EngineState(index=self._n_attached, watcher=watcher)
        self._n_attached += 1
        self._engines[engine] = state
        engine.add_tick_hook(self._on_tick)
        self._current = weakref.ref(engine)
        if self.profiler is not None and not self.profiler.running:
            self.profiler.start()

    def _state(self, engine) -> "_EngineState | None":
        return self._engines.get(engine)

    # -- notes from instrumented call sites ----------------------------------
    def note_event(self, kind: str, **fields) -> None:
        """Emit an ad-hoc event record onto the stream.

        Used by the fault injector (window begin/end) and the policy
        circuit breaker (state transitions) so degradation episodes are
        visible in ``repro obs watch`` next to drift and SLO alerts.
        """
        if self._closed:
            return
        self.exporter.emit({"t": "event", "kind": kind, **fields})

    def note_decision(
        self, policy: str, mode: str, kind: str, node: str | None = None
    ) -> None:
        """Count one placement decision into the current tick record.

        ``node`` is accepted for fleet call sites; the per-tick decision
        mix stays keyed by policy/mode (per-node decision counts live in
        the node-labeled ``orchestrator_decisions_total`` counter).
        """
        per_policy = self._tick_decisions.setdefault(policy, {})
        per_policy[mode] = per_policy.get(mode, 0) + 1

    def note_pool(self, **fields) -> None:
        """Emit one rack-pool arbitration record onto the stream.

        Called by :class:`repro.cluster.fleet.ClusterFleet` on fleet
        ticks where the arbiter throttled at least one lane; carries the
        regime, the throttled node set, per-node capacity factors and
        the aggregate bandwidth utilization.
        """
        if self._closed:
            return
        self.exporter.emit({"t": "pool", **fields})

    def note_state_forecast(
        self, s_hat: np.ndarray, horizon_s: float
    ) -> None:
        """Register one Ŝ forecast for joining once its horizon elapses.

        The forecast is attributed to the engine that most recently
        ticked (or attached) — the one whose Watcher window produced it.
        """
        engine = self._current()
        if engine is None:
            return
        state = self._state(engine)
        if state is None:
            return
        emit_time = engine.now
        state.forecasts.append(
            (emit_time, emit_time + horizon_s, np.asarray(s_hat, float).copy())
        )

    # -- per-tick pipeline ---------------------------------------------------
    def _on_tick(self, engine) -> None:
        state = self._state(engine)
        if state is None or self._closed:
            return
        self._current = weakref.ref(engine)
        self.clock += engine.dt
        self.ticks += 1
        if not self._fleet_seen and getattr(engine, "node_label", None):
            self._fleet_seen = True
        self._join_forecasts(engine, state)
        self._drain_audit(engine)
        self._score_slo(engine, state)
        alerts = self.slo.advance(self.clock)
        for node_slo in self._node_slo.values():
            alerts.extend(node_slo.advance(self.clock))
        for alert in alerts:
            self.exporter.emit(
                {"t": "event", "kind": "slo_alert", "sim": engine.now, **alert}
            )
        self._emit_tick(engine, state)
        if (
            self.profiler is not None
            and self.profile_every_ticks > 0
            and self.ticks % self.profile_every_ticks == 0
        ):
            self.exporter.emit(
                {
                    "t": "profile",
                    "clock": self.clock,
                    **self.profiler.snapshot(),
                }
            )

    def _join_forecasts(self, engine, state: _EngineState) -> None:
        """Feed matured Ŝ forecasts to the ``system_state`` drift stream.

        The Watcher mirrors each tick's sample *after* tick hooks run,
        so a forecast due at ``due`` is joined on the first tick where
        the Watcher's coverage (``now - dt``) reaches ``due`` — the
        trailing horizon window then spans exactly
        ``(emit, emit + horizon]``, the system-state model's target
        definition.
        """
        if not state.forecasts:
            return
        covered = engine.now - engine.dt
        remaining = []
        for emit_time, due, s_hat in state.forecasts:
            if covered < due - 1e-9:
                remaining.append((emit_time, due, s_hat))
                continue
            horizon = due - emit_time
            realized = state.watcher.horizon_mean(horizon)
            error = float(
                np.mean(np.abs(s_hat - realized))
                / (np.mean(np.abs(realized)) + _REL_EPS)
            )
            self.drift.observe(
                "system_state", error, sim_time=engine.now, clock=self.clock
            )
            node = getattr(engine, "node_label", None)
            if node is not None:
                # Fleet runs additionally track drift per node, so one
                # node's degrading forecasts stand out from the rack.
                self.drift.observe(
                    f"system_state@{node}", error,
                    sim_time=engine.now, clock=self.clock,
                )
        state.forecasts = remaining

    def _drain_audit(self, engine) -> None:
        """Feed newly joined decision outcomes to the drift streams."""
        records = runtime.audit().records
        if self._audit_seen < len(records):
            self._audit_pending.extend(records[self._audit_seen :])
            self._audit_seen = len(records)
            if len(self._audit_pending) > self._max_pending:
                del self._audit_pending[: -self._max_pending]
        if not self._audit_pending:
            return
        still_pending = []
        for record in self._audit_pending:
            if not record.joined:
                still_pending.append(record)
                continue
            error = record.prediction_error
            if error is None:
                continue
            actual = record.outcome["performance"]
            relative = abs(error) / (abs(actual) + _REL_EPS)
            self.drift.observe(
                record.kind, relative, sim_time=engine.now, clock=self.clock
            )
            if self._fleet_seen:
                self.drift.observe(
                    f"{record.kind}@{record.node}", relative,
                    sim_time=engine.now, clock=self.clock,
                )
        self._audit_pending = still_pending

    def _score_slo(self, engine, state: _EngineState) -> None:
        """Classify newly finished LC deployments against their QoS.

        Fleet engines (``node_label`` set) additionally score against a
        per-node :class:`SloEngine` (the ``slo_node_*`` families) and
        emit one ``finish`` stream record per completion — the raw
        material for ``repro obs report --fleet``'s per-node burn table.
        """
        records = engine.trace.records
        node = getattr(engine, "node_label", None)
        node_slo = None
        if node is not None:
            node_slo = self._node_slo.get(node)
            if node_slo is None:
                node_slo = self._node_slo[node] = SloEngine(
                    node=node, **self._slo_kwargs
                )
        for record in records[state.records_seen :]:
            violated = None
            if record.kind.value == "lc":
                violated = self.slo.record(
                    record.name, record.p99_ms, self.clock
                )
                if node_slo is not None:
                    node_violated = node_slo.record(
                        record.name, record.p99_ms, self.clock
                    )
                    if violated is None:
                        violated = node_violated
            if node is not None:
                p99 = record.p99_ms
                self.exporter.emit(
                    {
                        "t": "finish",
                        "node": node,
                        "clock": round(self.clock, 6),
                        "app": record.name,
                        "kind": record.kind.value,
                        "mode": record.mode.value,
                        "p99_ms": (
                            round(p99, 6) if np.isfinite(p99) else None
                        ),
                        "violated": violated,
                    }
                )
        state.records_seen = len(records)

    def _emit_tick(self, engine, state: _EngineState) -> None:
        node = getattr(engine, "node_label", None)
        record = {
            "t": "tick",
            "n": self.ticks,
            "clock": round(self.clock, 6),
            "engine": state.index,
            "sim": round(engine.now, 6),
            "wall": round(time.perf_counter() - self._wall_epoch, 6),
            "running": len(engine.running),
        }
        if node is not None:
            record["node"] = node
        metrics = runtime.metrics()
        family = metrics.get("engine_link_utilization")
        if family is not None:
            # The family is node-labeled; standalone engines write n0.
            record["link_util"] = round(
                family.labels(node=node or "n0").snapshot(), 6
            )
        regimes = self._regime_deltas(metrics)
        if regimes:
            record["regimes"] = regimes
        if self._tick_decisions:
            record["decisions"] = self._tick_decisions
            self._tick_decisions = {}
        drift = self.drift.snapshot()
        if drift:
            record["drift"] = drift
        slo = self.slo.snapshot(self.clock)
        if slo:
            record["slo"] = slo
        if self._node_slo:
            record["fleet_slo"] = self._fleet_burn_rollup()
        self.exporter.emit(record)

    def _fleet_burn_rollup(self) -> dict:
        """Worst-node / weighted fleet burn; refreshes the fleet gauges."""
        from repro.obs.fleet.rollup import fleet_burn_rollup

        rollup = fleet_burn_rollup(
            {
                node: slo.snapshot(self.clock)
                for node, slo in self._node_slo.items()
            }
        )
        gauge = runtime.metrics().gauge(
            "slo_fleet_burn_rate",
            "Fleet burn-rate rollup (worst node / population-weighted)",
            labels=("agg", "window"),
        )
        for window, entry in rollup["worst"].items():
            gauge.labels(agg="worst", window=f"{window}s").set(entry["burn"])
        for window, rate in rollup["weighted"].items():
            gauge.labels(agg="weighted", window=f"{window}s").set(rate)
        return rollup

    def _regime_deltas(self, metrics) -> dict[str, int]:
        """Per-tick link-resolve counts by saturation regime."""
        family = metrics.get("link_resolves_total")
        if family is None:
            return {}
        deltas = {}
        for key, child in family.children():
            value = child.snapshot()
            delta = value - self._last_regimes.get(key, 0.0)
            self._last_regimes[key] = value
            if delta > 0:
                deltas[key[0] if key else "all"] = int(delta)
        return deltas

    # -- alarms --------------------------------------------------------------
    def _handle_drift_alarm(self, alarm: DriftAlarm) -> None:
        self.exporter.emit({"t": "event", "kind": "drift", **alarm.to_dict()})
        self.exporter.flush()
        if self.on_drift is not None:
            self.on_drift(alarm)

    # -- lifecycle -----------------------------------------------------------
    def flush(self) -> None:
        self.exporter.flush()

    def artifact_paths(self) -> dict[str, Path]:
        paths = {self.exporter.path.name: self.exporter.path}
        if self.exporter.openmetrics_path is not None:
            paths[self.exporter.openmetrics_path.name] = (
                self.exporter.openmetrics_path
            )
        return paths

    def close(self, reason: str | None = None) -> None:
        """Emit the end marker and release resources (idempotent).

        ``reason`` annotates the end record (e.g. ``"daemon draining"``)
        so stream consumers such as ``repro obs watch`` can tell a
        graceful drain apart from an ordinary run completion.
        """
        if self._closed:
            return
        self._closed = True
        if self.profiler is not None:
            self.profiler.stop()
            if self.profiler.total_samples:
                self.exporter.emit(
                    {
                        "t": "profile",
                        "clock": self.clock,
                        **self.profiler.snapshot(),
                    }
                )
        end = {
            "t": "end",
            "ticks": self.ticks,
            "clock": round(self.clock, 6),
            "drift": self.drift.snapshot(),
            "slo": self.slo.snapshot(self.clock),
            "alarms": len(self.drift.alarms),
            "slo_alerts": len(self.slo.alerts),
        }
        if self._node_slo:
            end["fleet_slo"] = self._fleet_burn_rollup()
        if reason is not None:
            end["reason"] = reason
        self.exporter.emit(end)
        self.exporter.close()
