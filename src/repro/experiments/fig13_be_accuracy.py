"""Experiment Fig. 13 — BE performance-model accuracy.

Part (a): train/test with the oracle future state (actual metrics over
the 120 s horizon) and report overall/per-mode R² — paper: 0.942
average, 0.945 local / 0.939 remote.

Part (b): the stacked-model ablation.  Each {train, test} pair names the
Ŝ source used in the respective phase: ``none`` (no future input),
``120`` (actual metrics over the 120 s horizon), ``exec`` (actual
metrics over the full execution) or ``pred`` (propagated from the
trained system-state model).  Expected ordering: {exec,exec} best,
{120,120} close, the practical {120,pred}/{pred,pred} a few percent
below, {none,none} worst — demonstrating the value of predictive
monitoring.

Parts (c)/(d): per-benchmark MAE and residuals with the practical
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import format_table
from repro.experiments.common import (
    ExperimentScale,
    get_be_dataset,
    get_predictor,
    scale_from_env,
)
from repro.models.dataset import PerformanceDataset
from repro.models.performance import PerformancePredictor
from repro.nn.metrics import mae

__all__ = ["Fig13Result", "AblationEntry", "run", "run_ablation", "FUTURE_VARIANTS"]

FUTURE_VARIANTS: tuple[str, ...] = ("none", "120", "exec", "pred")


def _future_of(
    variant: str,
    dataset: PerformanceDataset,
    predicted: np.ndarray | None,
) -> np.ndarray | None:
    if variant == "none":
        return None
    if variant == "120":
        return dataset.future_120
    if variant == "exec":
        return dataset.future_exec
    if variant == "pred":
        if predicted is None:
            raise ValueError("predicted futures required for the 'pred' variant")
        return predicted
    raise ValueError(f"unknown future variant {variant!r}")


@dataclass(frozen=True)
class AblationEntry:
    train_variant: str
    test_variant: str
    r2: float


@dataclass(frozen=True)
class Fig13Result:
    oracle_metrics: dict[str, float]             # part (a)
    ablation: list[AblationEntry]                # part (b)
    mae_per_benchmark: dict[str, float]          # part (c)
    median_per_benchmark: dict[str, float]
    actual: np.ndarray                           # part (d) residuals
    predicted: np.ndarray

    def ablation_r2(self, train: str, test: str) -> float:
        for entry in self.ablation:
            if entry.train_variant == train and entry.test_variant == test:
                return entry.r2
        raise KeyError(f"no ablation entry {{{train},{test}}}")

    def relative_mae(self, name: str) -> float:
        """MAE as a fraction of the benchmark's median performance."""
        return self.mae_per_benchmark[name] / self.median_per_benchmark[name]

    def format(self) -> str:
        parts = [
            format_table(
                ["metric", "value"],
                [(k, f"{v:.3f}") for k, v in self.oracle_metrics.items()],
                title="Fig. 13a — BE model accuracy with oracle future state",
            ),
            format_table(
                ["{train,test}", "R2"],
                [
                    (f"{{{e.train_variant},{e.test_variant}}}", f"{e.r2:.3f}")
                    for e in self.ablation
                ],
                title="Fig. 13b — stacked-model ablation",
            ),
            format_table(
                ["benchmark", "MAE s", "median s", "MAE/median"],
                [
                    (
                        name,
                        f"{self.mae_per_benchmark[name]:.1f}",
                        f"{self.median_per_benchmark[name]:.1f}",
                        f"{self.relative_mae(name) * 100:.1f}%",
                    )
                    for name in sorted(self.mae_per_benchmark)
                ],
                title="Fig. 13c — per-benchmark MAE ({120,pred} configuration)",
            ),
        ]
        return "\n\n".join(parts)


def _train_eval(
    train: PerformanceDataset,
    test: PerformanceDataset,
    train_future: np.ndarray | None,
    test_future: np.ndarray | None,
    epochs: int,
    seed: int,
) -> tuple[PerformancePredictor, dict[str, float], np.ndarray]:
    predictor = PerformancePredictor(use_future=train_future is not None, seed=seed)
    predictor.fit(
        train.state, train.signature, train.mode, train_future, train.targets,
        epochs=epochs,
    )
    metrics = predictor.evaluate(
        test.state, test.signature, test.mode, test_future, test.targets
    )
    predictions = predictor.predict(
        test.state, test.signature, test.mode, test_future
    )
    return predictor, metrics, predictions


def run(scale: ExperimentScale | None = None, seed: int = 11) -> Fig13Result:
    scale = scale if scale is not None else scale_from_env()
    dataset = get_be_dataset(scale)
    train, test = dataset.split(test_fraction=0.4, seed=seed)

    # Part (a): oracle future ({120,120}).
    _, oracle_metrics, _ = _train_eval(
        train, test, train.future_120, test.future_120,
        scale.epochs_performance, seed,
    )

    # Propagated system-state predictions for the 'pred' variants.
    system_state = get_predictor(scale).system_state
    train_pred = system_state.predict(train.state)
    test_pred = system_state.predict(test.state)

    ablation_pairs = [
        ("none", "none"),
        ("120", "120"),
        ("exec", "exec"),
        ("120", "pred"),
        ("pred", "pred"),
    ]
    ablation: list[AblationEntry] = []
    practical: tuple[np.ndarray, np.ndarray] | None = None
    for train_variant, test_variant in ablation_pairs:
        if (train_variant, test_variant) == ("120", "120"):
            r2 = oracle_metrics["r2"]  # already computed
            ablation.append(AblationEntry(train_variant, test_variant, r2))
            continue
        train_future = _future_of(train_variant, train, train_pred)
        test_future = _future_of(test_variant, test, test_pred)
        _, metrics, predictions = _train_eval(
            train, test, train_future, test_future,
            scale.epochs_performance, seed,
        )
        ablation.append(
            AblationEntry(train_variant, test_variant, metrics["r2"])
        )
        if (train_variant, test_variant) == ("120", "pred"):
            practical = (test.targets, predictions)

    assert practical is not None
    actual, predicted = practical
    mae_per, median_per = {}, {}
    names = np.asarray(test.names)
    for name in sorted(set(test.names)):
        mask = names == name
        if mask.sum() < 2:
            continue
        mae_per[name] = mae(actual[mask], predicted[mask])
        median_per[name] = float(np.median(actual[mask]))

    return Fig13Result(
        oracle_metrics=oracle_metrics,
        ablation=ablation,
        mae_per_benchmark=mae_per,
        median_per_benchmark=median_per,
        actual=actual,
        predicted=predicted,
    )


def run_ablation(scale: ExperimentScale | None = None) -> list[AblationEntry]:
    """Convenience wrapper returning only the Fig. 13b entries."""
    return run(scale).ablation
