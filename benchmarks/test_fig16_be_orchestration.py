"""Bench Fig. 16 — BE orchestration vs baselines.

Paper shape: Random/Round-Robin give the worst distributions (>2x worse
than Adrias in places); β = 1 behaves like All-Local; lowering β
monotonically offloads more at increasing performance cost, with an
intermediate β offloading ~1/3 of applications at <15% median cost; a
low β over-offloads and collapses.  The exact β at each offload level
shifts slightly with the simulated slowdown distribution (see
EXPERIMENTS.md).
"""

from benchmarks.conftest import run_once
from repro.experiments import fig16_be_orchestration


def test_fig16_be_orchestration(benchmark, report, scale, strict):
    result = run_once(benchmark, fig16_be_orchestration.run, scale=scale)
    report(result.format())

    # Naive baselines offload ~half of everything.
    assert 0.3 <= result.offload("random") <= 0.7
    assert 0.3 <= result.offload("round-robin") <= 0.7

    # beta = 1 is (near) All-Local — prediction noise at the decision
    # boundary leaks a few marginal apps to remote, more so for the
    # deliberately under-trained quick-scale model.
    assert result.offload("adrias-1") <= (0.10 if strict else 0.25)
    assert abs(result.median_drop("adrias-1")) <= (0.08 if strict else 0.12)

    # Offload grows monotonically as beta falls.
    offloads = [result.offload(f"adrias-{b:g}") for b in (1.0, 0.9, 0.8, 0.7, 0.6)]
    assert all(b >= a - 0.03 for a, b in zip(offloads, offloads[1:]))
    assert offloads[-1] > 0.5  # beta=0.6 offloads the majority

    if strict:
        # Naive schedulers cost more than a moderate Adrias at similar
        # or larger offload fractions.
        assert result.median_drop("random") > result.median_drop("adrias-0.9")
        assert result.median_drop("round-robin") > result.median_drop("adrias-0.9")
        # An intermediate beta offloads a meaningful fraction cheaply.
        sweet = [
            b for b in (0.9, 0.8, 0.75, 0.7)
            if f"adrias-{b:g}" in result.results
            and result.offload(f"adrias-{b:g}") >= 0.15
            and result.median_drop(f"adrias-{b:g}") <= 0.20
        ]
        assert sweet, "no beta offloads >=15% of BE apps at <=20% median cost"
