import pytest

from repro.hardware import METRIC_NAMES
from repro.telemetry import EVENTS, event_index, event_spec


class TestCatalog:
    def test_catalog_matches_metric_names(self):
        assert tuple(EVENTS) == METRIC_NAMES

    def test_seven_events_of_section_va(self):
        """The Watcher monitors exactly the seven events of §V-A."""
        assert len(EVENTS) == 7

    def test_sources_split_cpu_vs_fpga(self):
        cpu = [e for e in EVENTS.values() if e.source == "cpu"]
        fpga = [e for e in EVENTS.values() if e.source == "fpga"]
        assert len(cpu) == 4  # LLC ld/mis + MEM ld/st
        assert len(fpga) == 3  # tx/rx flits + latency

    def test_event_spec_lookup(self):
        spec = event_spec("link_latency")
        assert spec.unit == "cycles"
        assert spec.source == "fpga"

    def test_event_index(self):
        assert event_index("llc_loads") == 0
        assert event_index("link_latency") == len(METRIC_NAMES) - 1

    def test_unknown_event_raises(self):
        with pytest.raises(KeyError):
            event_spec("ipc")
        with pytest.raises(KeyError):
            event_index("ipc")
