"""repro.serve — the long-running orchestrator daemon (DESIGN.md §15).

A :class:`~repro.serve.daemon.OrchestratorDaemon` owns a live cluster
fleet and admits deployments through a declarative
:class:`~repro.serve.safety.SafetyEnvelope`;
:class:`~repro.serve.server.DaemonServer` exposes it over a
newline-delimited-JSON socket with graceful SIGTERM drain, a wedged-tick
watchdog and crash-safe warm-restart checkpoints.
"""

from repro.serve.client import DaemonClient, DaemonClientError
from repro.serve.daemon import (
    DAEMON_CHECKPOINT_VERSION,
    DaemonConfig,
    OrchestratorDaemon,
    load_daemon_checkpoint,
)
from repro.serve.safety import (
    ENVELOPE_VERSION,
    SafetyConfigError,
    SafetyConstraint,
    SafetyEnvelope,
    SafetyMonitor,
    SafetyVerdict,
)
from repro.serve.server import DaemonServer

__all__ = [
    "DAEMON_CHECKPOINT_VERSION",
    "ENVELOPE_VERSION",
    "DaemonClient",
    "DaemonClientError",
    "DaemonConfig",
    "DaemonServer",
    "OrchestratorDaemon",
    "SafetyConfigError",
    "SafetyConstraint",
    "SafetyEnvelope",
    "SafetyMonitor",
    "SafetyVerdict",
    "load_daemon_checkpoint",
]
