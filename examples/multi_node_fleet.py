"""Scale-out sketch: Adrias across a rack-scale fleet (§VII).

The paper evaluates a single borrower/lender pair but argues the design
scales out: per-node monitoring and prediction with centralized,
cluster-level orchestration.  This example runs one arrival stream on a
4-node fleet whose remote memory comes from a rack-level pool with an
oversubscribed fabric (60% of the sum of per-node link capacities), and
contrasts the two pool regimes:

* ``pooled`` — fungible capacity with max-min fair bandwidth
  arbitration: a bursty node borrows fabric headroom idle nodes are not
  using, so the arbiter only throttles under true aggregate contention;
* ``shared-segment`` — static per-node slices (capacity/N, bandwidth/N),
  the conservative partitioning of early CXL appliances: every lane is
  clamped all the time, contended or not.

Placement is two-level: ``PoolAwarePlacement`` picks the node (least
loaded, penalizing pool-throttled lanes), then the per-node mode policy
picks local vs remote on it.

Usage:  python examples/multi_node_fleet.py
"""

import numpy as np

from repro.analysis import format_table
from repro.cluster import (
    FleetScenarioConfig,
    PoolAwarePlacement,
    ScenarioConfig,
    run_fleet_scenario,
)
from repro.hardware import RemotePoolConfig, TestbedConfig
from repro.orchestrator import InterferenceThresholdPolicy
from repro.workloads import MemoryMode, WorkloadKind

N_NODES = 4
FABRIC_OVERSUB = 0.6


def run_rack(regime: str) -> dict:
    base = TestbedConfig(seed=42)
    config = FleetScenarioConfig(
        scenario=ScenarioConfig(
            duration_s=1200.0, spawn_interval=(5.0, 25.0), seed=42
        ),
        n_nodes=N_NODES,
        pool=RemotePoolConfig(
            capacity_gb=base.node.remote_gb * N_NODES,
            aggregate_bw_gbps=base.link.capacity_gbps * N_NODES * FABRIC_OVERSUB,
            regime=regime,
        ),
    )
    fleet = run_fleet_scenario(
        config, scheduler=PoolAwarePlacement(InterferenceThresholdPolicy())
    )
    records = fleet.records()
    be = [r.runtime_s for r in records if r.kind is WorkloadKind.BEST_EFFORT]
    remote = sum(1 for r in records if r.mode is MemoryMode.REMOTE)
    return {
        "apps": len(records),
        "offload": remote / len(records),
        "median": float(np.median(be)),
        "p99": float(np.percentile(be, 99)),
        "throttled": fleet.pool_throttled_ticks,
    }


def main() -> None:
    pooled = run_rack("pooled")
    shared = run_rack("shared-segment")
    print(format_table(
        ["regime", "apps", "offload", "BE median s", "BE p99 s",
         "throttled ticks"],
        [
            ("pooled", pooled["apps"], f"{pooled['offload'] * 100:.1f}%",
             f"{pooled['median']:.1f}", f"{pooled['p99']:.1f}",
             pooled["throttled"]),
            ("shared-segment", shared["apps"], f"{shared['offload'] * 100:.1f}%",
             f"{shared['median']:.1f}", f"{shared['p99']:.1f}",
             shared["throttled"]),
        ],
        title=f"{N_NODES}-node rack, fabric at "
              f"{FABRIC_OVERSUB:.0%} of aggregate link capacity",
    ))
    ratio = shared["throttled"] / max(pooled["throttled"], 1)
    print(f"\n=> static segments throttle {ratio:.1f}x more often than the "
          f"pooled arbiter on the same arrival stream: statistical "
          f"multiplexing converts idle lanes into usable fabric headroom")


if __name__ == "__main__":
    main()
