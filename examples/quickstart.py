"""Quickstart: explore the simulated ThymesisFlow testbed.

Runs in a few seconds:

1. sweep memory-bandwidth trashers against the remote link (Fig. 2) and
   watch the ~2.5 Gbps throughput cap and the 350 -> 900 cycle latency
   step;
2. compare isolated local vs remote runtimes for the Spark suite
   (Fig. 3);
3. deploy a small co-location mix on the cluster engine and inspect the
   counters the Watcher would see.

Usage:  python examples/quickstart.py
"""

from repro.analysis import format_table
from repro.cluster import ClusterEngine
from repro.experiments import fig02_link_saturation, fig03_spark_isolation
from repro.workloads import MemoryMode, ibench_profile, spark_profile


def main() -> None:
    # 1. Link saturation sweep (Fig. 2).
    fig2 = fig02_link_saturation.run()
    print(fig2.format())
    print(
        f"\n=> throughput cap {fig2.throughput_cap_gbps:.2f} Gbps, "
        f"latency {fig2.base_latency_cycles:.0f} -> "
        f"{fig2.saturated_latency_cycles:.0f} cycles\n"
    )

    # 2. Isolated local vs remote (Fig. 3).
    fig3 = fig03_spark_isolation.run()
    print(fig3.format())
    print(f"\n=> mean remote degradation {fig3.mean_degradation * 100:.1f}%\n")

    # 3. A small co-location: nweight on remote next to LLC trashers.
    engine = ClusterEngine()
    for _ in range(8):
        engine.deploy(ibench_profile("l3"), MemoryMode.LOCAL, duration_s=1e6)
    nweight = engine.deploy(spark_profile("nweight"), MemoryMode.REMOTE)
    while nweight.running:
        engine.tick()
    record = engine.trace.records[-1]
    print(
        format_table(
            ["deployment", "mode", "runtime s", "mean slowdown"],
            [(record.name, record.mode.value, f"{record.runtime_s:.1f}",
              f"{record.mean_slowdown:.2f}")],
            title="Co-located deployment outcome",
        )
    )
    last = engine.trace.metrics[-1]
    print("\nWatcher counters at finish "
          "(LLC ld/mis, MEM ld/st, RMT tx/rx, link lat):")
    print("  " + "  ".join(f"{v:.3e}" for v in last))


if __name__ == "__main__":
    main()
