"""Ablation — LSTM hidden width (DESIGN.md §5.3).

Sweeps the system-state model's hidden size.  Expected shape: accuracy
rises steeply from tiny widths and plateaus — the default (32) sits on
the plateau, so the paper-style 2-layer LSTM is not capacity-bound.
"""

from benchmarks.conftest import run_once
from repro.analysis import format_table
from repro.experiments import ablations


def test_ablation_model_capacity(benchmark, report, scale):
    results = run_once(benchmark, ablations.capacity_ablation, scale=scale)
    report(format_table(
        ["hidden units", "avg R2"],
        [(h, f"{r2:.3f}") for h, r2 in sorted(results.items())],
        title="Ablation — system-state R2 vs LSTM hidden width",
    ))

    assert set(results) == {8, 16, 32, 64}
    assert all(r2 > 0.2 for r2 in results.values())
    best = max(results.values())
    # The default width is on the plateau.
    assert results[32] >= best - 0.08
    # Doubling beyond the default buys little.
    assert results[64] - results[32] < 0.08
