"""Trainable parameters for the numpy neural-network substrate.

The :mod:`repro.nn` package is a from-scratch replacement for the small
subset of PyTorch that the Adrias paper uses (LSTM + dense blocks trained
with Adam).  A :class:`Parameter` bundles a value array with its
accumulated gradient; optimizers consume ``(value, grad)`` pairs and
update values in place so that modules keep aliases to the same arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter"]


class Parameter:
    """A named, trainable tensor with an attached gradient buffer.

    Parameters
    ----------
    value:
        Initial value.  Stored as ``float64`` — pure-numpy training is
        dominated by matmul cost either way and float64 keeps the
        numerical gradient checks in the test suite tight.
    name:
        Human-readable identifier used in ``state_dict`` keys.
    """

    def __init__(self, value: np.ndarray, name: str = "param") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero (in place)."""
        self.grad[...] = 0.0

    def accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into the gradient buffer.

        Accumulation (rather than assignment) lets a parameter that is
        used several times in one forward pass — e.g. LSTM weights across
        timesteps — collect contributions from every use site.
        """
        self.grad += grad

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"
