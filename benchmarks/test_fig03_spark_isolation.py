"""Bench Fig. 3 — Spark isolated local vs remote runtimes (remark R4).

Paper shape: ~20% mean degradation, non-uniform — nweight/lr ~2x,
gmm/pca <10%.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig03_spark_isolation


def test_fig03_spark_isolation(benchmark, report):
    result = run_once(benchmark, fig03_spark_isolation.run)
    report(result.format())

    assert len(result.results) == 17
    # Mean degradation in the paper's band.
    assert 0.15 <= result.mean_degradation <= 0.32
    # The winners and losers the paper names.
    assert result.ratio("nweight") >= 1.8
    assert result.ratio("lr") >= 1.7
    assert result.ratio("gmm") <= 1.10
    assert result.ratio("pca") <= 1.10
    # Non-uniformity: a wide spread across the suite.
    ratios = [entry["ratio"] for entry in result.results.values()]
    assert max(ratios) / min(ratios) > 1.6
    # Remote is never faster in isolation.
    assert min(ratios) >= 1.0
