"""Multi-tier testbed: contention resolution over N memory tiers.

Generalizes the two-pool :class:`repro.hardware.Testbed` to an
arbitrary tier list.  Compute-side contention (cores, caches) is shared
by every tenant; each non-local tier has its own channel with its own
saturation behaviour; local-DRAM tenants contend on the memory bus.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cache import CacheState, SharedCache
from repro.hardware.config import NodeConfig
from repro.hardware.link import LinkState, ThymesisFlowLink
from repro.hardware.memory import LocalMemory, MemoryState
from repro.tiers.spec import TierSpec
from repro.workloads.base import MemoryMode, WorkloadProfile

__all__ = ["TierAssignment", "MultiTierPressure", "MultiTierTestbed", "tier_slowdown"]


@dataclass(frozen=True)
class TierAssignment:
    """One application pinned to one tier."""

    profile: WorkloadProfile
    tier: str


@dataclass(frozen=True)
class MultiTierPressure:
    """Resolved state: shared compute plus one link state per tier."""

    cpu_utilization: float
    l2: CacheState
    llc: CacheState
    memory: MemoryState
    links: dict[str, LinkState]          # non-local tiers only
    used_gb: dict[str, float]

    @property
    def cpu_oversubscription(self) -> float:
        return max(0.0, self.cpu_utilization - 1.0)


class MultiTierTestbed:
    """Analytic contention model over a heterogeneous memory pool."""

    def __init__(
        self,
        tiers: list[TierSpec],
        node: NodeConfig | None = None,
    ) -> None:
        if not tiers:
            raise ValueError("at least one tier is required")
        names = [t.name for t in tiers]
        if len(names) != len(set(names)):
            raise ValueError("tier names must be unique")
        locals_ = [t for t in tiers if t.is_local]
        if len(locals_) != 1:
            raise ValueError("exactly one local tier is required")
        self.node = node if node is not None else NodeConfig()
        self.tiers = {t.name: t for t in tiers}
        self.local_tier = locals_[0].name
        self.llc = SharedCache(self.node.llc_mb)
        self.l2 = SharedCache(self.node.l2_mb, pressure_floor=0.8,
                              inflation_slope=0.6)
        self.memory = LocalMemory(self.node.dram_bw_gbps, self.node.dram_gb)
        self._links = {
            t.name: ThymesisFlowLink(t.link)
            for t in tiers
            if t.link is not None
        }

    def tier(self, name: str) -> TierSpec:
        try:
            return self.tiers[name]
        except KeyError:
            raise KeyError(
                f"unknown tier {name!r}; available: {sorted(self.tiers)}"
            ) from None

    def fits(self, assignments: list[TierAssignment],
             candidate: TierAssignment) -> bool:
        used = self._used_gb(assignments)
        tier = self.tier(candidate.tier)
        return used.get(tier.name, 0.0) + candidate.profile.footprint_gb <= tier.capacity_gb

    def _used_gb(self, assignments: list[TierAssignment]) -> dict[str, float]:
        used: dict[str, float] = {name: 0.0 for name in self.tiers}
        for assignment in assignments:
            self.tier(assignment.tier)  # validate
            used[assignment.tier] += assignment.profile.footprint_gb
        return used

    def resolve(self, assignments: list[TierAssignment]) -> MultiTierPressure:
        used = self._used_gb(assignments)
        for name, amount in used.items():
            capacity = self.tiers[name].capacity_gb
            if amount > capacity:
                raise MemoryError(
                    f"tier {name!r} over capacity: {amount:.1f} > {capacity:.1f} GB"
                )

        cpu = l2_mb = llc_mb = local_bw = 0.0
        offered: dict[str, float] = {name: 0.0 for name in self._links}
        for assignment in assignments:
            profile = assignment.profile
            cpu += profile.cpu_threads
            l2_mb += profile.l2_mb
            llc_mb += profile.llc_mb
            if assignment.tier == self.local_tier:
                local_bw += profile.mem_bw_gbps
            else:
                offered[assignment.tier] += profile.remote_bw_gbps

        return MultiTierPressure(
            cpu_utilization=cpu / self.node.logical_cores,
            l2=self.l2.resolve(l2_mb),
            llc=self.llc.resolve(llc_mb),
            memory=self.memory.resolve(local_bw),
            links={
                name: link.resolve(offered[name])
                for name, link in self._links.items()
            },
            used_gb=used,
        )


def tier_slowdown(
    profile: WorkloadProfile,
    pressure: MultiTierPressure,
    tier: TierSpec,
) -> float:
    """Slowdown of ``profile`` if running from ``tier``.

    Reuses the calibrated two-mode slowdown model: local tiers follow
    the LOCAL branch; non-local tiers follow the REMOTE branch against
    their own channel state, scaled by the tier's medium slowdown.
    """
    from repro.hardware.testbed import ResourceDemand, SystemPressure

    # Adapt the multi-tier state into the two-pool SystemPressure the
    # profile model consumes, substituting the candidate tier's link.
    link_state = pressure.links.get(tier.name)
    if tier.is_local:
        adapted = SystemPressure(
            cpu_utilization=pressure.cpu_utilization,
            l2=pressure.l2,
            llc=pressure.llc,
            memory=pressure.memory,
            link=next(iter(pressure.links.values())) if pressure.links
            else _idle_link(),
            total_demand=ResourceDemand(),
        )
        return profile.slowdown(adapted, MemoryMode.LOCAL)
    adapted = SystemPressure(
        cpu_utilization=pressure.cpu_utilization,
        l2=pressure.l2,
        llc=pressure.llc,
        memory=pressure.memory,
        link=link_state,
        total_demand=ResourceDemand(),
    )
    base = profile.slowdown(adapted, MemoryMode.REMOTE)
    return base * tier.medium_slowdown


def _idle_link():
    from repro.hardware.link import ThymesisFlowLink

    return ThymesisFlowLink().resolve(0.0)
