"""Bench Fig. 15 — generalization on unseen applications.

Paper shape: leave-one-out accuracy varies widely by benchmark (gbt
0.72 vs lr 0.30), and including even a handful of samples of the unseen
application in training recovers most of the accuracy (Fig. 15b).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig15_generalization


def test_fig15_generalization(benchmark, report, scale, strict):
    result = run_once(benchmark, fig15_generalization.run, scale=scale)
    report(result.format())

    scores = {k: v for k, v in result.loo_r2.items() if not np.isnan(v)}
    assert len(scores) >= 4

    values = list(scores.values())
    # Every held-out score is below a same-distribution fit: LOO never
    # reaches the in-distribution ceiling.
    assert all(v <= 1.0 for v in values)
    if strict:
        # Wide spread across benchmarks: generalization is
        # app-dependent — some benchmark generalizes adequately, some
        # fails (paper: gbt ~0.7, lr ~0.3).  At quick scale the tiny
        # corpus makes per-benchmark LOO scores too noisy to band.
        assert max(values) - min(values) > 0.15
        assert max(values) >= 0.5
        assert min(values) <= 0.6

    # Fig. 15b — few-shot samples help (allowing noise).  The held-out
    # test set at quick scale is a handful of samples, so the curve is
    # only asserted from default scale upwards.
    counts = sorted(result.sample_scaling)
    r2s = [result.sample_scaling[c] for c in counts]
    assert all(np.isfinite(r2s))
    if strict:
        assert r2s[-1] >= r2s[0] - 0.05
