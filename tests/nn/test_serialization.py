import numpy as np
import pytest

from repro.nn import (
    BatchNorm1d,
    Linear,
    ReLU,
    Sequential,
    StackedLSTM,
    load_model,
    save_model,
)


def make_model(seed):
    rng = np.random.default_rng(seed)
    return Sequential(
        Linear(4, 8, rng=rng), ReLU(), BatchNorm1d(8), Linear(8, 2, rng=rng)
    )


class TestSaveLoad:
    def test_roundtrip_preserves_outputs(self, tmp_path):
        path = tmp_path / "model.npz"
        rng = np.random.default_rng(0)
        m1, m2 = make_model(1), make_model(2)
        # Populate batch-norm running stats so buffers are non-trivial.
        x = rng.normal(size=(32, 4))
        m1.forward(x)
        save_model(m1, path)
        load_model(m2, path)
        m1.eval()
        m2.eval()
        assert np.allclose(m1.forward(x), m2.forward(x))

    def test_lstm_roundtrip(self, tmp_path):
        path = tmp_path / "lstm.npz"
        rng = np.random.default_rng(3)
        m1 = StackedLSTM(3, 8, num_layers=2, rng=np.random.default_rng(4))
        m2 = StackedLSTM(3, 8, num_layers=2, rng=np.random.default_rng(5))
        save_model(m1, path)
        load_model(m2, path)
        x = rng.normal(size=(2, 6, 3))
        assert np.allclose(m1.forward(x), m2.forward(x))

    def test_architecture_mismatch_raises(self, tmp_path):
        path = tmp_path / "model.npz"
        save_model(make_model(0), path)
        wrong = Sequential(Linear(4, 4))
        with pytest.raises((KeyError, ValueError)):
            load_model(wrong, path)

    def test_empty_model_raises(self, tmp_path):
        with pytest.raises(ValueError):
            save_model(ReLU(), tmp_path / "empty.npz")
