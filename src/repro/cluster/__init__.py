"""repro.cluster — discrete-time cluster simulation.

Ties workload demand models to the hardware testbed: the
:class:`ClusterEngine` resolves contention each tick and advances
deployments; :mod:`repro.cluster.scenario` generates the randomized
one-hour deployment scenarios of §V-B1; :class:`Trace` records the
metric time series and per-deployment outcomes consumed by the Fig. 6
correlation analysis, the Predictor datasets and the §VI-B evaluation.
"""

from repro.cluster.deployment import Deployment, DeploymentRecord, DeploymentState
from repro.cluster.engine import CapacityError, ClusterEngine, NodeDownError
from repro.cluster.failover import (
    FailoverConfig,
    FleetHealthManager,
    NodeHealth,
)
from repro.cluster.fleet import (
    ClusterFleet,
    FleetDecision,
    LeastLoadedPlacement,
    PoolAwarePlacement,
)
from repro.cluster.fleet_scenario import FleetScenarioConfig, run_fleet_scenario
from repro.cluster.scenario import (
    Arrival,
    ScenarioConfig,
    default_pool,
    generate_arrivals,
    run_scenario,
)
from repro.cluster.trace import Trace

__all__ = [
    "Arrival",
    "CapacityError",
    "ClusterEngine",
    "ClusterFleet",
    "Deployment",
    "FailoverConfig",
    "FleetDecision",
    "FleetHealthManager",
    "FleetScenarioConfig",
    "LeastLoadedPlacement",
    "NodeDownError",
    "NodeHealth",
    "PoolAwarePlacement",
    "DeploymentRecord",
    "DeploymentState",
    "ScenarioConfig",
    "run_fleet_scenario",
    "Trace",
    "default_pool",
    "generate_arrivals",
    "run_scenario",
]
