"""Online predictor-drift detection (EWMA + Page–Hinkley).

Joins every Predictor forecast against the measurement that later
realizes it and watches the *relative* error stream for a sustained
upward shift — the operational signal behind the paper's "continuous
collection of representative application signatures and retraining is
crucial" observation (Fig. 15).

Two mechanisms run side by side per error stream:

* an **EWMA** of the absolute relative error — a smooth "how wrong are
  we lately" level, exported as a gauge and shown by ``repro obs
  watch``;
* a **Page–Hinkley test** (the sequential-CUSUM variant for mean
  increase): with error magnitudes :math:`x_t`, running mean
  :math:`\\bar x_t` and tolerance :math:`\\delta`, it accumulates
  :math:`m_t = \\sum_{i\\le t} (x_i - \\bar x_i - \\delta)` and alarms
  when :math:`m_t - \\min_{i\\le t} m_i > \\lambda`.  The statistic
  resets after each alarm, so a persistent degradation re-fires only
  after ``min_samples`` fresh observations.

Streams are keyed by the caller — the live session feeds ``be`` / ``lc``
performance-prediction errors (from the decision-audit join) and a
``system_state`` stream (Ŝ forecasts vs realized Watcher horizon means).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.obs import runtime

__all__ = ["Ewma", "PageHinkley", "DriftDetector", "DriftAlarm"]


class Ewma:
    """Exponentially weighted moving average (bias-free start)."""

    __slots__ = ("alpha", "value", "n")

    def __init__(self, alpha: float = 0.2) -> None:
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.value: float | None = None
        self.n = 0

    def update(self, x: float) -> float:
        self.n += 1
        if self.value is None:
            self.value = float(x)
        else:
            self.value += self.alpha * (float(x) - self.value)
        return self.value


class PageHinkley:
    """Page–Hinkley sequential change detector for an upward mean shift."""

    def __init__(
        self,
        delta: float = 0.1,
        threshold: float = 8.0,
        min_samples: int = 8,
    ) -> None:
        if delta < 0:
            raise ValueError("delta must be >= 0")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.delta = delta
        self.threshold = threshold
        self.min_samples = min_samples
        self.reset()

    def reset(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._cum = 0.0
        self._cum_min = 0.0

    @property
    def statistic(self) -> float:
        """Current CUSUM excursion ``m_t - min(m)`` (>= 0)."""
        return self._cum - self._cum_min

    @property
    def score(self) -> float:
        """Excursion normalized by the alarm threshold (alarm at >= 1)."""
        return self.statistic / self.threshold

    def update(self, x: float) -> bool:
        """Feed one observation; ``True`` when the alarm fires."""
        x = float(x)
        self.n += 1
        self.mean += (x - self.mean) / self.n
        self._cum += x - self.mean - self.delta
        self._cum_min = min(self._cum_min, self._cum)
        return self.n >= self.min_samples and self.statistic > self.threshold


@dataclass
class DriftAlarm:
    """One fired drift alarm."""

    stream: str
    sim_time: float
    clock: float
    score: float
    ewma_abs_error: float
    n_observations: int

    def to_dict(self) -> dict:
        return {
            "stream": self.stream,
            "sim": self.sim_time,
            "clock": self.clock,
            "score": self.score,
            "ewma": self.ewma_abs_error,
            "n": self.n_observations,
        }


class _StreamState:
    __slots__ = ("ewma", "ph", "n", "alarms")

    def __init__(self, alpha: float, delta: float, threshold: float,
                 min_samples: int) -> None:
        self.ewma = Ewma(alpha)
        self.ph = PageHinkley(delta, threshold, min_samples)
        self.n = 0
        self.alarms = 0


class DriftDetector:
    """Multi-stream drift tracker with alarm callbacks.

    ``on_alarm(alarm: DriftAlarm)`` is invoked synchronously when any
    stream's Page–Hinkley test fires — e.g. a retraining trigger built
    with :func:`repro.models.retraining.retrain_on_drift`.
    """

    def __init__(
        self,
        alpha: float = 0.2,
        delta: float = 0.1,
        threshold: float = 8.0,
        min_samples: int = 8,
        on_alarm: Callable[[DriftAlarm], None] | None = None,
    ) -> None:
        self._params = (alpha, delta, threshold, min_samples)
        self.on_alarm = on_alarm
        self._streams: dict[str, _StreamState] = {}
        self.alarms: list[DriftAlarm] = []

    def _stream(self, name: str) -> _StreamState:
        state = self._streams.get(name)
        if state is None:
            state = self._streams[name] = _StreamState(*self._params)
        return state

    def observe(
        self, stream: str, error: float, sim_time: float = 0.0,
        clock: float = 0.0,
    ) -> DriftAlarm | None:
        """Feed one (relative) forecast error; returns the alarm if fired.

        Non-finite errors (a NaN forecast joined against a real
        measurement under fault injection) are counted and dropped — a
        single poisoned observation would otherwise wedge the EWMA and
        Page–Hinkley statistics at NaN forever.
        """
        magnitude = abs(float(error))
        if magnitude != magnitude or magnitude == float("inf"):
            runtime.metrics().counter(
                "predictor_drift_dropped_observations_total",
                "Non-finite forecast errors dropped by the drift detector",
                labels=("stream",),
            ).labels(stream=stream).inc()
            return None
        state = self._stream(stream)
        state.n += 1
        ewma = state.ewma.update(magnitude)
        fired = state.ph.update(magnitude)
        metrics = runtime.metrics()
        metrics.gauge(
            "predictor_drift_score",
            "Page-Hinkley excursion / threshold per error stream "
            "(alarm at >= 1)",
            labels=("stream",),
        ).labels(stream=stream).set(state.ph.score)
        metrics.gauge(
            "predictor_drift_ewma_abs_error",
            "EWMA of the absolute relative forecast error",
            labels=("stream",),
        ).labels(stream=stream).set(ewma)
        if not fired:
            return None
        alarm = DriftAlarm(
            stream=stream,
            sim_time=sim_time,
            clock=clock,
            score=state.ph.score,
            ewma_abs_error=ewma,
            n_observations=state.n,
        )
        state.alarms += 1
        state.ph.reset()
        self.alarms.append(alarm)
        metrics.counter(
            "predictor_drift_alarms_total",
            "Fired Page-Hinkley drift alarms",
            labels=("stream",),
        ).labels(stream=stream).inc()
        runtime.tracer().instant(
            "drift_alarm", category="obs.live", **alarm.to_dict()
        )
        if self.on_alarm is not None:
            self.on_alarm(alarm)
        return alarm

    def score(self, stream: str) -> float:
        """Current normalized drift score of one stream (0 when unseen)."""
        state = self._streams.get(stream)
        return state.ph.score if state is not None else 0.0

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Per-stream state for the tick record / dashboard."""
        out = {}
        for name, state in sorted(self._streams.items()):
            out[name] = {
                "score": round(state.ph.score, 6),
                "ewma": round(state.ewma.value or 0.0, 6),
                "n": state.n,
                "alarms": state.alarms,
            }
        return out
