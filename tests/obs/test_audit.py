import json

from repro import obs
from repro.cluster.engine import ClusterEngine
from repro.cluster.scenario import ScenarioConfig, run_scenario
from repro.obs.audit import DecisionAuditLog
from repro.orchestrator.policies import RandomPolicy, StaticThresholdPolicy
from repro.workloads import MemoryMode, spark_profile


class TestJoinThroughOnFinish:
    def test_decision_outcome_round_trip(self):
        log = DecisionAuditLog()
        engine = ClusterEngine()
        profile = spark_profile("scan")
        record = log.record(
            engine=engine,
            policy="test",
            app_name=profile.name,
            kind=profile.kind.value,
            chosen_mode="local",
            predicted={"local": 50.0, "remote": 60.0},
            margin=10.0,
            beta=0.8,
            reason="beta-slack",
        )
        engine.deploy(profile, MemoryMode.LOCAL)
        engine.run_until_idle()
        assert record.joined
        assert record.outcome["mode"] == "local"
        assert record.outcome["fallback"] is False
        assert record.outcome["performance"] == record.outcome["runtime_s"]
        assert record.prediction_error == 50.0 - record.outcome["runtime_s"]

    def test_existing_on_finish_hook_is_preserved(self):
        log = DecisionAuditLog()
        engine = ClusterEngine()
        seen = []
        engine.on_finish = seen.append
        profile = spark_profile("scan")
        log.record(
            engine=engine,
            policy="test",
            app_name=profile.name,
            kind=profile.kind.value,
            chosen_mode="local",
        )
        engine.deploy(profile, MemoryMode.LOCAL)
        engine.run_until_idle()
        assert len(seen) == 1  # caller's hook still fires
        assert log.records[0].joined

    def test_fallback_placement_joins_with_flag(self):
        # The decision said local but the deploy landed on remote (as the
        # scenario driver does on CapacityError): the join still works and
        # the outcome is flagged.
        log = DecisionAuditLog()
        engine = ClusterEngine()
        profile = spark_profile("scan")
        record = log.record(
            engine=engine,
            policy="test",
            app_name=profile.name,
            kind=profile.kind.value,
            chosen_mode="local",
        )
        engine.deploy(profile, MemoryMode.REMOTE)
        engine.run_until_idle()
        assert record.outcome["fallback"] is True
        assert record.outcome["mode"] == "remote"

    def test_unlogged_deployment_does_not_join(self):
        log = DecisionAuditLog()
        engine = ClusterEngine()
        profile = spark_profile("scan")
        log.record(
            engine=engine,
            policy="test",
            app_name=profile.name,
            kind=profile.kind.value,
            chosen_mode="local",
        )
        engine.deploy(profile, MemoryMode.LOCAL)
        # A second deployment of the same app at a later instant has no
        # logged decision; it must not steal the pending join.
        engine.run_for(5.0)
        engine.deploy(profile, MemoryMode.LOCAL)
        engine.run_until_idle()
        assert len(log.joined()) == 1
        assert log.records[0].outcome["app_id"] == 0


class TestAccuracyAndDrift:
    def _joined_log(self) -> DecisionAuditLog:
        log = DecisionAuditLog()
        engine = ClusterEngine()
        profile = spark_profile("scan")
        for i in range(4):
            log.record(
                engine=engine,
                policy="adrias",
                app_name=profile.name,
                kind=profile.kind.value,
                chosen_mode="local",
                predicted={"local": 40.0 + i, "remote": 90.0},
            )
            engine.deploy(profile, MemoryMode.LOCAL)
            engine.run_until_idle()
            engine.run_for(1.0)  # separate the arrival instants
        return log

    def test_accuracy_summary(self):
        summary = self._joined_log().accuracy()
        assert summary["adrias"]["count"] == 4
        assert summary["adrias"]["mae"] > 0
        assert "bias" in summary["adrias"]
        assert "mape" in summary["adrias"]

    def test_drift_segments_cover_all_scored_rows(self):
        segments = self._joined_log().drift(n_segments=2)
        assert len(segments) == 2
        assert sum(s["count"] for s in segments) == 4

    def test_jsonl_round_trip(self):
        log = self._joined_log()
        rows = [json.loads(line) for line in log.to_jsonl().splitlines()]
        assert len(rows) == 4
        for row in rows:
            assert row["outcome"] is not None
            assert row["prediction_error"] is not None


class TestPolicyIntegration:
    def test_scenario_replay_joins_every_decision(self):
        with obs.session() as handles:
            run_scenario(
                ScenarioConfig(duration_s=150.0, seed=5),
                scheduler=RandomPolicy(seed=2),
            )
            assert len(handles.audit) > 0
            assert not handles.audit.unjoined()  # drain joins everything
            for record in handles.audit.records:
                assert record.policy == "random"
                assert record.outcome["performance"] is not None

    def test_static_threshold_records_margin_and_reason(self):
        with obs.session() as handles:
            run_scenario(
                ScenarioConfig(duration_s=150.0, seed=5),
                scheduler=StaticThresholdPolicy(threshold=1.3),
            )
            record = handles.audit.records[0]
            assert record.reason == "static-threshold"
            assert record.margin is not None

    def test_decision_metrics_counted_by_policy_and_mode(self):
        with obs.session() as handles:
            run_scenario(
                ScenarioConfig(duration_s=150.0, seed=5),
                scheduler=RandomPolicy(seed=2),
            )
            assert "orchestrator_decisions_total" in handles.metrics

    def test_disabled_records_nothing(self):
        assert not obs.enabled()
        run_scenario(
            ScenarioConfig(duration_s=120.0, seed=5),
            scheduler=RandomPolicy(seed=2),
        )
        assert len(obs.audit()) == 0
        assert len(obs.metrics()) == 0
