import numpy as np
import pytest

from repro.cluster import ClusterEngine
from repro.models import FeatureConfig, Predictor, SignatureLibrary
from repro.orchestrator import (
    AdriasPolicy,
    AllLocalPolicy,
    AllRemotePolicy,
    RandomPolicy,
    RoundRobinPolicy,
)
from repro.workloads import (
    MEMCACHED,
    MemoryMode,
    REDIS,
    ibench_profile,
    spark_profile,
)


class StubPredictor(Predictor):
    """Predictor with scripted performance estimates (no training)."""

    def __init__(self, estimates: dict[str, dict[MemoryMode, float]]):
        config = FeatureConfig()
        signatures = SignatureLibrary(feature_config=config)
        for name in estimates:
            signatures.add(name, np.ones((10, config.n_metrics)))
        super().__init__(
            system_state=None, be_performance=None, lc_performance=None,
            signatures=signatures, feature_config=config,
        )
        self._estimates = estimates
        self.capture_calls: list[str] = []

    def predict_performance(self, profile, history_raw, mode):
        return self._estimates[profile.name][mode]

    def predict_both_modes(self, profile, history_raw):
        return dict(self._estimates[profile.name])


@pytest.fixture
def engine():
    return ClusterEngine()


class TestBaselines:
    def test_all_local(self, engine):
        policy = AllLocalPolicy()
        assert policy.decide(spark_profile("gmm"), engine) is MemoryMode.LOCAL
        assert policy.name == "all-local"

    def test_all_remote(self, engine):
        assert AllRemotePolicy().decide(REDIS, engine) is MemoryMode.REMOTE

    def test_round_robin_alternates(self, engine):
        policy = RoundRobinPolicy()
        modes = [policy.decide(REDIS, engine) for _ in range(4)]
        assert modes == [
            MemoryMode.LOCAL, MemoryMode.REMOTE,
            MemoryMode.LOCAL, MemoryMode.REMOTE,
        ]

    def test_random_roughly_balanced_and_seeded(self, engine):
        a = RandomPolicy(seed=5)
        b = RandomPolicy(seed=5)
        modes_a = [a.decide(REDIS, engine) for _ in range(100)]
        modes_b = [b.decide(REDIS, engine) for _ in range(100)]
        assert modes_a == modes_b
        remote_count = sum(1 for m in modes_a if m is MemoryMode.REMOTE)
        assert 30 <= remote_count <= 70


class TestStaticThresholdPolicy:
    def test_offloads_by_isolated_ratio(self, engine):
        from repro.orchestrator import StaticThresholdPolicy

        policy = StaticThresholdPolicy(threshold=1.3)
        assert policy.decide(spark_profile("gmm"), engine) is MemoryMode.REMOTE
        assert policy.decide(spark_profile("nweight"), engine) is MemoryMode.LOCAL

    def test_blind_to_system_state(self, engine):
        """The decision ignores current pressure entirely."""
        from repro.orchestrator import StaticThresholdPolicy

        policy = StaticThresholdPolicy(threshold=1.3)
        before = policy.decide(spark_profile("gmm"), engine)
        for _ in range(16):
            engine.deploy(ibench_profile("memBw"), MemoryMode.REMOTE,
                          duration_s=1e6)
        after = policy.decide(spark_profile("gmm"), engine)
        assert before is after is MemoryMode.REMOTE

    def test_interference_kept_local(self, engine):
        from repro.orchestrator import StaticThresholdPolicy

        policy = StaticThresholdPolicy()
        assert policy.decide(ibench_profile("memBw"), engine) is MemoryMode.LOCAL

    def test_invalid_threshold(self):
        from repro.orchestrator import StaticThresholdPolicy

        with pytest.raises(ValueError):
            StaticThresholdPolicy(threshold=0.9)


class TestAdriasBEPolicy:
    """mode = local if t_local < beta * t_remote else remote (§V-C)."""

    def test_clear_remote_penalty_stays_local(self, engine):
        stub = StubPredictor({"nweight": {MemoryMode.LOCAL: 100.0,
                                          MemoryMode.REMOTE: 200.0}})
        policy = AdriasPolicy(stub, beta=0.7)
        assert policy.decide(spark_profile("nweight"), engine) is MemoryMode.LOCAL

    def test_overlapping_estimates_offloaded(self, engine):
        stub = StubPredictor({"gmm": {MemoryMode.LOCAL: 100.0,
                                      MemoryMode.REMOTE: 110.0}})
        policy = AdriasPolicy(stub, beta=0.7)
        assert policy.decide(spark_profile("gmm"), engine) is MemoryMode.REMOTE

    def test_beta_one_prefers_local(self, engine):
        stub = StubPredictor({"gmm": {MemoryMode.LOCAL: 100.0,
                                      MemoryMode.REMOTE: 101.0}})
        policy = AdriasPolicy(stub, beta=1.0)
        assert policy.decide(spark_profile("gmm"), engine) is MemoryMode.LOCAL

    def test_beta_threshold_boundary(self, engine):
        stub = StubPredictor({"gmm": {MemoryMode.LOCAL: 80.0,
                                      MemoryMode.REMOTE: 100.0}})
        # local < beta * remote: 80 < 0.8*100 is false -> remote
        assert AdriasPolicy(stub, beta=0.8).decide(
            spark_profile("gmm"), engine
        ) is MemoryMode.REMOTE
        # 80 < 0.81 * 100 -> local
        assert AdriasPolicy(stub, beta=0.81).decide(
            spark_profile("gmm"), engine
        ) is MemoryMode.LOCAL


class TestAdriasLCPolicy:
    """mode = remote if p99_remote <= QoS else local (§V-C)."""

    def test_remote_within_qos_offloaded(self, engine):
        stub = StubPredictor({"redis": {MemoryMode.LOCAL: 1.5,
                                        MemoryMode.REMOTE: 2.0}})
        policy = AdriasPolicy(stub, qos_p99_ms={"redis": 3.0})
        assert policy.decide(REDIS, engine) is MemoryMode.REMOTE

    def test_remote_violating_qos_stays_local(self, engine):
        stub = StubPredictor({"redis": {MemoryMode.LOCAL: 1.5,
                                        MemoryMode.REMOTE: 4.0}})
        policy = AdriasPolicy(stub, qos_p99_ms={"redis": 3.0})
        assert policy.decide(REDIS, engine) is MemoryMode.LOCAL

    def test_default_qos_used_when_unlisted(self, engine):
        stub = StubPredictor({"memcached": {MemoryMode.LOCAL: 0.8,
                                            MemoryMode.REMOTE: 1.2}})
        policy = AdriasPolicy(stub, qos_p99_ms={"redis": 3.0},
                              default_qos_ms=1.0)
        assert policy.decide(MEMCACHED, engine) is MemoryMode.LOCAL


class TestAdriasSpecialCases:
    def test_interference_kept_local(self, engine):
        stub = StubPredictor({})
        policy = AdriasPolicy(stub)
        assert policy.decide(ibench_profile("memBw"), engine) is MemoryMode.LOCAL

    def test_unknown_application_captured_and_sent_remote(self, engine):
        """§V-C: no signature -> schedule on remote and capture."""
        stub = StubPredictor({})
        policy = AdriasPolicy(stub)
        profile = spark_profile("scan")
        assert not stub.has_signature(profile)
        mode = policy.decide(profile, engine)
        assert mode is MemoryMode.REMOTE
        assert stub.has_signature(profile)

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            AdriasPolicy(StubPredictor({}), beta=0.0)
        with pytest.raises(ValueError):
            AdriasPolicy(StubPredictor({}), beta=1.5)

    def test_policy_name_includes_beta(self):
        assert AdriasPolicy(StubPredictor({}), beta=0.8).name == "adrias(b=0.8)"


class TestAdriasMemoAttachment:
    def test_decide_attaches_tick_invalidation(self, engine):
        stub = StubPredictor({"gmm": {MemoryMode.LOCAL: 100.0,
                                      MemoryMode.REMOTE: 200.0}})
        policy = AdriasPolicy(stub, beta=0.7)
        policy.decide(spark_profile("gmm"), engine)
        policy.decide(spark_profile("gmm"), engine)  # attach is idempotent
        assert engine._tick_hooks == [stub._on_engine_tick]
        stub._memo_key = ("poisoned",)
        engine.tick()
        assert stub._memo_key is None  # the tick wiped the memo
