"""Experiment — fleet availability under crash/rejoin and device loss.

A fig16-style comparison for the failure-domain layer: replay the
held-out arrival sequences against a 4-node pooled-memory rack twice —
once healthy, once under the seeded
:meth:`~repro.faults.plan.FaultPlan.sample_availability` schedule (a
long crash of ``n1`` cut short by an explicit rejoin, a shorter crash
of ``n2`` overlapping a pool-device failure that halves the pool).

Three questions, one answer each:

* **Did anything get lost?**  The conservation invariant
  ``submitted == finished + running + parked + dropped`` is asserted on
  *every* fleet tick via a tick hook — across crashes, drains, replays
  and evictions.  A single violating tick fails the run.
* **Did the fleet recover?**  Recovered fraction = failover entries
  re-placed on survivors over entries drained/evicted, plus
  time-to-recover samples (drain start → failover queue empty).
* **What did the survivors pay?**  Healthy-vs-faulted deltas on BE
  completion throughput/median runtime and the LC QoS violation rate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.analysis.reporting import format_table
from repro.cluster.fleet import ClusterFleet, LeastLoadedPlacement
from repro.cluster.fleet_scenario import FleetScenarioConfig, run_fleet_scenario
from repro.experiments.common import (
    ExperimentScale,
    eval_scenario_configs,
    scale_from_env,
)
from repro.faults.plan import FaultPlan
from repro.faults.runtime import active_plan
from repro.hardware.config import TestbedConfig
from repro.hardware.pool import PoolRegime, RemotePoolConfig
from repro.orchestrator.policies import InterferenceThresholdPolicy
from repro.workloads.base import WorkloadKind

__all__ = ["AvailabilityCondition", "AvailabilityResult", "run", "N_NODES"]

N_NODES = 4

#: Same rack fabric oversubscription and LC QoS bound the fleet-scaling
#: experiment uses, so the healthy columns are comparable across both.
_FABRIC_OVERSUB = 0.6
_LC_QOS_MS = 6.0


@dataclass(frozen=True)
class AvailabilityCondition:
    """Aggregated outcome of one condition (healthy or faulted)."""

    completed: int
    be_jobs_per_hour: float
    be_median_runtime_s: float
    lc_qos_violation_rate: float
    conservation_checks: int
    conservation_violations: int


@dataclass(frozen=True)
class AvailabilityResult:
    n_scenarios: int
    n_nodes: int
    plan_windows: int
    healthy: AvailabilityCondition
    faulted: AvailabilityCondition
    #: Failover-queue traffic summed over the faulted scenarios.
    drained: int
    evicted: int
    replayed: int
    #: Entries still awaiting placement after the drain (silent losses
    #: if nonzero — the acceptance gate requires exactly 0).
    residual_parked: int
    recovery_time_mean_s: float
    recovery_time_max_s: float

    @property
    def recovered_fraction(self) -> float:
        displaced = self.drained + self.evicted
        return self.replayed / displaced if displaced else float("nan")

    def format(self) -> str:
        rows = [
            (
                name,
                str(cond.completed),
                f"{cond.be_jobs_per_hour:.1f}",
                f"{cond.be_median_runtime_s:.0f}",
                f"{cond.lc_qos_violation_rate * 100:.1f}%",
                f"{cond.conservation_violations}/{cond.conservation_checks}",
            )
            for name, cond in (("healthy", self.healthy),
                               ("faulted", self.faulted))
        ]
        table = format_table(
            ["condition", "completed", "BE jobs/h", "BE median s",
             "LC QoS viol", "ledger viol/ticks"],
            rows,
            title=(
                f"Availability — {self.n_nodes}-node rack under "
                "crash/rejoin + pool device loss"
            ),
        )
        recovered = self.recovered_fraction
        return (
            f"{table}\n"
            f"fault schedule: {self.plan_windows} windows/scenario over "
            f"{self.n_scenarios} scenario(s)\n"
            f"failover: drained {self.drained} (node crash) + "
            f"evicted {self.evicted} (device loss), "
            f"replayed {self.replayed} on survivors, "
            f"residual parked {self.residual_parked}\n"
            f"recovered fraction: "
            + (f"{recovered * 100:.1f}%" if np.isfinite(recovered) else "n/a")
            + "\n"
            f"time to recover: mean {self.recovery_time_mean_s:.1f}s, "
            f"max {self.recovery_time_max_s:.1f}s"
        )


def _pool_for(base: TestbedConfig) -> RemotePoolConfig:
    return RemotePoolConfig(
        capacity_gb=base.node.remote_gb * N_NODES,
        aggregate_bw_gbps=(
            base.link.capacity_gbps * N_NODES * _FABRIC_OVERSUB
        ),
        regime=PoolRegime.POOLED,
    )


def _run_condition(
    scale: ExperimentScale, faulted: bool
) -> tuple[AvailabilityCondition, dict]:
    records = []
    total_sim_s = 0.0
    checks = violations = 0
    failover = {
        "drained": 0, "evicted": 0, "replayed": 0,
        "residual": 0, "recovery_times": [],
    }
    for scenario in eval_scenario_configs(scale):
        low, high = scenario.spawn_interval
        base = TestbedConfig(seed=scenario.seed)
        config = FleetScenarioConfig(
            scenario=replace(
                scenario, spawn_interval=(low / N_NODES, high / N_NODES)
            ),
            n_nodes=N_NODES,
            pool=_pool_for(base),
        )
        fleet = ClusterFleet(
            n_nodes=N_NODES, testbed_config=base, pool=config.pool
        )
        ledger_log: list[int] = []

        def check(f: ClusterFleet, _log=ledger_log) -> None:
            acc = f.accounting()
            _log.append(1 if acc["submitted"] != acc["total"] else 0)

        fleet.tick_hooks.append(check)
        scheduler = LeastLoadedPlacement(InterferenceThresholdPolicy())
        if faulted:
            plan = FaultPlan.sample_availability(
                seed=scenario.seed,
                duration_s=scenario.duration_s,
                n_nodes=N_NODES,
            )
            with active_plan(plan):
                run_fleet_scenario(config, scheduler=scheduler, fleet=fleet)
            failover["plan_windows"] = len(plan)
            manager = fleet.health
            if manager is not None:
                failover["drained"] += manager.counters["drained"]
                failover["evicted"] += manager.counters["evicted"]
                failover["replayed"] += manager.counters["replayed"]
                failover["residual"] += manager.pending
                failover["recovery_times"].extend(manager.recovery_times)
        else:
            run_fleet_scenario(config, scheduler=scheduler, fleet=fleet)
        records.extend(fleet.records())
        checks += len(ledger_log)
        violations += sum(ledger_log)
        total_sim_s += scenario.duration_s
    be = [r for r in records if r.kind is WorkloadKind.BEST_EFFORT]
    lc_p99 = np.array([
        r.p99_ms for r in records
        if r.kind is WorkloadKind.LATENCY_CRITICAL and not np.isnan(r.p99_ms)
    ])
    condition = AvailabilityCondition(
        completed=len(records),
        be_jobs_per_hour=(
            len(be) / total_sim_s * 3600.0 if total_sim_s else 0.0
        ),
        be_median_runtime_s=(
            float(np.median([r.runtime_s for r in be])) if be else float("nan")
        ),
        lc_qos_violation_rate=(
            float(np.mean(lc_p99 > _LC_QOS_MS)) if lc_p99.size else float("nan")
        ),
        conservation_checks=checks,
        conservation_violations=violations,
    )
    return condition, failover


def run(scale: ExperimentScale | None = None) -> AvailabilityResult:
    scale = scale if scale is not None else scale_from_env()
    healthy, _ = _run_condition(scale, faulted=False)
    faulted, failover = _run_condition(scale, faulted=True)
    times = failover["recovery_times"]
    result = AvailabilityResult(
        n_scenarios=scale.n_eval_scenarios,
        n_nodes=N_NODES,
        plan_windows=failover.get("plan_windows", 0),
        healthy=healthy,
        faulted=faulted,
        drained=failover["drained"],
        evicted=failover["evicted"],
        replayed=failover["replayed"],
        residual_parked=failover["residual"],
        recovery_time_mean_s=float(np.mean(times)) if times else float("nan"),
        recovery_time_max_s=float(np.max(times)) if times else float("nan"),
    )
    if result.healthy.conservation_violations or (
        result.faulted.conservation_violations
    ):
        raise AssertionError(
            "conservation invariant violated: "
            f"healthy {result.healthy.conservation_violations}, "
            f"faulted {result.faulted.conservation_violations} ticks"
        )
    return result
