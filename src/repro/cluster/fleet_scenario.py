"""Fleet-level scenario replay: §V-B1 arrivals against a rack.

Reuses :mod:`repro.cluster.scenario`'s arrival generation and replay
shape (advance-to-arrival, place, drain) but drives a whole
:class:`~repro.cluster.fleet.ClusterFleet` under its single fleet clock
— per-engine ``now`` never drifts because only :meth:`ClusterFleet.tick`
advances time.  Fault plans armed via ``repro.faults.runtime`` apply to
every node (a rack-fabric event), each node drawing from its own
deterministic RNG stream; checkpoints reuse the engine serializers from
:mod:`repro.faults.checkpoint` so a resumed fleet run is bit-identical
to an uninterrupted one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro import obs
from repro.cluster.engine import CapacityError, RemoteUnavailableError
from repro.cluster.fleet import ClusterFleet, FleetDecision
from repro.cluster.scenario import (
    Arrival,
    ScenarioConfig,
    generate_arrivals,
)
from repro.hardware.config import TestbedConfig
from repro.hardware.pool import RemotePoolConfig
from repro.workloads.base import MemoryMode, WorkloadProfile

__all__ = [
    "FleetScenarioConfig",
    "run_fleet_scenario",
    "save_fleet_checkpoint",
    "load_fleet_checkpoint",
    "resume_fleet_scenario",
]

#: A fleet scheduler maps (profile, fleet) -> FleetDecision at arrival time.
FleetScheduler = Callable[[WorkloadProfile, ClusterFleet], FleetDecision]

FLEET_CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class FleetScenarioConfig:
    """One randomized deployment scenario against an N-node rack."""

    scenario: ScenarioConfig = field(default_factory=ScenarioConfig)
    n_nodes: int = 2
    #: Rack pool configuration; ``None`` keeps per-node private remote
    #: memory (the pre-pool fleet semantics).
    pool: RemotePoolConfig | None = None

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError("n_nodes must be positive")


def _fleet_predictor(scheduler) -> object | None:
    """Locate the Predictor behind a two-level scheduler, if any."""
    if scheduler is None:
        return None
    direct = getattr(scheduler, "predictor", None)
    if direct is not None:
        return direct
    return getattr(getattr(scheduler, "mode_policy", None), "predictor", None)


def _attach_injectors(config: FleetScenarioConfig, fleet: ClusterFleet, scheduler):
    """One injector per node when a fault plan is armed (replays only)."""
    if scheduler is None:
        return None
    from repro.faults import runtime as faults_runtime

    plan = faults_runtime.current_plan()
    if plan is None:
        return None
    from repro.faults.injector import FaultInjector

    predictor = _fleet_predictor(scheduler)
    injectors = []
    for index, engine in enumerate(fleet.engines):
        injector = FaultInjector(
            plan, scenario_seed=config.scenario.seed + index
        )
        # The (shared) predictor chaos shim is installed once, via the
        # first node's injector; link/telemetry effects stay per node.
        injector.attach(engine, predictor=predictor if index == 0 else None)
        injectors.append(injector)
    return injectors


def _attach_health(fleet: ClusterFleet, plan, scheduler):
    """Wire the health manager when the plan has fleet-side windows.

    Also cross-validates node targets against the actual fleet shape —
    a typo'd ``node`` label fails loudly here instead of silently never
    firing.
    """
    from repro.faults.plan import FLEET_KINDS

    if not any(spec.kind in FLEET_KINDS for spec in plan.faults):
        return None
    from repro.cluster.failover import FleetHealthManager

    plan.validate(fleet.n_nodes)
    manager = FleetHealthManager(plan, scheduler=scheduler)
    fleet.health = manager
    return manager


def _place_on_node(fleet: ClusterFleet, node: int, arrival: Arrival,
                   mode: MemoryMode) -> bool:
    """Single-node placement semantics, pinned to one fleet node."""
    engine = fleet.engines[node]
    if engine.journey is not None:
        engine.journey.hop(arrival.profile.name, fleet.now, "placement",
                           fleet.now, mode=mode.value)
    try:
        engine.deploy(arrival.profile, mode, duration_s=arrival.duration_s,
                      decided_s=fleet.now)
    except RemoteUnavailableError:
        engine.queue_remote(arrival.profile, duration_s=arrival.duration_s,
                            decided_s=fleet.now)
    except CapacityError:
        return False
    return True


def run_fleet_scenario(
    config: FleetScenarioConfig,
    scheduler: FleetScheduler | None = None,
    workload_pool: Sequence[WorkloadProfile] | None = None,
    testbed_config: TestbedConfig | None = None,
    fleet: ClusterFleet | None = None,
    checkpoint_path=None,
    checkpoint_every_s: float | None = None,
) -> ClusterFleet:
    """Simulate one fleet scenario end to end; returns the fleet.

    With ``scheduler=None`` (trace collection) arrivals keep their
    generator-chosen memory mode and are assigned round-robin across
    nodes — a deterministic, policy-free baseline.  With a scheduler,
    each arrival is placed by the two-level decision (node + mode); a
    :class:`RemoteUnavailableError` from the chosen node parks the
    arrival in that node's retry queue, and arrivals that fit nowhere
    are dropped, mirroring :func:`repro.cluster.scenario.run_scenario`.
    """
    if fleet is None:
        base = testbed_config if testbed_config is not None else TestbedConfig(
            seed=config.scenario.seed
        )
        fleet = ClusterFleet(
            n_nodes=config.n_nodes, testbed_config=base, pool=config.pool
        )
    arrivals = generate_arrivals(
        config.scenario, pool=workload_pool, random_modes=scheduler is None
    )
    injectors = _attach_injectors(config, fleet, scheduler)
    if injectors:
        _attach_health(fleet, injectors[0].plan, scheduler)
    return _fleet_replay(
        config,
        scheduler,
        fleet,
        arrivals,
        start_index=0,
        injectors=injectors,
        checkpoint_path=checkpoint_path,
        checkpoint_every_s=checkpoint_every_s,
    )


def _fleet_replay(
    config: FleetScenarioConfig,
    scheduler: FleetScheduler | None,
    fleet: ClusterFleet,
    arrivals: list[Arrival],
    start_index: int = 0,
    injectors=None,
    checkpoint_path=None,
    checkpoint_every_s: float | None = None,
) -> ClusterFleet:
    """Drive ``arrivals[start_index:]`` through the fleet (resumable)."""
    scenario = config.scenario
    try:
        with obs.tracer().span(
            "fleet_scenario",
            seed=scenario.seed,
            n_nodes=fleet.n_nodes,
            duration_s=scenario.duration_s,
            arrivals=len(arrivals),
            regime=fleet.pool.config.regime.value if fleet.pool else "none",
            scheduler=getattr(scheduler, "name", None)
            or (scheduler.__class__.__name__ if scheduler is not None else "round-robin"),
        ) if obs.enabled() else obs.NULL_SPAN:
            last_checkpoint_s = fleet.now
            for index in range(start_index, len(arrivals)):
                arrival = arrivals[index]
                gap = arrival.time - fleet.now
                if gap > 0:
                    fleet.run_for(gap)
                if (
                    checkpoint_path is not None
                    and checkpoint_every_s is not None
                    and fleet.now - last_checkpoint_s >= checkpoint_every_s
                ):
                    save_fleet_checkpoint(
                        checkpoint_path,
                        config=config,
                        fleet=fleet,
                        arrivals_done=index,
                        injectors=injectors,
                        policy=scheduler,
                    )
                    last_checkpoint_s = fleet.now
                if fleet.journal is not None:
                    # Journey hop 1: the arrival enters the fleet queue
                    # (no node yet — placement picks one next).
                    fleet.journal.hop(
                        arrival.profile.name, fleet.now, "queued", fleet.now
                    )
                if scheduler is not None:
                    try:
                        decision = scheduler(arrival.profile, fleet)
                    except CapacityError:
                        continue  # fits nowhere in the fleet: dropped
                    try:
                        fleet.deploy(
                            arrival.profile,
                            decision,
                            duration_s=arrival.duration_s,
                            decided_s=fleet.now,
                        )
                    except RemoteUnavailableError:
                        fleet.engines[decision.node_index].queue_remote(
                            arrival.profile,
                            duration_s=arrival.duration_s,
                            decided_s=fleet.now,
                        )
                    except CapacityError:
                        continue
                    # Deployed or parked: either way the arrival is now
                    # the fleet's responsibility (conservation ledger).
                    fleet.note_submitted()
                else:
                    node = index % fleet.n_nodes
                    mode = arrival.mode if arrival.mode is not None else MemoryMode.LOCAL
                    if _place_on_node(fleet, node, arrival, mode) or (
                        _place_on_node(fleet, node, arrival, mode.other)
                    ):
                        fleet.note_submitted()

            remaining = scenario.duration_s - fleet.now
            if remaining > 0:
                fleet.run_for(remaining)
            if scenario.drain:
                fleet.run_until_idle()
    finally:
        if injectors:
            for injector in injectors:
                injector.detach()
    return fleet


# -- checkpointing -------------------------------------------------------------
def _pool_config_to_dict(pool: RemotePoolConfig | None) -> dict | None:
    if pool is None:
        return None
    return {
        "capacity_gb": pool.capacity_gb,
        "aggregate_bw_gbps": pool.aggregate_bw_gbps,
        "regime": pool.regime.value,
    }


def _pool_config_from_dict(data: dict | None) -> RemotePoolConfig | None:
    if data is None:
        return None
    return RemotePoolConfig(
        capacity_gb=data["capacity_gb"],
        aggregate_bw_gbps=data["aggregate_bw_gbps"],
        regime=data["regime"],
    )


def save_fleet_checkpoint(
    path,
    *,
    config: FleetScenarioConfig,
    fleet: ClusterFleet,
    arrivals_done: int,
    injectors=None,
    policy=None,
) -> Path:
    """Atomically write a fleet resume point (all nodes + fleet clock)."""
    from repro.faults.checkpoint import _engine_to_dict, _scenario_to_dict
    from repro.obs.fsio import atomic_write_text

    policy_state = None
    if policy is not None and hasattr(policy, "state_dict"):
        policy_state = policy.state_dict()
    payload = {
        "version": FLEET_CHECKPOINT_VERSION,
        "scenario": _scenario_to_dict(config.scenario),
        "n_nodes": config.n_nodes,
        "pool": _pool_config_to_dict(config.pool),
        "arrivals_done": arrivals_done,
        "now": fleet.now,
        "pool_throttled_ticks": fleet.pool_throttled_ticks,
        "submitted": fleet.submitted,
        "health": fleet.health.state_dict() if fleet.health is not None else None,
        "engines": [_engine_to_dict(engine) for engine in fleet.engines],
        "injectors": (
            [injector.state_dict() for injector in injectors]
            if injectors
            else None
        ),
        "policy": policy_state,
    }
    return atomic_write_text(path, json.dumps(payload) + "\n")


def load_fleet_checkpoint(path) -> dict:
    """Read and structurally validate a fleet checkpoint file."""
    from repro.faults.errors import CheckpointError

    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no fleet checkpoint at {path}")
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise CheckpointError(f"corrupt fleet checkpoint {path}: {error}") from None
    if not isinstance(data, dict) or data.get("version") != FLEET_CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported fleet checkpoint version {data.get('version')!r} "
            f"(expected {FLEET_CHECKPOINT_VERSION})"
        )
    missing = {"scenario", "n_nodes", "arrivals_done", "engines"} - set(data)
    if missing:
        raise CheckpointError(f"fleet checkpoint missing fields {sorted(missing)}")
    return data


def resume_fleet_scenario(
    path,
    scheduler: FleetScheduler | None = None,
    workload_pool: Sequence[WorkloadProfile] | None = None,
    testbed_config: TestbedConfig | None = None,
    checkpoint_path=None,
    checkpoint_every_s: float | None = None,
) -> ClusterFleet:
    """Resume a fleet replay; the completed run is bit-identical.

    The fleet skeleton (per-node testbed configs, pool wiring, fits
    hooks) is rebuilt from the checkpointed config exactly as
    :func:`run_fleet_scenario` would, then each node's engine state is
    restored in place — so counter-noise RNGs, retry queues and traces
    resume mid-stream.
    """
    from repro.cluster.scenario import default_pool
    from repro.faults.checkpoint import (
        _engine_from_dict,
        _scenario_from_dict,
    )

    data = load_fleet_checkpoint(path)
    scenario = _scenario_from_dict(data["scenario"])
    config = FleetScenarioConfig(
        scenario=scenario,
        n_nodes=data["n_nodes"],
        pool=_pool_config_from_dict(data.get("pool")),
    )
    pool_profiles = (
        list(workload_pool) if workload_pool is not None else default_pool()
    )
    profiles = {p.name: p for p in pool_profiles}
    base = testbed_config if testbed_config is not None else TestbedConfig(
        seed=scenario.seed
    )
    fleet = ClusterFleet(
        n_nodes=config.n_nodes, testbed_config=base, pool=config.pool
    )
    for index, saved in enumerate(data["engines"]):
        # The skeleton engine's testbed config already carries the
        # per-node seed and pool-derived remote ceiling; adoption
        # re-applies the fleet wiring (fits hook, node label, journey).
        engine = _engine_from_dict(
            saved, fleet.engines[index].testbed.config, profiles
        )
        fleet.adopt_engine(index, engine)
    fleet._now = data["now"]
    fleet.pool_throttled_ticks = data.get("pool_throttled_ticks", 0)
    fleet.submitted = int(data.get("submitted", 0))

    injectors = None
    if data.get("injectors"):
        from repro.faults.injector import FaultInjector
        from repro.faults.plan import FaultPlan

        predictor = _fleet_predictor(scheduler)
        injectors = []
        for index, saved in enumerate(data["injectors"]):
            injector = FaultInjector(
                FaultPlan.from_dict(saved["plan"]),
                scenario_seed=saved["scenario_seed"],
            )
            injector.attach(
                fleet.engines[index],
                predictor=predictor if index == 0 else None,
            )
            injector.load_state_dict(saved)
            injectors.append(injector)

    if injectors:
        manager = _attach_health(fleet, injectors[0].plan, scheduler)
        if manager is not None and data.get("health") is not None:
            manager.load_state_dict(data["health"], profiles)

    if (
        scheduler is not None
        and data.get("policy") is not None
        and hasattr(scheduler, "load_state_dict")
    ):
        scheduler.load_state_dict(data["policy"])

    arrivals = generate_arrivals(
        scenario, pool=workload_pool, random_modes=scheduler is None
    )
    return _fleet_replay(
        config,
        scheduler,
        fleet,
        arrivals,
        start_index=data["arrivals_done"],
        injectors=injectors,
        checkpoint_path=checkpoint_path,
        checkpoint_every_s=checkpoint_every_s,
    )
