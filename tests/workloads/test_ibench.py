import pytest

from repro.workloads import IBENCH, IBENCH_KINDS, MemoryMode, WorkloadKind, ibench_profile


class TestPool:
    def test_four_kinds(self):
        """The paper uses cpu, l2, l3 and memBw trashers."""
        assert set(IBENCH_KINDS) == {"cpu", "l2", "l3", "memBw"}
        assert set(IBENCH) == set(IBENCH_KINDS)

    def test_all_interference_kind(self):
        assert all(p.kind is WorkloadKind.INTERFERENCE for p in IBENCH.values())

    def test_trashers_are_insensitive(self):
        """Open-loop trashers run at fixed intensity regardless of pressure."""
        for profile in IBENCH.values():
            s = profile.sensitivity
            assert s.cpu == s.l2 == s.llc == s.membw == s.link == 0.0

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError, match="available"):
            ibench_profile("l4")


class TestSingleResourceTargeting:
    def test_cpu_trasher_only_consumes_cpu(self):
        demand = ibench_profile("cpu").demand(MemoryMode.LOCAL)
        assert demand.cpu_threads == 4.0
        assert demand.llc_mb == 0.0
        assert demand.local_bw_gbps == 0.0

    def test_sixteen_cpu_trashers_oversubscribe_the_node(self):
        profile = ibench_profile("cpu")
        assert 16 * profile.cpu_threads >= 64

    def test_l2_trasher_targets_l2(self):
        demand = ibench_profile("l2").demand(MemoryMode.LOCAL)
        assert demand.l2_mb > 0
        assert demand.llc_mb == 0.0

    def test_l3_trasher_targets_llc(self):
        profile = ibench_profile("l3")
        assert profile.llc_mb > 0
        # 16 instances must oversubscribe the 20 MB LLC (R6 worst case).
        assert 16 * profile.llc_mb > 20.0

    def test_membw_calibration_straddles_the_knee(self):
        """Fig. 2: 4 instances below saturation, 8 beyond it."""
        profile = ibench_profile("memBw")
        capacity = 2.5
        assert 4 * profile.remote_bw_gbps < capacity
        assert 8 * profile.remote_bw_gbps > capacity

    def test_membw_local_pressure_meaningful(self):
        profile = ibench_profile("memBw")
        # 16 instances approach but do not saturate 120 Gbps local DRAM.
        assert 0.5 < 16 * profile.mem_bw_gbps / 120.0 < 1.0
