"""Scheduling policies (§V-C and the §VI-B baselines).

The Adrias policy decides between local and remote memory from the
Predictor's performance estimates:

* best-effort: ``local if t̂_local < β · t̂_remote else remote`` where β
  is the slack parameter (maximum performance loss margin);
* latency-critical: ``remote if p̂99_remote <= QoS else local``.

Baselines: Random, Round-Robin, All-Local and All-Remote.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from repro import obs
from repro.cluster.engine import ClusterEngine
from repro.faults.breaker import CircuitBreaker
from repro.faults.errors import CorruptPrediction, InferenceFault
from repro.models.predictor import Predictor
from repro.obs.perf import accounting as perf_accounting
from repro.workloads.base import MemoryMode, WorkloadKind, WorkloadProfile

__all__ = [
    "Policy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "AllLocalPolicy",
    "AllRemotePolicy",
    "StaticThresholdPolicy",
    "InterferenceThresholdPolicy",
    "AdriasPolicy",
]


class Policy(Protocol):
    """A scheduling policy decides the memory mode of each arrival."""

    name: str

    def decide(self, profile: WorkloadProfile, engine: ClusterEngine) -> MemoryMode:
        ...  # pragma: no cover - protocol signature

    def __call__(self, profile: WorkloadProfile, engine: ClusterEngine) -> MemoryMode:
        ...  # pragma: no cover - protocol signature


class _BasePolicy:
    name = "base"

    #: Optional admission safety hook (:class:`repro.serve.SafetyMonitor`
    #: or anything with ``review_mode(policy, profile, engine, mode)``).
    #: When set, every decision flows through it after :meth:`decide` and
    #: may be downgraded before the placement is observed/audited.  The
    #: ``None`` default keeps the disabled path a single attribute test.
    safety = None

    def decide(self, profile: WorkloadProfile, engine: ClusterEngine) -> MemoryMode:
        raise NotImplementedError

    def __call__(self, profile: WorkloadProfile, engine: ClusterEngine) -> MemoryMode:
        acct = perf_accounting()
        if acct is not None:
            t0 = acct.clock()
            mode = self.decide(profile, engine)
            acct.lap("policy.decide", t0)
        else:
            mode = self.decide(profile, engine)
        if self.safety is not None:
            mode = self.safety.review_mode(self, profile, engine, mode)
        if obs.enabled():
            self._observe(profile, engine, mode)
        return mode

    # -- observability -----------------------------------------------------
    def _audit_detail(self) -> dict:
        """Extra audit fields for the decision just made (consumed once).

        Prediction-driven policies stash their per-mode estimates and
        margins here from :meth:`decide`; the default is empty.
        """
        return {}

    def _observe(
        self, profile: WorkloadProfile, engine: ClusterEngine, mode: MemoryMode
    ) -> None:
        node = getattr(engine, "node_label", None) or "n0"
        obs.metrics().counter(
            "orchestrator_decisions_total",
            "Placement decisions by policy, chosen mode and workload kind",
            labels=("policy", "mode", "kind", "node"),
        ).labels(
            policy=self.name,
            mode=mode.value,
            kind=profile.kind.value,
            node=node,
        ).inc()
        live = obs.live_session()
        if live is not None:
            live.note_decision(
                self.name, mode.value, profile.kind.value, node=node
            )
        if profile.kind is WorkloadKind.INTERFERENCE:
            return  # the paper's policies only govern BE/LC placement
        obs.audit().record(
            engine=engine,
            policy=self.name,
            app_name=profile.name,
            kind=profile.kind.value,
            chosen_mode=mode.value,
            **self._audit_detail(),
        )


class RandomPolicy(_BasePolicy):
    """Coin-flip placement."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def decide(self, profile: WorkloadProfile, engine: ClusterEngine) -> MemoryMode:
        return MemoryMode.REMOTE if self._rng.random() < 0.5 else MemoryMode.LOCAL

    def state_dict(self) -> dict:
        return {"rng_state": self._rng.bit_generator.state}

    def load_state_dict(self, data: dict) -> None:
        self._rng.bit_generator.state = data["rng_state"]


class RoundRobinPolicy(_BasePolicy):
    """Alternate strictly between the two pools."""

    name = "round-robin"

    def __init__(self) -> None:
        self._last = MemoryMode.REMOTE

    def decide(self, profile: WorkloadProfile, engine: ClusterEngine) -> MemoryMode:
        self._last = self._last.other
        return self._last

    def state_dict(self) -> dict:
        return {"last": self._last.value}

    def load_state_dict(self, data: dict) -> None:
        self._last = MemoryMode(data["last"])


class AllLocalPolicy(_BasePolicy):
    """Conventional scheduling: everything in local DRAM."""

    name = "all-local"

    def decide(self, profile: WorkloadProfile, engine: ClusterEngine) -> MemoryMode:
        return MemoryMode.LOCAL


class AllRemotePolicy(_BasePolicy):
    """Stress baseline: everything on disaggregated memory."""

    name = "all-remote"

    def decide(self, profile: WorkloadProfile, engine: ClusterEngine) -> MemoryMode:
        return MemoryMode.REMOTE


class StaticThresholdPolicy(_BasePolicy):
    """Interference-*blind* oracle-profile heuristic.

    Offloads an application iff its *isolated* remote/local ratio is
    below ``threshold`` — i.e. a hand-tuned rule with perfect knowledge
    of the Fig. 3 characterization but no awareness of the current
    system state.  Comparing it against Adrias isolates what the
    interference-aware prediction pipeline buys beyond static profiling:
    the static rule keeps offloading mild applications even when the
    channel is already saturated.
    """

    def __init__(self, threshold: float = 1.3) -> None:
        if threshold < 1.0:
            raise ValueError("threshold must be >= 1 (an isolated ratio)")
        self.threshold = threshold
        self.name = f"static(t={threshold:g})"

    def decide(self, profile: WorkloadProfile, engine: ClusterEngine) -> MemoryMode:
        if profile.kind is WorkloadKind.INTERFERENCE:
            return MemoryMode.LOCAL
        self._detail = {
            "margin": self.threshold - profile.remote_slowdown,
            "reason": "static-threshold",
        }
        if profile.remote_slowdown <= self.threshold:
            return MemoryMode.REMOTE
        return MemoryMode.LOCAL

    def _audit_detail(self) -> dict:
        return self.__dict__.pop("_detail", {})


class InterferenceThresholdPolicy(_BasePolicy):
    """Interference-*aware* but prediction-free heuristic.

    Reads the *measured* channel state instead of a forecast: offload
    only while the link's current utilization leaves headroom.  This is
    the first rung of the AdriasPolicy's degradation ladder — when the
    prediction pipeline is unavailable, the orchestrator keeps reacting
    to live interference rather than going interference-blind.
    """

    def __init__(self, max_link_utilization: float = 0.7) -> None:
        if not 0 < max_link_utilization <= 1:
            raise ValueError("max_link_utilization must be in (0, 1]")
        self.max_link_utilization = max_link_utilization
        self.name = f"interference(u<{max_link_utilization:g})"

    def decide(self, profile: WorkloadProfile, engine: ClusterEngine) -> MemoryMode:
        if profile.kind is WorkloadKind.INTERFERENCE:
            return MemoryMode.LOCAL
        utilization = engine.current_pressure().link.utilization
        self._detail = {
            "margin": self.max_link_utilization - utilization,
            "reason": "interference-threshold",
        }
        if utilization < self.max_link_utilization:
            return MemoryMode.REMOTE
        return MemoryMode.LOCAL

    def _audit_detail(self) -> dict:
        return self.__dict__.pop("_detail", {})


class AdriasPolicy(_BasePolicy):
    """Prediction-driven interference-aware placement (§V-C).

    Parameters
    ----------
    predictor:
        Trained :class:`repro.models.Predictor`.
    beta:
        BE slack in (0, 1]: the fraction of remote performance that
        local performance must beat for the application to stay local.
        β = 1 keeps everything local (modulo prediction error); lower
        values offload progressively more.
    qos_p99_ms:
        QoS constraint per LC application name (99th percentile, ms).
        Applications without an entry use ``default_qos_ms``.
    decision_deadline_s:
        Per-decision inference budget.  Injected (or real) inference
        latency beyond it surfaces as a timeout, which counts against
        the circuit breaker like any other predictor failure.
    failure_threshold / cooldown_s:
        Circuit-breaker tuning: the circuit opens after
        ``failure_threshold`` *consecutive* predictor failures (timeouts
        or non-finite estimates) and half-opens for a probe after
        ``cooldown_s`` simulated seconds.
    fallback:
        Degradation ladder consulted (in order) whenever the predictor
        is unavailable — circuit open, or the current call failed.  The
        default is the paper-motivated chain *interference-threshold
        heuristic → static all-local*; all-local is also the terminal
        answer when every rung fails.
    """

    def __init__(
        self,
        predictor: Predictor,
        beta: float = 0.8,
        qos_p99_ms: dict[str, float] | None = None,
        default_qos_ms: float = float("inf"),
        decision_deadline_s: float = 1.0,
        failure_threshold: int = 3,
        cooldown_s: float = 120.0,
        fallback: Sequence[Policy] | None = None,
    ) -> None:
        if not 0 < beta <= 1:
            raise ValueError("beta must be in (0, 1]")
        if default_qos_ms <= 0:
            raise ValueError("default_qos_ms must be positive")
        if decision_deadline_s <= 0:
            raise ValueError("decision_deadline_s must be positive")
        self.predictor = predictor
        self.beta = beta
        self.qos_p99_ms = dict(qos_p99_ms) if qos_p99_ms else {}
        self.default_qos_ms = default_qos_ms
        self.decision_deadline_s = decision_deadline_s
        self.name = f"adrias(b={beta:g})"
        self.breaker = CircuitBreaker(
            failure_threshold=failure_threshold,
            cooldown_s=cooldown_s,
            name=self.name,
        )
        self.fallback: tuple[Policy, ...] = (
            tuple(fallback)
            if fallback is not None
            else (InterferenceThresholdPolicy(), AllLocalPolicy())
        )
        #: Names whose signatures this policy captured (checkpoint state).
        self._captured: set[str] = set()
        #: Decisions answered by the fallback ladder (obs-independent).
        self.degraded_decisions = 0

    def _history(self, engine: ClusterEngine) -> np.ndarray:
        return engine.trace.window(
            engine.now, self.predictor.config.history_s
        )

    def decide(self, profile: WorkloadProfile, engine: ClusterEngine) -> MemoryMode:
        # Interference trashers carry no performance metric; the paper's
        # policy only concerns BE/LC applications.  Keep them local so
        # they do not pollute the link on their own.
        if profile.kind is WorkloadKind.INTERFERENCE:
            return MemoryMode.LOCAL
        # Attribute breaker transitions to the node whose decision drives
        # them (fleet runs share one policy — and breaker — across nodes).
        self.breaker.node = getattr(engine, "node_label", None)
        if not self.predictor.has_signature(profile):
            # First encounter: schedule on remote and capture (§V-C).
            self.predictor.signatures.capture(profile)
            self._captured.add(profile.name)
            self._detail = {"reason": "signature-capture"}
            return MemoryMode.REMOTE
        if not self.breaker.allow(engine.now):
            return self._degraded_decide(profile, engine, "circuit-open")
        try:
            estimates = self._predict(profile, engine)
        except InferenceFault as fault:
            self.breaker.record_failure(engine.now)
            return self._degraded_decide(
                profile, engine, type(fault).__name__
            )
        self.breaker.record_success(engine.now)
        predicted = {mode.value: float(v) for mode, v in estimates.items()}
        if profile.kind is WorkloadKind.BEST_EFFORT:
            # Slack > 0 ⇒ local beats β-discounted remote ⇒ stay local.
            slack = (
                self.beta * estimates[MemoryMode.REMOTE]
                - estimates[MemoryMode.LOCAL]
            )
            self._detail = {
                "predicted": predicted,
                "margin": slack,
                "beta": self.beta,
                "reason": "beta-slack",
            }
            if estimates[MemoryMode.LOCAL] < self.beta * estimates[MemoryMode.REMOTE]:
                return MemoryMode.LOCAL
            return MemoryMode.REMOTE
        qos = self.qos_p99_ms.get(profile.name, self.default_qos_ms)
        # Slack > 0 ⇒ predicted remote p99 fits within the QoS budget.
        self._detail = {
            "predicted": predicted,
            "margin": qos - estimates[MemoryMode.REMOTE],
            "qos_ms": qos,
            "reason": "qos",
        }
        if estimates[MemoryMode.REMOTE] <= qos:
            return MemoryMode.REMOTE
        return MemoryMode.LOCAL

    # -- degradation ---------------------------------------------------------
    def _predict(
        self, profile: WorkloadProfile, engine: ClusterEngine
    ) -> dict[MemoryMode, float]:
        """One guarded inference; raises :class:`InferenceFault` on failure."""
        # Keep the predictor's per-tick Ŝ memo fresh: the engine tick
        # hook invalidates it whenever simulated time advances, so all
        # candidates evaluated within one tick share a single
        # system-state forward.  attach() is idempotent.
        self.predictor.attach(engine)
        history = self._history(engine)
        try:
            estimates = self.predictor.predict_both_modes(
                profile, history, deadline_s=self.decision_deadline_s
            )
        except TypeError:
            # Predictors without deadline support (stubs, older models)
            # still work; they just cannot observe inference timeouts.
            estimates = self.predictor.predict_both_modes(profile, history)
        if not all(np.isfinite(v) for v in estimates.values()):
            raise CorruptPrediction(
                f"non-finite estimates for {profile.name}: "
                f"{ {m.value: v for m, v in estimates.items()} }"
            )
        return estimates

    def _degraded_decide(
        self, profile: WorkloadProfile, engine: ClusterEngine, cause: str
    ) -> MemoryMode:
        """Walk the fallback ladder; all-local is the terminal answer."""
        for stage in self.fallback:
            try:
                mode = stage.decide(profile, engine)
            except Exception:
                continue  # this rung is unavailable too; keep degrading
            detail = (
                stage._audit_detail() if hasattr(stage, "_audit_detail") else {}
            )
            self._note_degraded(stage.name)
            self._detail = {
                **detail,
                "reason": f"fallback:{stage.name}",
                "cause": cause,
                "circuit": self.breaker.state.value,
            }
            return mode
        self._note_degraded("static-local")
        self._detail = {
            "reason": "fallback:static-local",
            "cause": cause,
            "circuit": self.breaker.state.value,
        }
        return MemoryMode.LOCAL

    def _note_degraded(self, stage: str) -> None:
        self.degraded_decisions += 1
        if obs.enabled():
            obs.metrics().counter(
                "policy_degraded_decisions_total",
                "Decisions answered by the fallback chain",
                labels=("policy", "stage"),
            ).labels(policy=self.name, stage=stage).inc()

    # -- checkpointing -------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "breaker": self.breaker.state_dict(),
            "captured": sorted(self._captured),
        }

    def load_state_dict(self, data: dict) -> None:
        self.breaker.load_state_dict(data["breaker"])
        # Signatures captured before the checkpoint: re-capture any the
        # current predictor is missing (capture is deterministic — an
        # isolated run on a fresh engine — so the values are identical).
        for name in data.get("captured", []):
            self._captured.add(name)

    def restore_signatures(self, pool: Sequence[WorkloadProfile]) -> None:
        """Re-capture checkpointed signatures missing from the predictor."""
        by_name = {p.name: p for p in pool}
        for name in sorted(self._captured):
            if name in by_name and not self.predictor.has_signature(by_name[name]):
                self.predictor.signatures.capture(by_name[name])

    def _audit_detail(self) -> dict:
        return self.__dict__.pop("_detail", {})
