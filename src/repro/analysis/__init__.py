"""repro.analysis — characterization and correlation analyses (§IV).

Drivers for the link-saturation sweep (Fig. 2), isolated local/remote
comparison (Figs. 3-4), interference heatmap (Fig. 5) and the
system/workload metric affinity study (Fig. 6), plus distribution and
table-formatting helpers shared by the benchmark harness.
"""

from repro.analysis.characterization import (
    SaturationPoint,
    interference_heatmap,
    interference_slowdown,
    isolation_comparison,
    lc_client_sweep,
    link_saturation_sweep,
)
from repro.analysis.correlation import (
    CorrelationResult,
    metric_performance_correlation,
)
from repro.analysis.plotting import ascii_scatter, ascii_timeseries
from repro.analysis.reporting import format_kv, format_table
from repro.analysis.stats import DistributionSummary, relative_change, summarize

__all__ = [
    "CorrelationResult",
    "DistributionSummary",
    "SaturationPoint",
    "ascii_scatter",
    "ascii_timeseries",
    "format_kv",
    "format_table",
    "interference_heatmap",
    "interference_slowdown",
    "isolation_comparison",
    "lc_client_sweep",
    "link_saturation_sweep",
    "metric_performance_correlation",
    "relative_change",
    "summarize",
]
