"""Training loop utilities: Trainer, EarlyStopping and History."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import obs
from repro.nn.clipping import clip_grad_norm
from repro.nn.data import DataLoader
from repro.nn.losses import Loss
from repro.nn.module import Module
from repro.nn.optim import Optimizer
from repro.nn.schedulers import Scheduler

__all__ = ["History", "EarlyStopping", "Trainer"]


@dataclass
class History:
    """Per-epoch loss curves collected during a fit."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.train_loss)

    @property
    def best_val_loss(self) -> float:
        return min(self.val_loss) if self.val_loss else math.inf


class EarlyStopping:
    """Stop when validation loss fails to improve for ``patience`` epochs."""

    def __init__(self, patience: int = 10, min_delta: float = 0.0) -> None:
        if patience < 1:
            raise ValueError("patience must be >= 1")
        if min_delta < 0:
            raise ValueError("min_delta must be non-negative")
        self.patience = patience
        self.min_delta = min_delta
        self.best = math.inf
        self.bad_epochs = 0
        self.best_state: dict[str, np.ndarray] | None = None

    def update(self, val_loss: float, model: Module) -> bool:
        """Record the epoch result; return True when training should stop."""
        if val_loss < self.best - self.min_delta:
            self.best = val_loss
            self.bad_epochs = 0
            self.best_state = model.state_dict()
            return False
        self.bad_epochs += 1
        return self.bad_epochs >= self.patience

    def restore_best(self, model: Module) -> None:
        if self.best_state is not None:
            model.load_state_dict(self.best_state)


class Trainer:
    """Generic mini-batch trainer over the explicit forward/backward API.

    ``forward_fn``/``backward_fn`` hooks let multi-input models (the
    Adrias performance model takes S, k, mode and Ŝ) plug into the same
    loop: by default the last array in each batch is the target and the
    rest are inputs passed positionally.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        loss: Loss,
        scheduler: Scheduler | None = None,
        grad_clip: float | None = 5.0,
        forward_fn: Callable | None = None,
        name: str = "model",
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.loss = loss
        self.scheduler = scheduler
        self.grad_clip = grad_clip
        self.forward_fn = forward_fn
        #: Label used for observability (metrics/spans) of this fit.
        self.name = name

    def _forward(self, inputs: tuple[np.ndarray, ...]) -> np.ndarray:
        if self.forward_fn is not None:
            return self.forward_fn(self.model, *inputs)
        return self.model.forward(*inputs)

    def train_epoch(self, loader: DataLoader) -> float:
        self.model.train()
        total = 0.0
        batches = 0
        for batch in loader:
            *inputs, target = batch
            self.optimizer.zero_grad()
            pred = self._forward(tuple(inputs))
            loss_value = self.loss.forward(pred, target)
            if not math.isfinite(loss_value):
                raise FloatingPointError(
                    f"non-finite training loss: {loss_value}"
                )
            self.model.backward(self.loss.backward())
            if self.grad_clip is not None:
                clip_grad_norm(self.model.parameters(), self.grad_clip)
            self.optimizer.step()
            total += loss_value
            batches += 1
        if batches == 0:
            raise ValueError("empty data loader")
        return total / batches

    def evaluate(self, loader: DataLoader) -> float:
        self.model.eval()
        total = 0.0
        batches = 0
        for batch in loader:
            *inputs, target = batch
            pred = self._forward(tuple(inputs))
            total += self.loss.forward(pred, target)
            batches += 1
        if batches == 0:
            raise ValueError("empty data loader")
        return total / batches

    def fit(
        self,
        train_loader: DataLoader,
        val_loader: DataLoader | None = None,
        epochs: int = 50,
        early_stopping: EarlyStopping | None = None,
        verbose: bool = False,
    ) -> History:
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        history = History()
        with obs.tracer().span("nn.fit", model=self.name, epochs=epochs) as fit_span:
            for epoch in range(epochs):
                epoch_start = obs.wall_time()
                with obs.tracer().span(
                    "nn.epoch", model=self.name, epoch=epoch
                ) as epoch_span:
                    train_loss = self.train_epoch(train_loader)
                    history.train_loss.append(train_loss)
                    val_loss = None
                    if val_loader is not None:
                        val_loss = self.evaluate(val_loader)
                        history.val_loss.append(val_loss)
                    epoch_span.set(train_loss=train_loss, val_loss=val_loss)
                self._observe_epoch(epoch_start, train_loss, val_loss)
                if self.scheduler is not None:
                    self.scheduler.step(
                        val_loss if val_loss is not None else train_loss
                    )
                if verbose:  # pragma: no cover - logging only
                    msg = f"epoch {epoch + 1}/{epochs} train={train_loss:.5f}"
                    if val_loss is not None:
                        msg += f" val={val_loss:.5f}"
                    print(msg)
                if early_stopping is not None and val_loss is not None:
                    if early_stopping.update(val_loss, self.model):
                        break
            fit_span.set(epochs_run=history.epochs)
        if early_stopping is not None:
            early_stopping.restore_best(self.model)
        return history

    def _observe_epoch(
        self, epoch_start: float, train_loss: float, val_loss: float | None
    ) -> None:
        if not obs.enabled():
            return
        metrics = obs.metrics()
        metrics.counter(
            "nn_epochs_total", "Training epochs completed", labels=("model",)
        ).labels(model=self.name).inc()
        metrics.histogram(
            "nn_epoch_seconds",
            "Wall-clock duration of one training epoch",
            labels=("model",),
        ).labels(model=self.name).observe(obs.wall_time() - epoch_start)
        metrics.gauge(
            "nn_train_loss", "Latest training loss", labels=("model",)
        ).labels(model=self.name).set(train_loss)
        if val_loss is not None:
            metrics.gauge(
                "nn_val_loss", "Latest validation loss", labels=("model",)
            ).labels(model=self.name).set(val_loss)
