"""Performance-event catalog monitored by the Watcher (§V-A).

The Watcher gathers cache- and memory-related counters of the local
system plus channel metrics of the ThymesisFlow FPGAs.  This module is
the single source of truth for event metadata; the ordering matches
:data:`repro.hardware.counters.METRIC_NAMES` and Table I.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.counters import METRIC_NAMES

__all__ = ["EventSpec", "EVENTS", "event_spec", "event_index"]


@dataclass(frozen=True)
class EventSpec:
    """Metadata for one monitored performance event."""

    name: str
    symbol: str       # symbol used in the paper, e.g. "LLC_mis"
    unit: str
    description: str
    source: str       # "cpu" (perf counters) or "fpga" (ThymesisFlow)


EVENTS: dict[str, EventSpec] = {
    "llc_loads": EventSpec(
        name="llc_loads",
        symbol="LLC_ld",
        unit="events/s",
        description="Last-level cache loads on the borrower node",
        source="cpu",
    ),
    "llc_misses": EventSpec(
        name="llc_misses",
        symbol="LLC_mis",
        unit="events/s",
        description="Last-level cache misses on the borrower node",
        source="cpu",
    ),
    "mem_loads": EventSpec(
        name="mem_loads",
        symbol="MEM_ld",
        unit="events/s",
        description="Local DRAM memory loads (includes reflected remote traffic)",
        source="cpu",
    ),
    "mem_stores": EventSpec(
        name="mem_stores",
        symbol="MEM_st",
        unit="events/s",
        description="Local DRAM memory stores",
        source="cpu",
    ),
    "rmt_tx_flits": EventSpec(
        name="rmt_tx_flits",
        symbol="RMT_tx",
        unit="flits/s",
        description="32 B flits transmitted on the ThymesisFlow channel",
        source="fpga",
    ),
    "rmt_rx_flits": EventSpec(
        name="rmt_rx_flits",
        symbol="RMT_rx",
        unit="flits/s",
        description="32 B flits received on the ThymesisFlow channel",
        source="fpga",
    ),
    "link_latency": EventSpec(
        name="link_latency",
        symbol="RMT_lat",
        unit="cycles",
        description="Average latency of the ThymesisFlow communication channel",
        source="fpga",
    ),
}

if tuple(EVENTS) != METRIC_NAMES:  # pragma: no cover - import-time invariant
    raise RuntimeError("event catalog out of sync with METRIC_NAMES")


def event_spec(name: str) -> EventSpec:
    try:
        return EVENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown event {name!r}; available: {list(EVENTS)}"
        ) from None


def event_index(name: str) -> int:
    """Column index of the event in counter matrices."""
    event_spec(name)
    return METRIC_NAMES.index(name)
