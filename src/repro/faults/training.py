"""Trainer-side fault injection: NaN gradients, checkpoint-write
failures and retrain timeouts.

:class:`TrainingChaos` is the trainer's counterpart to
:class:`~repro.faults.injector.PredictorChaos`: one shim binds one
:class:`~repro.faults.plan.FaultPlan` to one ``Trainer.fit`` (and to the
gated retrain loop around it).  The same declarative, seeded plan
machinery applies — only the clock differs.  Engine-side windows run on
simulated seconds; trainer windows interpret ``start_s``/``duration_s``
as

* **epoch indices** for ``nan_grad`` and ``ckpt_write_fail`` — a window
  ``start_s=3, duration_s=2`` covers epochs 3 and 4 of the fit;
* **retrain-attempt indices** for ``retrain_timeout`` — attempt 0 is
  the first retrain the shim observes.

All randomness flows from one RNG derived from ``(plan.seed, seed)``
and is only consulted while a window is active, so a plan with no
trainer windows leaves a fit bit-identical to an uninjected one.

``nan_grad`` fires at most once per covered epoch (on its first batch):
the poisoned optimizer step drives the parameters non-finite, which the
Trainer's divergence guard then has to detect and roll back — injecting
every batch would only re-trigger the same recovery.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.faults.plan import FaultPlan, FaultSpec
from repro.nn.resilience import CheckpointWriteError

__all__ = ["TrainingChaos"]


class TrainingChaos:
    """Fault shim a Trainer (and the retrain gate) consults per hook.

    Wire it up via ``Trainer(..., chaos=...)`` and
    ``CheckpointManager(..., chaos=...)``; the gated retrain path calls
    :meth:`retrain_budget_s` / :meth:`note_retrain` itself.
    """

    def __init__(self, plan: FaultPlan, seed: int = 0) -> None:
        self.plan = plan
        self.seed = seed
        self.rng = np.random.default_rng([plan.seed, seed])
        #: Counts for run summaries: {effect name: value}.
        self.injected = {
            "nan_grad_epochs": 0,
            "checkpoint_write_failures": 0,
            "retrain_timeouts": 0,
        }
        self._last_nan_epoch: int | None = None
        self._retrains = 0

    # -- hooks consulted by the trainer --------------------------------------
    def corrupt_gradients(self, epoch: int, params) -> None:
        """Poison every gradient with NaN while a ``nan_grad`` window
        covers ``epoch`` (once per epoch; replays after a rollback run
        clean so recovery can make progress)."""
        spec = self._active("nan_grad", float(epoch))
        if spec is None or self._last_nan_epoch == epoch:
            return
        self._last_nan_epoch = epoch
        if self.rng.random() >= float(spec.param("probability", 1.0)):
            return
        for param in params:
            param.grad[...] = np.nan
        self.injected["nan_grad_epochs"] += 1
        self._count("trainer_injected_nan_grads_total")

    def checkpoint_write(self, epoch_next: int) -> None:
        """Raise :class:`CheckpointWriteError` while a ``ckpt_write_fail``
        window covers the epoch boundary being saved."""
        spec = self._active("ckpt_write_fail", float(epoch_next))
        if spec is None:
            return
        if self.rng.random() >= float(spec.param("probability", 1.0)):
            return
        self.injected["checkpoint_write_failures"] += 1
        self._count("trainer_injected_ckpt_failures_total")
        raise CheckpointWriteError(
            f"injected checkpoint-write failure at epoch boundary {epoch_next}"
        )

    # -- hooks consulted by the retrain gate ---------------------------------
    def retrain_budget_s(self) -> float | None:
        """Injected wall-clock budget for the current retrain attempt,
        or ``None`` when no ``retrain_timeout`` window covers it."""
        spec = self._active("retrain_timeout", float(self._retrains))
        return float(spec.param("timeout_s")) if spec is not None else None

    def note_retrain(self, timed_out: bool = False) -> None:
        """Advance the retrain-attempt clock (call once per attempt)."""
        self._retrains += 1
        if timed_out:
            self.injected["retrain_timeouts"] += 1
            self._count("trainer_injected_retrain_timeouts_total")

    # -- internals -----------------------------------------------------------
    def _active(self, kind: str, now: float) -> FaultSpec | None:
        return self.plan.active((kind,), now)

    def _count(self, name: str) -> None:
        if obs.enabled():
            obs.metrics().counter(
                name, f"Injected trainer fault effects ({name})",
            ).inc()
