import numpy as np
import pytest

from repro.nn import Parameter, clip_grad_norm, clip_grad_value


class TestClipNorm:
    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(2))
        p.accumulate(np.array([0.3, 0.4]))  # norm 0.5
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(0.5)
        assert np.allclose(p.grad, [0.3, 0.4])

    def test_rescales_to_max_norm(self):
        p = Parameter(np.zeros(2))
        p.accumulate(np.array([3.0, 4.0]))  # norm 5
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)
        assert p.grad[0] / p.grad[1] == pytest.approx(0.75)  # direction kept

    def test_global_norm_across_params(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        a.accumulate(np.array([3.0]))
        b.accumulate(np.array([4.0]))
        clip_grad_norm([a, b], max_norm=2.5)
        total = np.sqrt(a.grad[0] ** 2 + b.grad[0] ** 2)
        assert total == pytest.approx(2.5)

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([Parameter(np.zeros(1))], max_norm=0.0)


class TestClipValue:
    def test_clamps_elementwise(self):
        p = Parameter(np.zeros(3))
        p.accumulate(np.array([-5.0, 0.5, 5.0]))
        clip_grad_value([p], clip_value=1.0)
        assert np.allclose(p.grad, [-1.0, 0.5, 1.0])

    def test_invalid_clip_value(self):
        with pytest.raises(ValueError):
            clip_grad_value([Parameter(np.zeros(1))], clip_value=-1.0)
