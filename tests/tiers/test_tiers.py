"""Tests for the heterogeneous memory-tier extension (§VII)."""

import pytest

from repro.hardware.config import LinkConfig
from repro.tiers import (
    GreedyTierPolicy,
    LOCAL_DRAM,
    MultiTierTestbed,
    REMOTE_DRAM,
    REMOTE_NVME,
    TierAssignment,
    TierSpec,
    default_tiers,
    place_sequentially,
    tier_slowdown,
)
from repro.workloads import spark_profile


@pytest.fixture
def testbed():
    return MultiTierTestbed(default_tiers())


class TestTierSpec:
    def test_defaults(self):
        assert LOCAL_DRAM.is_local
        assert not REMOTE_DRAM.is_local
        assert REMOTE_NVME.capacity_gb > REMOTE_DRAM.capacity_gb
        assert REMOTE_NVME.link.capacity_gbps < REMOTE_DRAM.link.capacity_gbps
        assert REMOTE_NVME.medium_slowdown > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TierSpec(name="x", capacity_gb=0.0)
        with pytest.raises(ValueError):
            TierSpec(name="x", capacity_gb=1.0, medium_slowdown=0.5)


class TestTestbedConstruction:
    def test_requires_exactly_one_local_tier(self):
        with pytest.raises(ValueError):
            MultiTierTestbed([REMOTE_DRAM, REMOTE_NVME])
        with pytest.raises(ValueError):
            MultiTierTestbed([LOCAL_DRAM,
                              TierSpec(name="local2", capacity_gb=10.0)])

    def test_unique_names(self):
        with pytest.raises(ValueError):
            MultiTierTestbed([LOCAL_DRAM, LOCAL_DRAM])

    def test_unknown_tier_rejected(self, testbed):
        with pytest.raises(KeyError):
            testbed.tier("optane")


class TestResolve:
    def test_per_tier_links_independent(self, testbed):
        lr = spark_profile("lr")
        assignments = [TierAssignment(lr, "remote-dram")] * 3
        pressure = testbed.resolve(assignments)
        assert pressure.links["remote-dram"].offered_gbps > 0
        assert pressure.links["remote-nvme"].offered_gbps == 0

    def test_compute_contention_shared_across_tiers(self, testbed):
        apps = [
            TierAssignment(spark_profile("lr"), tier)
            for tier in ("local-dram", "remote-dram", "remote-nvme")
        ]
        pressure = testbed.resolve(apps)
        assert pressure.cpu_utilization == pytest.approx(3 * 8 / 64)

    def test_capacity_enforced(self, testbed):
        small = MultiTierTestbed(
            [LOCAL_DRAM, TierSpec(name="tiny", capacity_gb=10.0,
                                  link=LinkConfig())]
        )
        with pytest.raises(MemoryError):
            small.resolve([
                TierAssignment(spark_profile("lr"), "tiny"),
                TierAssignment(spark_profile("lr"), "tiny"),
            ])

    def test_fits(self, testbed):
        candidate = TierAssignment(spark_profile("lr"), "remote-dram")
        assert testbed.fits([], candidate)


class TestTierSlowdown:
    def test_local_tier_matches_two_pool_model(self, testbed):
        profile = spark_profile("gmm")
        pressure = testbed.resolve([TierAssignment(profile, "local-dram")])
        assert tier_slowdown(profile, pressure, LOCAL_DRAM) == pytest.approx(
            1.0, abs=0.01
        )

    def test_nvme_slower_than_remote_dram(self, testbed):
        profile = spark_profile("gmm")
        pressure = testbed.resolve([])
        dram = tier_slowdown(profile, pressure, REMOTE_DRAM)
        nvme = tier_slowdown(profile, pressure, REMOTE_NVME)
        assert nvme > dram >= 1.0
        assert nvme == pytest.approx(dram * REMOTE_NVME.medium_slowdown, rel=0.05)

    def test_saturated_tier_punished(self, testbed):
        profile = spark_profile("lr")
        hot = testbed.resolve(
            [TierAssignment(spark_profile("lr"), "remote-nvme")] * 4
        )
        cold = testbed.resolve([])
        assert tier_slowdown(profile, hot, REMOTE_NVME) > tier_slowdown(
            profile, cold, REMOTE_NVME
        )


class TestGreedyPolicy:
    def test_sensitive_app_stays_local(self, testbed):
        policy = GreedyTierPolicy(testbed, beta=0.8)
        decision = policy.decide(spark_profile("nweight"), [])
        assert decision.tier == "local-dram"

    def test_mild_app_lands_on_a_disaggregated_tier(self, testbed):
        policy = GreedyTierPolicy(testbed, beta=0.8)
        decision = policy.decide(spark_profile("gmm"), [])
        assert decision.tier in ("remote-nvme", "remote-dram")

    def test_beta_one_prefers_best_tier(self, testbed):
        policy = GreedyTierPolicy(testbed, beta=1.0)
        decision = policy.decide(spark_profile("gmm"), [])
        best = min(decision.estimates, key=decision.estimates.get)
        assert decision.tier == best

    def test_estimates_cover_all_tiers(self, testbed):
        policy = GreedyTierPolicy(testbed, beta=0.8)
        decision = policy.decide(spark_profile("scan"), [])
        assert set(decision.estimates) == {"local-dram", "remote-dram",
                                           "remote-nvme"}

    def test_invalid_beta(self, testbed):
        with pytest.raises(ValueError):
            GreedyTierPolicy(testbed, beta=0.0)

    def test_invalid_preference(self, testbed):
        with pytest.raises(ValueError):
            GreedyTierPolicy(testbed, preference=["optane"])

    def test_sequential_placement_spreads_tiers(self, testbed):
        policy = GreedyTierPolicy(testbed, beta=0.8)
        profiles = [spark_profile(n) for n in
                    ("gmm", "pca", "nweight", "lr", "scan", "gbt")]
        assignments = place_sequentially(policy, profiles)
        tiers_used = {a.tier for a in assignments}
        assert "local-dram" in tiers_used       # sensitive apps
        assert tiers_used - {"local-dram"}      # mild apps offloaded

    def test_capacity_fallback(self):
        tiny = MultiTierTestbed([
            TierSpec(name="local-dram", capacity_gb=1200.0),
            TierSpec(name="small-remote", capacity_gb=10.0, link=LinkConfig()),
        ])
        policy = GreedyTierPolicy(tiny, beta=0.8)
        profiles = [spark_profile("gmm")] * 3  # 8 GB each
        assignments = place_sequentially(policy, profiles)
        tiers = [a.tier for a in assignments]
        assert tiers.count("small-remote") == 1
        assert tiers.count("local-dram") == 2
