"""Experiment Fig. 15 — generalization on unseen applications.

Part (a): application-granular leave-one-out validation — train the
universal BE model with one benchmark entirely excluded, then test on
that benchmark.  Expected shape: adequate generalization for some
benchmarks, failure for others (paper: gbt 0.72 vs lr 0.30), showing
that signature collection and retraining matter for unknown
applications.

Part (b): accuracy vs the number of samples of the held-out benchmark
included in training — the few-shot retraining curve.  The paper runs
this on gbt; in the simulated corpus gbt already generalizes
near-perfectly with zero samples, so the default target here is lr —
the benchmark whose leave-one-out accuracy actually collapses and can
therefore demonstrate recovery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import format_table
from repro.experiments.common import (
    ExperimentScale,
    get_be_dataset,
    get_predictor,
    scale_from_env,
)
from repro.models.dataset import PerformanceDataset
from repro.models.performance import PerformancePredictor
from repro.nn.metrics import r2_score

__all__ = ["Fig15Result", "run", "run_sample_scaling"]

#: Default leave-one-out subset: the paper's highlighted extremes plus a
#: spread of remote-sensitivity levels.
DEFAULT_BENCHMARKS: tuple[str, ...] = ("gbt", "lr", "gmm", "sort", "kmeans", "terasort")


def _train_and_score(
    train: PerformanceDataset,
    test: PerformanceDataset,
    system_state,
    epochs: int,
    seed: int,
) -> float:
    if len(test) < 3:
        return float("nan")
    predictor = PerformancePredictor(seed=seed)
    train_future = system_state.predict(train.state)
    test_future = system_state.predict(test.state)
    predictor.fit(
        train.state, train.signature, train.mode, train_future, train.targets,
        epochs=epochs,
    )
    predicted = predictor.predict(test.state, test.signature, test.mode, test_future)
    return r2_score(test.targets, predicted)


@dataclass(frozen=True)
class Fig15Result:
    loo_r2: dict[str, float]                      # part (a)
    sample_scaling: dict[int, float]              # part (b)
    scaling_benchmark: str

    def format(self) -> str:
        parts = [
            format_table(
                ["excluded benchmark", "R2 on held-out"],
                [(k, f"{v:.3f}") for k, v in self.loo_r2.items()],
                title="Fig. 15a — leave-one-out generalization",
            ),
            format_table(
                ["#samples included", "R2"],
                [(k, f"{v:.3f}") for k, v in sorted(self.sample_scaling.items())],
                title=f"Fig. 15b — accuracy vs samples ({self.scaling_benchmark})",
            ),
        ]
        return "\n\n".join(parts)


def run(
    scale: ExperimentScale | None = None,
    benchmarks: tuple[str, ...] = DEFAULT_BENCHMARKS,
    scaling_benchmark: str = "lr",
    sample_counts: tuple[int, ...] = (0, 5, 10, 20),
    seed: int = 17,
) -> Fig15Result:
    scale = scale if scale is not None else scale_from_env()
    dataset = get_be_dataset(scale)
    system_state = get_predictor(scale).system_state

    loo: dict[str, float] = {}
    for name in benchmarks:
        train = dataset.exclude_benchmark(name)
        test = dataset.only_benchmark(name)
        loo[name] = _train_and_score(
            train, test, system_state, scale.epochs_performance, seed
        )

    scaling = run_sample_scaling(
        dataset, system_state, scaling_benchmark, sample_counts,
        scale.epochs_performance, seed,
    )
    return Fig15Result(
        loo_r2=loo, sample_scaling=scaling, scaling_benchmark=scaling_benchmark
    )


def run_sample_scaling(
    dataset: PerformanceDataset,
    system_state,
    benchmark: str,
    sample_counts: tuple[int, ...],
    epochs: int,
    seed: int,
) -> dict[int, float]:
    """Part (b): include n samples of the held-out benchmark in training."""
    rng = np.random.default_rng(seed)
    others = dataset.exclude_benchmark(benchmark)
    target = dataset.only_benchmark(benchmark)
    if len(target) < 6:
        raise ValueError(
            f"benchmark {benchmark!r} has only {len(target)} samples; need >= 6"
        )
    # Clamp the sweep to what the dataset can support while keeping at
    # least 3 held-out test samples (small training corpora — e.g. the
    # quick scale — simply sweep a shorter range).
    usable = [c for c in sorted(set(sample_counts)) if c <= len(target) - 3]
    if 0 not in usable:
        usable.insert(0, 0)
    order = rng.permutation(len(target))
    held_out_start = max(usable)
    scaling: dict[int, float] = {}
    for count in usable:
        include_idx = order[:count]
        test_idx = order[held_out_start:]
        train = _concat(others, target.subset(include_idx)) if count else others
        test = target.subset(test_idx)
        scaling[count] = _train_and_score(train, test, system_state, epochs, seed)
    return scaling


def _concat(a: PerformanceDataset, b: PerformanceDataset) -> PerformanceDataset:
    return PerformanceDataset(
        state=np.concatenate([a.state, b.state]),
        signature=np.concatenate([a.signature, b.signature]),
        mode=np.concatenate([a.mode, b.mode]),
        future_120=np.concatenate([a.future_120, b.future_120]),
        future_exec=np.concatenate([a.future_exec, b.future_exec]),
        targets=np.concatenate([a.targets, b.targets]),
        names=a.names + b.names,
    )
