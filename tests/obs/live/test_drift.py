"""Drift detection: EWMA, Page–Hinkley and the multi-stream detector."""

import pytest

from repro import obs
from repro.obs.live.drift import DriftDetector, Ewma, PageHinkley


class TestEwma:
    def test_first_sample_is_exact(self):
        ewma = Ewma(alpha=0.2)
        assert ewma.update(3.0) == 3.0

    def test_moves_toward_new_values(self):
        ewma = Ewma(alpha=0.5)
        ewma.update(0.0)
        assert ewma.update(4.0) == 2.0
        assert ewma.update(4.0) == 3.0

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            Ewma(alpha=0.0)
        with pytest.raises(ValueError):
            Ewma(alpha=1.5)


class TestPageHinkley:
    def test_constant_stream_never_alarms(self):
        ph = PageHinkley(delta=0.1, threshold=8.0, min_samples=4)
        assert not any(ph.update(5.0) for _ in range(500))

    def test_mean_jump_alarms(self):
        ph = PageHinkley(delta=0.05, threshold=2.0, min_samples=4)
        for _ in range(50):
            assert not ph.update(0.1)
        fired_after = None
        for i in range(20):
            if ph.update(2.0):
                fired_after = i + 1
                break
        assert fired_after is not None
        assert fired_after <= 5  # detection within a handful of samples

    def test_min_samples_gates_early_alarms(self):
        ph = PageHinkley(delta=0.0, threshold=0.001, min_samples=10)
        # Huge immediate excursion, but fewer than min_samples seen.
        assert not ph.update(0.0)
        assert not ph.update(100.0)

    def test_score_normalizes_by_threshold(self):
        ph = PageHinkley(delta=0.0, threshold=4.0, min_samples=1)
        ph.update(0.0)
        ph.update(2.0)
        assert ph.score == pytest.approx(ph.statistic / 4.0)

    def test_reset_clears_state(self):
        ph = PageHinkley(min_samples=1)
        for _ in range(5):
            ph.update(3.0)
        ph.reset()
        assert ph.n == 0
        assert ph.statistic == 0.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PageHinkley(delta=-0.1)
        with pytest.raises(ValueError):
            PageHinkley(threshold=0.0)
        with pytest.raises(ValueError):
            PageHinkley(min_samples=0)


class TestDriftDetector:
    def _drive_alarm(self, detector, stream="be"):
        for i in range(30):
            detector.observe(stream, 0.05, sim_time=float(i), clock=float(i))
        alarm = None
        for i in range(30, 60):
            alarm = detector.observe(
                stream, 3.0, sim_time=float(i), clock=float(i)
            )
            if alarm is not None:
                break
        return alarm

    def test_alarm_fires_on_error_jump(self):
        detector = DriftDetector(threshold=4.0, min_samples=4)
        alarm = self._drive_alarm(detector)
        assert alarm is not None
        assert alarm.stream == "be"
        assert alarm.score >= 1.0
        assert detector.alarms == [alarm]

    def test_on_alarm_callback_invoked(self):
        seen = []
        detector = DriftDetector(
            threshold=4.0, min_samples=4, on_alarm=seen.append
        )
        alarm = self._drive_alarm(detector)
        assert seen == [alarm]

    def test_statistic_resets_after_alarm(self):
        detector = DriftDetector(threshold=4.0, min_samples=4)
        self._drive_alarm(detector)
        assert detector.score("be") == 0.0

    def test_streams_are_independent(self):
        detector = DriftDetector(threshold=4.0, min_samples=4)
        self._drive_alarm(detector, stream="lc")
        assert detector.score("be") == 0.0
        assert detector.snapshot()["lc"]["alarms"] == 1
        assert "be" not in detector.snapshot()

    def test_metrics_exported_when_enabled(self):
        obs.enable()
        detector = DriftDetector(threshold=4.0, min_samples=4)
        self._drive_alarm(detector)
        registry = obs.metrics()
        counter = registry.get("predictor_drift_alarms_total")
        assert counter is not None
        assert counter.labels(stream="be").snapshot() == 1.0
        assert registry.get("predictor_drift_score") is not None
        assert registry.get("predictor_drift_ewma_abs_error") is not None

    def test_alarm_to_dict_round_trips(self):
        detector = DriftDetector(threshold=4.0, min_samples=4)
        alarm = self._drive_alarm(detector)
        as_dict = alarm.to_dict()
        assert as_dict["stream"] == "be"
        assert as_dict["n"] == alarm.n_observations
