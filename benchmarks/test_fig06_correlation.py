"""Bench Fig. 6 — metric/performance correlation (remark R8).

Paper shape: a clear correlation exists between low-level metrics and
application performance, and during-execution (runtime) metrics
correlate more strongly than the 120 s-prior (historical) ones.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig06_correlation


def test_fig06_correlation(benchmark, report, scale, strict):
    result = run_once(benchmark, fig06_correlation.run, scale=scale)
    report(result.format())

    for cls in (result.be, result.lc):
        # A correlation exists (|r| clearly above noise for some metric).
        assert max(abs(v) for v in cls.during.values()) > 0.3
        assert cls.n_samples >= 10

    # R8 — runtime beats historical for the cache/link metrics (BE).
    be = result.be
    stronger = [
        name for name in be.prior
        if abs(be.during[name]) > abs(be.prior[name])
    ]
    assert len(stronger) >= 4
    if strict:
        assert be.mean_abs_during() > be.mean_abs_prior()
