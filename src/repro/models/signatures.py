"""Application signatures (§V-B2).

The signature k is "a unique identifier per application, that contains
the sequences of monitored metrics during application's execution in
isolation on remote memory mode".  When an unknown application arrives,
Adrias schedules it on remote memory once, captures its counters and
stores them as the signature (§V-C).

:class:`SignatureLibrary` implements exactly that: capture-by-running
on a fresh engine, fixed-length storage, and lookup.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.engine import ClusterEngine
from repro.hardware.config import TestbedConfig
from repro.hardware.testbed import Testbed
from repro.models.features import FeatureConfig, subsample
from repro.workloads.base import MemoryMode, WorkloadProfile

__all__ = ["SignatureLibrary"]


class SignatureLibrary:
    """Store of per-application metric signatures."""

    def __init__(
        self,
        feature_config: FeatureConfig | None = None,
        testbed_config: TestbedConfig | None = None,
    ) -> None:
        self.config = feature_config if feature_config is not None else FeatureConfig()
        self.testbed_config = testbed_config
        self._signatures: dict[str, np.ndarray] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._signatures

    def __len__(self) -> int:
        return len(self._signatures)

    def names(self) -> list[str]:
        return sorted(self._signatures)

    def add(self, name: str, rows: np.ndarray) -> None:
        """Store a raw 1 Hz counter sequence as the signature for ``name``.

        The sequence is cropped/zero-padded to ``signature_s`` seconds
        and sub-sampled to the feature period, giving every signature an
        identical ``(signature_steps, n_metrics)`` shape.
        """
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[1] != self.config.n_metrics:
            raise ValueError(
                f"signature must be (T, {self.config.n_metrics}), got {rows.shape}"
            )
        raw_steps = int(round(self.config.signature_s / self.config.dt))
        if rows.shape[0] >= raw_steps:
            rows = rows[:raw_steps]
        else:
            pad = np.zeros((raw_steps - rows.shape[0], rows.shape[1]))
            rows = np.vstack([rows, pad])
        self._signatures[name] = subsample(
            rows, self.config.sample_period_s, self.config.dt
        )

    def get(self, name: str) -> np.ndarray:
        try:
            return self._signatures[name]
        except KeyError:
            raise KeyError(
                f"no signature for {name!r}; captured: {self.names()}"
            ) from None

    def drop(self, name: str) -> None:
        """Remove a signature (used by leave-one-out validation)."""
        self._signatures.pop(name, None)

    def capture(self, profile: WorkloadProfile) -> np.ndarray:
        """Run ``profile`` alone on remote memory and record its signature."""
        testbed = Testbed(self.testbed_config) if self.testbed_config else Testbed()
        engine = ClusterEngine(testbed=testbed, dt=self.config.dt)
        engine.deploy(profile, MemoryMode.REMOTE)
        engine.run_until_idle()
        self.add(profile.name, engine.trace.metrics)
        return self.get(profile.name)

    def capture_all(self, profiles: list[WorkloadProfile]) -> None:
        for profile in profiles:
            self.capture(profile)
