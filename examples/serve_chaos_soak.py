#!/usr/bin/env python
"""Client-driven chaos soak: the daemon serving through a node crash.

Boots ``repro serve`` as a real subprocess with a fault plan that
crashes ``n1`` early in the run and keeps it down, then fires a batch of
long-lived deployments at it through :class:`repro.serve.DaemonClient`.
Asserts the failure-domain claims end to end:

* every request is accounted for (admitted + vetoed + rejected adds up)
  even while a node is dying under live traffic;
* the detector actually fires: the health op reports ``n1`` DOWN and a
  nonzero failover tally — work drained off the crashed node was
  replayed onto the survivor, none of it lost;
* a client-requested drain still shuts down cleanly (exit 0) and the
  crash-window checkpoint warm-restores bit-identically.

Usage::

    python examples/serve_chaos_soak.py                  # 30 deployments
    python examples/serve_chaos_soak.py --deployments 10 # quicker
    python examples/serve_chaos_soak.py --out out/chaos  # artifact dir

Exit status 0 iff every assertion holds.  The ``--out`` directory keeps
the observability dump (stream + metrics) for upload from CI.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.faults.plan import FaultPlan, FaultSpec  # noqa: E402
from repro.serve.client import DaemonClient  # noqa: E402
from repro.serve.daemon import OrchestratorDaemon  # noqa: E402

ENV = {**os.environ, "PYTHONPATH": str(REPO / "src")}
APPS = ("pagerank", "lda", "redis", "kmeans")

#: The crash opens after the first deployments land and never closes:
#: the run ends with n1 still dark, so the drain checkpoint straddles
#: the window.
CRASH_ONSET_SIM_S = 30.0


def spawn(out: Path, plan_path: Path, ckpt: Path):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--faults", str(plan_path), "--checkpoint", str(ckpt),
         "--obs-out", str(out / "obs"), "--obs-stream"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=ENV, cwd=REPO,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        print(f"  [serve] {line.rstrip()}")
        if line.startswith("serve: listening on "):
            return process, int(line.rsplit(":", 1)[1])
    process.kill()
    raise RuntimeError("daemon never reported a listening port")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--deployments", type=int, default=30)
    parser.add_argument("--out", type=Path, default=Path("out/chaos-soak"))
    args = parser.parse_args()
    out = args.out
    out.mkdir(parents=True, exist_ok=True)

    plan_path = FaultPlan(
        faults=(
            FaultSpec("node_crash", CRASH_ONSET_SIM_S, 10_000_000.0,
                      {"node": "n1"}),
        ),
        seed=7,
        description="chaos plan: n1 dies mid-serve and stays down",
    ).to_file(out / "faults.json")
    ckpt = out / "daemon.ckpt"

    process, port = spawn(out, plan_path, ckpt)
    statuses: dict[str, int] = {}
    try:
        client = DaemonClient(host="127.0.0.1", port=port, retries=10,
                              jitter_seed=7)
        for index in range(args.deployments):
            # Long durations keep work in flight through the crash onset.
            response = client.deploy(
                APPS[index % len(APPS)], duration=600.0
            )
            status = response.get("status", "error")
            statuses[status] = statuses.get(status, 0) + 1
        # Let the detector pass the crash onset before reading health.
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline:
            health = client.health()
            if health.get("node_health", {}).get("n1") == "down":
                break
            time.sleep(0.1)
        client.request({"op": "drain", "reason": "chaos soak complete"})
    finally:
        if process.poll() is None and not process.stdout.closed:
            for line in process.stdout:
                print(f"  [serve] {line.rstrip()}")
        code = process.wait(timeout=30.0)

    print(f"statuses: {statuses}")
    counters = health["counters"]
    print(f"counters: {counters}")
    print(f"node health: {health.get('node_health')}")
    print(f"failovers: {health.get('failovers')}")
    failures = []
    if code != 0:
        failures.append(f"daemon exited {code}, wanted 0")
    accounted = sum(statuses.values())
    if accounted != args.deployments:
        failures.append(
            f"{accounted}/{args.deployments} requests accounted for"
        )
    booked = (
        counters["submitted"] + counters["vetoed"] + counters["rejected"]
    )
    if booked != args.deployments:
        failures.append(
            f"ledger booked {booked} requests, client sent "
            f"{args.deployments} (lost or double-counted work)"
        )
    if health.get("node_health", {}).get("n1") != "down":
        failures.append("detector never marked n1 down")
    drained = sum(health.get("failovers", {}).values())
    if drained < 1:
        failures.append("no deployment was failed over off the dead node")
    if health.get("failover_queue", 0) != 0:
        failures.append(
            f"{health['failover_queue']} failover entries still parked"
        )
    if not ckpt.exists():
        failures.append("no drain checkpoint written")
    else:
        restored = OrchestratorDaemon.restore(ckpt)
        resaved = restored.save(out / "resaved.ckpt")
        if resaved.read_bytes() != ckpt.read_bytes():
            failures.append("warm restore is not bit-identical")
        elif restored.health is None:
            failures.append("restored daemon lost its health manager")
        else:
            print("warm restore: bit-identical through the crash window")
    stream = out / "obs" / "stream.jsonl"
    if not stream.exists():
        failures.append("no observability stream dumped")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"PASS: {counters['submitted']} admitted, {drained} failed over "
        "off n1, clean drain through an open crash window"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
