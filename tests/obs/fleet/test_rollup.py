"""Fleet metric merging and SLO burn rollups (pure snapshot math)."""

import pytest

from repro.obs.fleet.rollup import (
    fleet_burn_rollup,
    fleet_rollup,
    merge_node_series,
)
from repro.obs.metrics import MetricsRegistry


def node_counter_family(registry=None):
    registry = registry if registry is not None else MetricsRegistry()
    counter = registry.counter(
        "engine_ticks_total", "ticks", labels=("node",)
    )
    counter.labels(node="n0").inc(3)
    counter.labels(node="n1").inc(5)
    return registry


class TestMergeNodeSeries:
    def test_counters_sum_across_nodes(self):
        registry = node_counter_family()
        family = registry.snapshot()[0]
        merged = merge_node_series(family)
        assert merged == [{"labels": {}, "value": 8, "nodes": 2}]

    def test_remaining_labels_are_preserved(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "orchestrator_decisions_total", "d", labels=("mode", "node")
        )
        counter.labels(mode="local", node="n0").inc(2)
        counter.labels(mode="local", node="n1").inc(1)
        counter.labels(mode="remote", node="n0").inc(7)
        merged = merge_node_series(registry.snapshot()[0])
        by_mode = {m["labels"]["mode"]: m for m in merged}
        assert by_mode["local"]["value"] == 3
        assert by_mode["local"]["nodes"] == 2
        assert by_mode["remote"]["value"] == 7
        assert by_mode["remote"]["nodes"] == 1

    def test_family_without_node_label_returns_none(self):
        registry = MetricsRegistry()
        registry.counter("plain_total", "p", labels=("app",)).labels(
            app="redis"
        ).inc()
        assert merge_node_series(registry.snapshot()[0]) is None

    def test_histograms_merge_exactly(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "engine_tick_seconds", "t", labels=("node",)
        )
        for value in (0.001, 0.002):
            hist.labels(node="n0").observe(value)
        hist.labels(node="n1").observe(0.5)
        merged = merge_node_series(registry.snapshot()[0])
        assert len(merged) == 1
        value = merged[0]["value"]
        assert value["count"] == 3
        assert value["sum"] == pytest.approx(0.503)
        assert value["min"] == pytest.approx(0.001)
        assert value["max"] == pytest.approx(0.5)
        # Bucket-by-bucket: cumulative counts add because every node's
        # series shares the family's bucket edges.
        per_node = [
            entry["value"]["buckets"]
            for entry in registry.snapshot()[0]["series"]
        ]
        for edge, cumulative in value["buckets"].items():
            assert cumulative == sum(b.get(edge, 0) for b in per_node)


class TestMergeBreakerState:
    def test_circuit_state_gauge_rolls_up_per_policy(self):
        """policy_circuit_state{policy,node} sums to open-breaker count.

        State encoding is 0 = closed, 1 = open, 2 = half-open, so a
        per-policy sum of 0 means "all breakers closed" and anything
        else flags a node mid-recovery — the fleet pager signal.
        """
        registry = MetricsRegistry()
        gauge = registry.gauge(
            "policy_circuit_state", "state", labels=("policy", "node")
        )
        gauge.labels(policy="adrias", node="n0").set(0)
        gauge.labels(policy="adrias", node="n1").set(1)
        gauge.labels(policy="daemon-engine", node="fleet").set(0)
        merged = merge_node_series(registry.snapshot()[0])
        by_policy = {m["labels"]["policy"]: m for m in merged}
        assert by_policy["adrias"]["value"] == 1
        assert by_policy["adrias"]["nodes"] == 2
        assert by_policy["daemon-engine"]["value"] == 0

    def test_circuit_state_included_in_fleet_rollup(self):
        registry = node_counter_family()
        registry.gauge(
            "policy_circuit_state", "state", labels=("policy", "node")
        ).labels(policy="adrias", node="n0").set(2)
        rollup = fleet_rollup(registry.snapshot())
        assert rollup["policy_circuit_state"] == [
            {"labels": {"policy": "adrias"}, "value": 2, "nodes": 1}
        ]


class TestFleetRollup:
    def test_only_node_labeled_families_roll_up(self):
        registry = node_counter_family()
        registry.counter("plain_total", "p", labels=("app",)).labels(
            app="x"
        ).inc()
        rollup = fleet_rollup(registry.snapshot())
        assert "engine_ticks_total" in rollup
        assert "plain_total" not in rollup


def burn_snapshot(burn, violations=0, total=0):
    return {"app": {"burn": burn, "violations": violations, "total": total}}


class TestFleetBurnRollup:
    def test_worst_node_is_the_max_burner(self):
        rollup = fleet_burn_rollup(
            {
                "n0": burn_snapshot({"60": 0.5}, total=10),
                "n1": burn_snapshot({"60": 2.5}, total=10),
            }
        )
        assert rollup["worst"]["60"] == {"burn": 2.5, "node": "n1"}

    def test_weighted_burn_weights_by_completions(self):
        # n0 burns 4.0 over 90 completions, n1 burns 0.0 over 10: the
        # busy node dominates the population-weighted aggregate.
        rollup = fleet_burn_rollup(
            {
                "n0": burn_snapshot({"60": 4.0}, total=90),
                "n1": burn_snapshot({"60": 0.0}, total=10),
            }
        )
        assert rollup["weighted"]["60"] == pytest.approx(3.6)

    def test_idle_node_cannot_dilute_a_burning_one(self):
        rollup = fleet_burn_rollup(
            {
                "n0": burn_snapshot({"60": 4.0}, total=50),
                "idle": burn_snapshot({"60": 0.0}, total=0),
            }
        )
        assert rollup["weighted"]["60"] == pytest.approx(4.0)

    def test_violations_and_totals_sum_fleet_wide(self):
        rollup = fleet_burn_rollup(
            {
                "n0": burn_snapshot({"60": 1.0}, violations=3, total=30),
                "n1": burn_snapshot({"60": 0.0}, violations=1, total=20),
            }
        )
        assert rollup["violations"] == 4
        assert rollup["total"] == 50

    def test_empty_input(self):
        rollup = fleet_burn_rollup({})
        assert rollup == {
            "worst": {}, "weighted": {}, "violations": 0, "total": 0,
        }

    def test_windows_union_across_nodes(self):
        rollup = fleet_burn_rollup(
            {
                "n0": burn_snapshot({"60": 1.0}, total=5),
                "n1": burn_snapshot({"600": 2.0}, total=5),
            }
        )
        assert set(rollup["worst"]) == {"60", "600"}
        assert rollup["worst"]["600"]["node"] == "n1"
