"""Characterization drivers for §IV (Figs. 2-5).

Each function reproduces one characterization experiment on a fresh
simulated testbed and returns plain data structures; the corresponding
``repro.experiments`` modules format them as the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass



from repro.cluster.engine import ClusterEngine
from repro.hardware.config import TestbedConfig
from repro.hardware.counters import PerfCounters
from repro.hardware.testbed import Testbed
from repro.workloads.base import MemoryMode, WorkloadProfile
from repro.workloads.ibench import IBENCH_KINDS, ibench_profile
from repro.workloads.loadgen import LatencySample, TailLatencyModel
from repro.workloads.redis import LCProfile

__all__ = [
    "SaturationPoint",
    "link_saturation_sweep",
    "isolation_comparison",
    "lc_client_sweep",
    "interference_slowdown",
    "interference_heatmap",
]


@dataclass(frozen=True)
class SaturationPoint:
    """One column of Fig. 2: N memBw trashers forced onto remote memory."""

    n_microbenchmarks: int
    offered_gbps: float
    delivered_gbps: float
    latency_cycles: float
    backpressure: float
    counters: PerfCounters


def link_saturation_sweep(
    counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    config: TestbedConfig | None = None,
) -> list[SaturationPoint]:
    """Fig. 2: spawn increasing numbers of memBw trashers on remote memory."""
    if any(c <= 0 for c in counts):
        raise ValueError("microbenchmark counts must be positive")
    testbed = Testbed(config)
    trasher = ibench_profile("memBw")
    points = []
    for count in counts:
        demands = [trasher.demand(MemoryMode.REMOTE) for _ in range(count)]
        pressure = testbed.resolve(demands)
        points.append(
            SaturationPoint(
                n_microbenchmarks=count,
                offered_gbps=pressure.link.offered_gbps,
                delivered_gbps=pressure.link.delivered_gbps,
                latency_cycles=pressure.link.latency_cycles,
                backpressure=pressure.link.backpressure,
                counters=testbed.sample_counters(pressure),
            )
        )
    return points


def isolation_comparison(
    profiles: list[WorkloadProfile],
    config: TestbedConfig | None = None,
) -> dict[str, dict[str, float]]:
    """Fig. 3: isolated local vs remote performance per benchmark.

    Returns ``{name: {"local": perf, "remote": perf, "ratio": r}}``
    where perf is runtime (BE) or p99 (LC).
    """
    engine = ClusterEngine(testbed=Testbed(config))
    results: dict[str, dict[str, float]] = {}
    for profile in profiles:
        local = engine.measure_isolated(profile, MemoryMode.LOCAL)
        remote = engine.measure_isolated(profile, MemoryMode.REMOTE)
        results[profile.name] = {
            "local": local,
            "remote": remote,
            "ratio": remote / local,
        }
    return results


def lc_client_sweep(
    profile: LCProfile,
    client_counts: tuple[int, ...] = (100, 200, 400, 800, 1200),
    config: TestbedConfig | None = None,
) -> dict[str, list[LatencySample]]:
    """Fig. 4: tail latency vs closed-loop clients, local vs remote."""
    testbed = Testbed(config)
    model = TailLatencyModel(profile)
    out: dict[str, list[LatencySample]] = {}
    for mode in (MemoryMode.LOCAL, MemoryMode.REMOTE):
        pressure = testbed.resolve([profile.demand(mode)])
        out[mode.value] = model.client_sweep(pressure, mode, list(client_counts))
    return out


def interference_slowdown(
    profile: WorkloadProfile,
    ibench_kind: str,
    n_trashers: int,
    mode: MemoryMode,
    config: TestbedConfig | None = None,
) -> float:
    """Measured performance of ``profile`` under co-located trashers.

    Trashers share the application's memory mode, exactly as in §IV-C
    ("if the application is deployed on local memory, so are the ibench
    microbenchmarks and vice-versa").
    """
    if n_trashers < 0:
        raise ValueError("n_trashers cannot be negative")
    engine = ClusterEngine(testbed=Testbed(config))
    trasher = ibench_profile(ibench_kind)
    # Long-lived trashers: they outlive the application under test.
    for _ in range(n_trashers):
        engine.deploy(trasher, mode, duration_s=1e7)
    target = engine.deploy(profile, mode)
    while target.running:
        engine.tick()
    return engine.trace.records[-1].performance


def interference_heatmap(
    profile: WorkloadProfile,
    counts: tuple[int, ...] = (1, 2, 4, 8, 16),
    kinds: tuple[str, ...] = IBENCH_KINDS,
    config: TestbedConfig | None = None,
) -> dict[str, dict[int, float]]:
    """Fig. 5: remote/local slowdown ratio per interference scenario.

    Cell value > 1 means the same interference hurts the remote
    deployment more than the local one (the paper's cell density).
    """
    heatmap: dict[str, dict[int, float]] = {}
    for kind in kinds:
        row: dict[int, float] = {}
        for count in counts:
            local = interference_slowdown(
                profile, kind, count, MemoryMode.LOCAL, config
            )
            remote = interference_slowdown(
                profile, kind, count, MemoryMode.REMOTE, config
            )
            row[count] = remote / local
        heatmap[kind] = row
    return heatmap
