"""Element-wise activation layers and their stable functional forms."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module

__all__ = ["ReLU", "LeakyReLU", "Tanh", "Sigmoid", "Identity", "sigmoid", "tanh"]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically-stable logistic function.

    Splitting on the sign avoids overflow in ``exp`` for large-magnitude
    pre-activations, which LSTM gates produce early in training.
    """
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


class ReLU(Module):
    """Rectified linear unit, the non-linearity of Adrias' dense blocks."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad, 0.0)


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        if negative_slope < 0:
            raise ValueError("negative_slope must be >= 0")
        self.negative_slope = negative_slope
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad, self.negative_slope * grad)


class Tanh(Module):
    def __init__(self) -> None:
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = np.tanh(x)
        return self._output

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad * (1.0 - self._output**2)


class Sigmoid(Module):
    def __init__(self) -> None:
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = sigmoid(np.asarray(x, dtype=np.float64))
        return self._output

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad * self._output * (1.0 - self._output)


class Identity(Module):
    """No-op layer; useful as a placeholder in configurable blocks."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad
