"""Fleet-level rollups over node-labeled observability data.

Two families of pure functions:

* **metric merging** — collapse the ``node`` label dimension of a
  metric-family snapshot into fleet-aggregate series.  Counters and
  gauges sum; histograms merge bucket-by-bucket (the buckets of every
  node-labeled series share edges because they come from one
  :class:`~repro.obs.metrics.MetricFamily` declaration), with count,
  sum, min and max combined exactly.  This is how the one fleet
  registry's per-node series roll up into rack totals without a second
  registry.

* **SLO burn rollups** — combine per-node :class:`SloEngine` snapshots
  into the two fleet aggregates the multi-window burn policy needs at
  rack scale: the **worst node** (the node a pager cares about) and the
  **population-weighted** fleet burn (each node weighted by how many LC
  completions it actually served, so an idle node cannot dilute a
  burning one).

Everything here is snapshot-in / plain-dict-out: no registry access, no
RNG, trivially testable.
"""

from __future__ import annotations

__all__ = [
    "merge_node_series",
    "fleet_rollup",
    "fleet_burn_rollup",
]


def _merge_histograms(values: list[dict]) -> dict:
    """Merge histogram snapshots (shared bucket edges) exactly."""
    buckets: dict[str, int] = {}
    for value in values:
        for edge, cumulative in value.get("buckets", {}).items():
            buckets[edge] = buckets.get(edge, 0) + cumulative
    count = sum(v.get("count", 0) for v in values)
    total = sum(v.get("sum", 0.0) for v in values)
    mins = [v["min"] for v in values if v.get("min") is not None]
    maxs = [v["max"] for v in values if v.get("max") is not None]
    return {
        "count": count,
        "sum": total,
        "mean": total / count if count else None,
        "min": min(mins) if mins else None,
        "max": max(maxs) if maxs else None,
        "buckets": buckets,
    }


def merge_node_series(
    family_snapshot: dict, label: str = "node"
) -> list[dict] | None:
    """Collapse ``label`` out of one family snapshot.

    Input is one entry of :meth:`MetricsRegistry.snapshot` (``{name,
    kind, series: [{labels, value}]}``).  Returns aggregate series
    grouped by the remaining labels, or ``None`` when the family does
    not carry ``label`` at all.  Counter/gauge values sum; histogram
    dicts merge via :func:`_merge_histograms`.
    """
    series = family_snapshot.get("series", [])
    if not any(label in s.get("labels", {}) for s in series):
        return None
    kind = family_snapshot.get("kind")
    groups: dict[tuple, list] = {}
    keys: dict[tuple, dict] = {}
    for entry in series:
        labels = {k: v for k, v in entry["labels"].items() if k != label}
        key = tuple(sorted(labels.items()))
        groups.setdefault(key, []).append(entry["value"])
        keys[key] = labels
    merged = []
    for key in sorted(groups):
        values = groups[key]
        if kind == "histogram":
            value = _merge_histograms(values)
        else:
            value = sum(values)
        merged.append({"labels": keys[key], "value": value, "nodes": len(values)})
    return merged


def fleet_rollup(metrics_snapshot: list[dict], label: str = "node") -> dict:
    """Fleet aggregates for every node-labeled family in a snapshot.

    ``metrics_snapshot`` is the ``metrics`` list of ``metrics.json``
    (or :meth:`MetricsRegistry.snapshot`).  Returns ``{family name:
    merged series}`` for the families that carry the node label —
    the offline counterpart of a recording rule.
    """
    out = {}
    for family in metrics_snapshot:
        merged = merge_node_series(family, label=label)
        if merged is not None:
            out[family["name"]] = merged
    return out


def fleet_burn_rollup(node_snapshots: dict[str, dict[str, dict]]) -> dict:
    """Worst-node and population-weighted burn across per-node SLO state.

    ``node_snapshots`` maps node label → :meth:`SloEngine.snapshot`
    output (app → ``{burn: {window: rate}, violations, total, ...}``).
    Returns::

        {
          "worst": {window: {"burn": rate, "node": label}},
          "weighted": {window: rate},
          "violations": int,   # fleet-wide joined LC violations
          "total": int,        # fleet-wide classified LC completions
        }

    The weighted burn weights each node's *max-app* burn by the node's
    classified-completion count, so a node serving 10× the traffic
    moves the fleet number 10× as much — the population-weighted
    multi-window aggregate.
    """
    windows: set[str] = set()
    for snapshot in node_snapshots.values():
        for state in snapshot.values():
            windows.update(state.get("burn", {}))
    worst: dict[str, dict] = {}
    weighted: dict[str, float] = {}
    violations = 0
    total = 0
    for window in sorted(windows, key=float):
        worst_rate, worst_node = 0.0, None
        acc, weight_sum = 0.0, 0
        for node in sorted(node_snapshots):
            snapshot = node_snapshots[node]
            node_burn = 0.0
            node_events = 0
            for state in snapshot.values():
                node_burn = max(
                    node_burn, state.get("burn", {}).get(window, 0.0)
                )
                node_events += state.get("total", 0)
            if node_burn > worst_rate or worst_node is None:
                worst_rate, worst_node = node_burn, node
            acc += node_burn * node_events
            weight_sum += node_events
        worst[window] = {"burn": round(worst_rate, 4), "node": worst_node}
        weighted[window] = round(acc / weight_sum, 4) if weight_sum else 0.0
    for snapshot in node_snapshots.values():
        for state in snapshot.values():
            violations += state.get("violations", 0)
            total += state.get("total", 0)
    return {
        "worst": worst,
        "weighted": weighted,
        "violations": violations,
        "total": total,
    }
