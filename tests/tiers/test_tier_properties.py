"""Property-based invariants of the multi-tier extension."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tiers import (
    GreedyTierPolicy,
    MultiTierTestbed,
    default_tiers,
    place_sequentially,
    tier_slowdown,
)
from repro.workloads import spark_names, spark_profile


TESTBED = MultiTierTestbed(default_tiers())
APP_NAMES = st.sampled_from(spark_names())
BETAS = st.floats(min_value=0.5, max_value=1.0)


class TestTierProperties:
    @given(names=st.lists(APP_NAMES, min_size=1, max_size=6), beta=BETAS)
    @settings(max_examples=25, deadline=None)
    def test_placement_always_fits_and_is_complete(self, names, beta):
        policy = GreedyTierPolicy(TESTBED, beta=beta)
        profiles = [spark_profile(n) for n in names]
        assignments = place_sequentially(policy, profiles)
        assert len(assignments) == len(profiles)
        TESTBED.resolve(assignments)  # must not violate any capacity

    @given(name=APP_NAMES)
    @settings(max_examples=20, deadline=None)
    def test_tier_slowdowns_ordered_by_medium(self, name):
        """In an empty system: local <= remote-dram <= remote-nvme."""
        profile = spark_profile(name)
        pressure = TESTBED.resolve([])
        slowdowns = {
            tier_name: tier_slowdown(profile, pressure, tier)
            for tier_name, tier in TESTBED.tiers.items()
        }
        assert (
            slowdowns["local-dram"]
            <= slowdowns["remote-dram"] + 1e-9
            <= slowdowns["remote-nvme"] + 1e-9
        )

    @given(names=st.lists(APP_NAMES, min_size=1, max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_beta_one_never_worse_than_low_beta(self, names):
        """β=1 picks the best tier per arrival, so its aggregate mean
        slowdown is never worse than an aggressive β=0.6 placement of
        the same stream (greedy arrival order, same contention model)."""
        profiles = [spark_profile(n) for n in names]

        def mean_slowdown(beta):
            assignments = place_sequentially(
                GreedyTierPolicy(TESTBED, beta=beta), profiles
            )
            pressure = TESTBED.resolve(assignments)
            return float(np.mean([
                tier_slowdown(a.profile, pressure, TESTBED.tier(a.tier))
                for a in assignments
            ]))

        assert mean_slowdown(1.0) <= mean_slowdown(0.6) + 0.05
