"""FleetJournal unit behaviour and end-to-end journey completeness."""

import json

from repro import obs
from repro.cluster.fleet import FleetDecision, LeastLoadedPlacement
from repro.cluster.fleet_scenario import FleetScenarioConfig, run_fleet_scenario
from repro.cluster.scenario import ScenarioConfig
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.runtime import active_plan
from repro.hardware.pool import RemotePoolConfig
from repro.obs.fleet.journey import FleetJournal
from repro.orchestrator.policies import InterferenceThresholdPolicy
from repro.workloads.base import MemoryMode

SCENARIO = ScenarioConfig(duration_s=400.0, spawn_interval=(15.0, 30.0), seed=3)


def fleet_config(n_nodes=3):
    return FleetScenarioConfig(
        scenario=SCENARIO, n_nodes=n_nodes, pool=RemotePoolConfig(),
    )


def scheduler():
    return LeastLoadedPlacement(InterferenceThresholdPolicy())


class TestJournal:
    def full_journey(self, journal, app="spark-scan", decided=10.0):
        journal.hop(app, decided, "queued", decided)
        journal.hop(app, decided, "placement", decided, node="n1")
        journal.hop(app, decided, "admission", decided, node="n1")
        journal.hop(app, decided, "finished", decided + 40.0, node="n1")

    def test_hops_stitch_into_one_journey(self):
        journal = FleetJournal()
        self.full_journey(journal)
        assert len(journal) == 1
        journey = journal.journeys[0]
        assert journey.stages() == (
            "queued", "placement", "admission", "finished",
        )
        assert journey.complete()
        assert journey.serving_node == "n1"

    def test_reused_key_is_fifo(self):
        # Two sequential replays can repeat (app, decided_s): the hop
        # must land on the oldest *open* journey, never the closed one.
        journal = FleetJournal()
        self.full_journey(journal)                      # closed
        journal.hop("spark-scan", 10.0, "queued", 10.0)  # reopens the key
        journal.hop("spark-scan", 10.0, "admission", 10.0, node="n0")
        assert len(journal) == 2
        assert journal.journeys[0].complete()
        assert journal.journeys[1].stages() == ("queued", "admission")

    def test_same_tick_same_app_arrivals_split_into_siblings(self):
        # The replay clock advances in whole ticks, so two same-app
        # arrivals can share (app, decided_s).  Their contiguous hop
        # bursts must stitch into two complete sibling journeys, with
        # each finish routed to the journey on its node.
        journal = FleetJournal()
        journal.hop("wordcount", 624.0, "queued", 624.0)
        journal.hop("wordcount", 624.0, "placement", 624.0, node="n4")
        journal.hop("wordcount", 624.0, "admission", 624.0, node="n4")
        journal.hop("wordcount", 624.0, "queued", 624.0)
        journal.hop("wordcount", 624.0, "placement", 624.0, node="n5")
        journal.hop("wordcount", 624.0, "admission", 624.0, node="n5")
        # The n5 sibling finishes first — out of FIFO order.
        journal.hop("wordcount", 624.0, "finished", 675.0, node="n5")
        journal.hop("wordcount", 624.0, "finished", 713.0, node="n4")
        assert len(journal) == 2
        by_node = {j.serving_node: j for j in journal.journeys}
        assert set(by_node) == {"n4", "n5"}
        assert all(j.complete() for j in journal.journeys)
        assert by_node["n5"].hops[-1].sim_time == 675.0
        assert by_node["n4"].hops[-1].sim_time == 713.0

    def test_repeated_placement_attempts_stay_on_one_journey(self):
        # deploy_anywhere records a placement hop per attempted node;
        # outage fallback must not fork sibling journeys.
        journal = FleetJournal()
        journal.hop("a", 0.0, "queued", 0.0)
        journal.hop("a", 0.0, "placement", 0.0, node="n0", mode="remote")
        journal.hop("a", 0.0, "placement", 0.0, node="n1", mode="remote")
        journal.hop("a", 0.0, "admission", 0.0, node="n1")
        journal.hop("a", 0.0, "finished", 9.0, node="n1")
        assert len(journal) == 1
        assert journal.journeys[0].complete()
        assert journal.journeys[0].nodes() == ("n0", "n1")

    def test_abandoned_open_journey_does_not_absorb_new_arrival(self):
        # An earlier replay left a journey open at "queued"; a later
        # same-key arrival's hops must open a fresh sibling, not attach
        # to the stale one.
        journal = FleetJournal()
        journal.hop("a", 5.0, "queued", 5.0)  # abandoned (never placed)
        journal.hop("a", 5.0, "queued", 5.0)
        journal.hop("a", 5.0, "placement", 5.0, node="n0")
        journal.hop("a", 5.0, "admission", 5.0, node="n0")
        journal.hop("a", 5.0, "finished", 20.0, node="n0")
        assert len(journal) == 2
        assert journal.journeys[0].stages() == ("queued",)
        assert journal.journeys[1].complete()

    def test_incomplete_without_admission(self):
        journal = FleetJournal()
        journal.hop("a", 0.0, "placement", 0.0, node="n0")
        journal.hop("a", 0.0, "finished", 5.0, node="n0")
        assert journal.journeys[0].finished
        assert not journal.journeys[0].complete()
        assert journal.incomplete() == [journal.journeys[0]]

    def test_incomplete_on_time_regression(self):
        journal = FleetJournal()
        journal.hop("a", 0.0, "admission", 5.0, node="n0")
        journal.hop("a", 0.0, "finished", 2.0, node="n0")
        assert not journal.journeys[0].complete()

    def test_open_journeys_have_no_terminal_hop(self):
        journal = FleetJournal()
        journal.hop("a", 0.0, "queued", 0.0)
        self.full_journey(journal, app="b")
        open_now = journal.open_journeys()
        assert [j.app_name for j in open_now] == ["a"]

    def test_dropped_closes_a_journey(self):
        journal = FleetJournal()
        journal.hop("a", 0.0, "parked", 0.0, node="n0")
        journal.hop("a", 0.0, "dropped", 9.0, node="n0", attempts=6)
        journey = journal.journeys[0]
        assert journey.closed and not journey.finished
        assert journal.open_journeys() == []

    def test_jsonl_round_trips(self):
        journal = FleetJournal()
        self.full_journey(journal)
        lines = journal.to_jsonl().splitlines()
        assert len(lines) == 1
        row = json.loads(lines[0])
        assert row["app"] == "spark-scan"
        assert row["complete"] is True
        assert row["nodes"] == ["n1"]
        assert [h["stage"] for h in row["hops"]] == [
            "queued", "placement", "admission", "finished",
        ]


class TestChromeTrace:
    def test_nodes_become_threads_and_legs_spans(self):
        journal = FleetJournal()
        journal.hop("a", 0.0, "placement", 0.0, node="n0")
        journal.hop("a", 0.0, "admission", 0.0, node="n1")
        journal.hop("a", 0.0, "finished", 30.0, node="n1")
        trace = journal.to_chrome_trace()
        events = trace["traceEvents"]
        threads = [e for e in events if e["ph"] == "M"]
        assert {e["args"]["name"] for e in threads} == {"n0", "n1"}
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == 2
        # The leg is attributed to the node of the earlier hop.
        tid_of = {e["args"]["name"]: e["tid"] for e in threads}
        hop1, hop2 = spans
        assert hop1["tid"] == tid_of["n0"]
        assert hop2["tid"] == tid_of["n1"]
        # Zero-length legs render as 1 us slivers.
        assert hop1["dur"] == 1.0
        assert hop2["dur"] == 30.0 * 1e6


class TestFleetRunJourneys:
    def test_disabled_run_has_no_journal(self):
        fleet = run_fleet_scenario(fleet_config(), scheduler=scheduler())
        assert fleet.journal is None
        assert all(engine.journey is None for engine in fleet.engines)

    def test_every_finished_deployment_has_a_complete_journey(self):
        with obs.session():
            fleet = run_fleet_scenario(fleet_config(), scheduler=scheduler())
            journal = fleet.journal
            assert journal is not None
            completed = sum(len(e.trace.records) for e in fleet.engines)
            finished = journal.finished()
            assert len(finished) == completed > 0
            assert all(j.complete() for j in finished), [
                j.to_dict() for j in journal.incomplete()
            ]
            # The replay queues every arrival before placing it.
            assert all(j.stages()[0] == "queued" for j in finished)

    def test_outage_journeys_record_park_and_stay_complete(self):
        # Pin every placement to remote on node 0 so the outage has no
        # local fallback to hide behind — arrivals must park and retry.
        class PinnedRemote:
            def __call__(self, profile, fleet):
                return FleetDecision(0, MemoryMode.REMOTE)

        plan = FaultPlan(
            faults=(
                FaultSpec(kind="link_outage", start_s=30.0, duration_s=60.0),
            ),
            seed=21,
        )
        with obs.session():
            with active_plan(plan):
                fleet = run_fleet_scenario(
                    fleet_config(), scheduler=PinnedRemote()
                )
            journal = fleet.journal
            parked = [
                j for j in journal.finished() if "parked" in j.stages()
            ]
            assert parked, "outage never parked a placement"
            assert all(j.complete() for j in parked)

    def test_dump_writes_journey_artifacts(self, tmp_path):
        with obs.session():
            run_fleet_scenario(fleet_config(), scheduler=scheduler())
            paths = obs.dump(tmp_path / "dump")
        for name in obs.JOURNEY_ARTIFACT_NAMES:
            assert name in paths and paths[name].exists(), name
        rows = [
            json.loads(line)
            for line in paths["journeys.jsonl"].read_text().splitlines()
        ]
        assert rows and all("hops" in row for row in rows)
        trace = json.loads(paths["journeys_trace.json"].read_text())
        assert isinstance(trace["traceEvents"], list)

    def test_single_node_dump_omits_journey_artifacts(self, tmp_path):
        from repro.cluster.scenario import run_scenario

        with obs.session():
            run_scenario(ScenarioConfig(duration_s=100.0, seed=6))
            paths = obs.dump(tmp_path / "dump")
        for name in obs.JOURNEY_ARTIFACT_NAMES:
            assert name not in paths
