"""The Predictor component (§V-B): online inference service.

Combines the system-state model and the two performance models (BE and
LC) behind the API the Orchestrator consumes:

* :meth:`Predictor.predict_system_state` — Ŝ from the Watcher's
  trailing window;
* :meth:`Predictor.predict_performance` — estimated execution time (BE)
  or p99 (LC) for a candidate deployment in a given memory mode, using
  the stacked-model pipeline: the system-state prediction Ŝ is
  propagated into the performance model (the {120, Ŝ} configuration
  that Fig. 13b identifies as the best practical approach).

The inference path is the cluster's decision critical path, so it is
built for throughput:

* :meth:`Predictor.predict_both_modes` evaluates local and remote as a
  single N=2 batch through one performance-model forward;
* the sub-sampled window and Ŝ are memoized per distinct history
  window (content-keyed), so a tick with many candidate arrivals runs
  the system-state model once; :meth:`Predictor.attach` registers a
  :class:`~repro.cluster.engine.ClusterEngine` tick hook that
  invalidates the memo whenever simulated time advances.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro import obs
from repro.models.features import FeatureConfig, encode_mode, impute_gaps, subsample
from repro.models.performance import PerformancePredictor
from repro.models.signatures import SignatureLibrary
from repro.models.system_state import SystemStatePredictor
from repro.obs.perf import accounting as perf_accounting
from repro.workloads.base import MemoryMode, WorkloadKind, WorkloadProfile

__all__ = ["Predictor"]


class Predictor:
    """Stacked-LSTM prediction service."""

    def __init__(
        self,
        system_state: SystemStatePredictor,
        be_performance: PerformancePredictor | None = None,
        lc_performance: PerformancePredictor | None = None,
        signatures: SignatureLibrary | None = None,
        feature_config: FeatureConfig | None = None,
    ) -> None:
        self.config = feature_config if feature_config is not None else FeatureConfig()
        self.system_state = system_state
        self.be_performance = be_performance
        self.lc_performance = lc_performance
        self.signatures = signatures if signatures is not None else SignatureLibrary(
            feature_config=self.config
        )
        # Per-tick inference memo: one slot keyed on the raw history
        # window's content, holding the sub-sampled window and (lazily)
        # the Ŝ computed from it.
        self._memo_key: tuple | None = None
        self._memo_window: np.ndarray | None = None
        self._memo_future: np.ndarray | None = None
        #: Inference-path fault hook (``before_inference`` /
        #: ``corrupt_output``), installed by a FaultInjector while a
        #: plan targets the predictor; ``None`` on the healthy path.
        self.chaos = None

    # -- signature management ------------------------------------------------
    def has_signature(self, profile: WorkloadProfile) -> bool:
        return profile.name in self.signatures

    def store_signature(self, name: str, rows: np.ndarray) -> None:
        """Record the counters captured during a first remote run (§V-C)."""
        self.signatures.add(name, rows)

    # -- per-tick memo -------------------------------------------------------
    def attach(self, engine) -> None:
        """Invalidate the inference memo on every tick of ``engine``.

        Idempotent; the AdriasPolicy calls this on each decision so the
        memo can never serve a stale Ŝ after simulated time advances.
        """
        engine.add_tick_hook(self._on_engine_tick)

    def detach(self, engine) -> None:
        """Stop tracking ``engine``; safe to call when not attached."""
        engine.remove_tick_hook(self._on_engine_tick)

    def _on_engine_tick(self, engine) -> None:
        self.invalidate_memo()

    def invalidate_memo(self) -> None:
        """Drop the memoized window/Ŝ (forces fresh forwards)."""
        self._memo_key = None
        self._memo_window = None
        self._memo_future = None

    @staticmethod
    def _window_key(history_raw: np.ndarray) -> tuple:
        digest = hashlib.blake2b(
            np.ascontiguousarray(history_raw).tobytes(), digest_size=16
        ).digest()
        return (history_raw.shape, digest)

    def _window(self, history_raw: np.ndarray) -> np.ndarray:
        """Sub-sampled history window, memoized per distinct raw window.

        NaN gaps (telemetry dropouts/corruption) are forward-filled
        before sub-sampling — the LSTMs require finite inputs.  The memo
        key is taken over the *raw* window, so two identical faulted
        windows still share one fill + forward.
        """
        key = self._window_key(history_raw)
        if key == self._memo_key and self._memo_window is not None:
            self._observe_memo_hit("window")
            return self._memo_window
        acct = perf_accounting()
        t0 = acct.clock() if acct is not None else 0.0
        self._memo_key = key
        filled, n_imputed = impute_gaps(history_raw)
        if n_imputed and obs.enabled():
            obs.metrics().counter(
                "predictor_imputed_values_total",
                "NaN history values forward-filled before inference",
            ).inc(n_imputed)
        self._memo_window = subsample(
            filled, self.config.sample_period_s, self.config.dt
        )
        self._memo_future = None
        if acct is not None:
            acct.lap("predictor.window", t0)
        return self._memo_window

    def _system_state(
        self, history_raw: np.ndarray, label: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """(window, Ŝ) for ``history_raw``, memoized alongside each other.

        ``label`` names the obs counter an *actual* forward is recorded
        under; memo hits increment ``predictor_memo_hits_total`` instead,
        so inference counters always equal true forward-pass counts.
        """
        window = self._window(history_raw)
        if self._memo_future is not None:
            self._observe_memo_hit("system_state")
            return window, self._memo_future
        start = obs.wall_time()
        acct = perf_accounting()
        t0 = acct.clock() if acct is not None else 0.0
        self._memo_future = self.system_state.predict(window)
        if acct is not None:
            acct.lap("predictor.system_state", t0)
        self._observe_inference(label, start)
        live = obs.live_session()
        if live is not None:
            live.note_state_forecast(self._memo_future, self.config.horizon_s)
        return window, self._memo_future

    # -- inference -------------------------------------------------------------
    def predict_system_state(self, history_raw: np.ndarray) -> np.ndarray:
        """Ŝ (mean metrics over the next horizon) from a raw 1 Hz window."""
        history_raw = np.asarray(history_raw, dtype=np.float64)
        return self._system_state(history_raw, label="system_state")[1].copy()

    def predict_performance(
        self,
        profile: WorkloadProfile,
        history_raw: np.ndarray,
        mode: MemoryMode,
        deadline_s: float | None = None,
    ) -> float:
        """Predicted performance of deploying ``profile`` in ``mode`` now.

        Raises :class:`KeyError` when no signature exists — the caller
        (the Orchestrator) must then fall back to the capture-first
        policy of §V-C.  ``deadline_s`` is the caller's decision
        deadline: an installed chaos hook raises
        :class:`~repro.faults.errors.InferenceTimeout` when injected
        inference latency exceeds it.
        """
        model = self._model_for(profile.kind)
        if self.chaos is not None:
            self.chaos.before_inference(profile.kind.value, deadline_s)
        history_raw = np.asarray(history_raw, dtype=np.float64)
        signature = self.signatures.get(profile.name)
        # Ŝ is produced (and observed) before the performance-model
        # timing starts, so its histogram no longer absorbs the nested
        # system-state forward.
        if model.use_future:
            window, future = self._system_state(
                history_raw, label="system_state_nested"
            )
        else:
            window, future = self._window(history_raw), None
        start = obs.wall_time()
        acct = perf_accounting()
        t0 = acct.clock() if acct is not None else 0.0
        # Span creation is gated on obs.enabled() so the disabled hot
        # path allocates nothing (NULL_SPAN is a shared no-op object).
        with obs.tracer().span(
            "predictor.infer", app=profile.name, mode=mode.value
        ) if obs.enabled() else obs.NULL_SPAN:
            estimate = model.predict(
                state=window,
                signature=signature,
                mode=np.array([encode_mode(mode)]),
                future=future,
            )
        if acct is not None:
            acct.lap("predictor.forward", t0)
        self._observe_inference(profile.kind.value, start)
        if self.chaos is not None:
            estimate = float(
                self.chaos.corrupt_output(
                    profile.kind.value, np.asarray(estimate, dtype=np.float64)
                )
            )
        return estimate

    def predict_both_modes(
        self,
        profile: WorkloadProfile,
        history_raw: np.ndarray,
        deadline_s: float | None = None,
    ) -> dict[MemoryMode, float]:
        """Performance estimates for local and remote deployment.

        Both candidate modes are encoded as an N=2 batch and run through
        a single performance-model forward; outputs are numerically
        identical to two sequential :meth:`predict_performance` calls.
        ``deadline_s`` behaves as in :meth:`predict_performance`.
        """
        model = self._model_for(profile.kind)
        if self.chaos is not None:
            self.chaos.before_inference(profile.kind.value, deadline_s)
        history_raw = np.asarray(history_raw, dtype=np.float64)
        signature = self.signatures.get(profile.name)
        modes = (MemoryMode.LOCAL, MemoryMode.REMOTE)
        if model.use_future:
            window, s_hat = self._system_state(
                history_raw, label="system_state_nested"
            )
            future = np.stack([s_hat, s_hat])
        else:
            window, future = self._window(history_raw), None
        start = obs.wall_time()
        acct = perf_accounting()
        t0 = acct.clock() if acct is not None else 0.0
        with obs.tracer().span(
            "predictor.infer_batch", app=profile.name
        ) if obs.enabled() else obs.NULL_SPAN:
            estimates = model.predict(
                state=np.stack([window, window]),
                signature=np.stack([signature, signature]),
                mode=np.array([[encode_mode(m)] for m in modes]),
                future=future,
            )
        if acct is not None:
            acct.lap("predictor.forward", t0)
        self._observe_inference(profile.kind.value, start)
        if self.chaos is not None:
            estimates = self.chaos.corrupt_output(profile.kind.value, estimates)
        return {m: float(estimates[i]) for i, m in enumerate(modes)}

    def _observe_memo_hit(self, entry: str) -> None:
        if not obs.enabled():
            return
        obs.metrics().counter(
            "predictor_memo_hits_total",
            "Inference-memo hits that skipped recomputation",
            labels=("entry",),
        ).labels(entry=entry).inc()

    def _observe_inference(self, model_name: str, start: float) -> None:
        if not obs.enabled():
            return
        metrics = obs.metrics()
        metrics.counter(
            "predictor_inferences_total",
            "Predictor forward passes",
            labels=("model",),
        ).labels(model=model_name).inc()
        metrics.histogram(
            "predictor_inference_seconds",
            "Wall-clock latency of one inference call",
            labels=("model",),
        ).labels(model=model_name).observe(obs.wall_time() - start)

    def _model_for(self, kind: WorkloadKind) -> PerformancePredictor:
        if kind is WorkloadKind.BEST_EFFORT:
            model = self.be_performance
        elif kind is WorkloadKind.LATENCY_CRITICAL:
            model = self.lc_performance
        else:
            raise ValueError(f"no performance model for {kind}")
        if model is None:
            raise RuntimeError(f"no trained model for {kind.value} workloads")
        return model
