"""Bench Fig. 10 — Redis/Memcached p99 distributions over scenarios.

Paper shape: remote mode yields higher response times but the two
distributions overlap, which leaves headroom for offloading under
relaxed QoS constraints.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig09_10_distributions
from repro.workloads import WorkloadKind


def test_fig10_lc_distributions(benchmark, report, scale, strict):
    result = run_once(
        benchmark, fig09_10_distributions.run,
        WorkloadKind.LATENCY_CRITICAL, scale=scale,
    )
    report(result.format())

    dists = result.distributions
    assert set(dists) == {"redis", "memcached"}
    for dist in dists.values():
        # Base sanity: a real distribution with an upper tail.
        assert dist.local.median < dist.local.p99
        assert dist.local.count >= 2 and dist.remote.count >= 2
    if strict:
        for dist in dists.values():
            # Remote p99 medians sit above local ones: not because the
            # medium is slower (R4) but because remote deployments share
            # the saturable channel in congested scenarios.  The shift
            # can be large in the simulated corpus (closed-loop tail
            # amplification); the key paper shape is the ordering plus
            # distribution overlap.
            assert dist.median_shift >= -0.05
            # Overlapping distributions — the Fig. 10 headroom argument.
            assert dist.overlapping
