"""Redis latency-critical workload profile.

Redis is a single-threaded in-memory key/value store.  §IV-A drives it
with memtier: 4 threads x 200 closed-loop clients, SET:GET 1:10,
10,000 requests per client, ~30,000 operations served per second.

Characterization facts encoded here (R4, R6):

* local and remote tail-latency curves are almost identical in
  isolation — small reads/writes exert minimal bandwidth pressure, so
  ``remote_slowdown`` is ~1;
* pointer chasing has poor on-chip spatial locality, so Redis is barely
  LLC-sensitive but reacts to memory-bandwidth (and, in remote mode,
  link) saturation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.base import SensitivityVector, WorkloadKind, WorkloadProfile

__all__ = ["LCProfile", "REDIS"]


@dataclass(frozen=True)
class LCProfile(WorkloadProfile):
    """Latency-critical profile: adds the serving/latency dimensions."""

    #: p99 response time in isolation at the nominal load, in ms.
    base_p99_ms: float = 1.0
    #: p99.9 / p99 ratio in the calm regime.
    tail_ratio: float = 2.0
    #: Nominal served throughput (operations per second).
    ops_per_sec: float = 30000.0
    #: Server utilization at the nominal load (queueing headroom).
    nominal_rho: float = 0.45

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.base_p99_ms <= 0:
            raise ValueError("base_p99_ms must be positive")
        if self.tail_ratio < 1:
            raise ValueError("tail_ratio must be >= 1")
        if self.ops_per_sec <= 0:
            raise ValueError("ops_per_sec must be positive")
        if not 0 < self.nominal_rho < 1:
            raise ValueError("nominal_rho must be in (0, 1)")


#: Redis server serving the memtier configuration of §IV-A.
REDIS = LCProfile(
    name="redis",
    kind=WorkloadKind.LATENCY_CRITICAL,
    nominal_runtime_s=270.0,  # ~8M requests at ~30k ops/s
    remote_slowdown=1.02,
    stacking=0.0,
    cpu_threads=4.0,
    l2_mb=0.5,
    llc_mb=1.5,
    llc_access_gbps=1.5,
    mem_bw_gbps=0.6,
    remote_bw_gbps=0.15,
    footprint_gb=16.0,
    sensitivity=SensitivityVector(cpu=0.3, l2=0.1, llc=0.15, membw=0.7, link=0.5),
    base_p99_ms=1.5,
    tail_ratio=2.2,
    ops_per_sec=30000.0,
    nominal_rho=0.45,
)
