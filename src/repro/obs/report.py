"""Post-hoc summaries of a dumped observability directory.

Backs ``python -m repro obs DIR``: reads the artifacts written by
:func:`repro.obs.runtime.dump` and renders the paper-style tables the
rest of the harness uses — top metrics, span time by name, and the
decision audit's predicted-vs-actual accuracy join.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path

from repro.analysis.reporting import format_kv, format_table

__all__ = ["load_artifacts", "summarize_dir"]


def load_artifacts(directory: str | Path) -> dict:
    """Parse whichever dump artifacts exist under ``directory``."""
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"not an observability dump: {directory}")
    artifacts: dict = {"metrics": None, "trace": None, "decisions": None}
    metrics_path = directory / "metrics.json"
    if metrics_path.exists():
        artifacts["metrics"] = json.loads(metrics_path.read_text())["metrics"]
    trace_path = directory / "trace.json"
    if trace_path.exists():
        artifacts["trace"] = json.loads(trace_path.read_text())["traceEvents"]
    decisions_path = directory / "decisions.jsonl"
    if decisions_path.exists():
        artifacts["decisions"] = [
            json.loads(line)
            for line in decisions_path.read_text().splitlines()
            if line.strip()
        ]
    if all(v is None for v in artifacts.values()):
        raise FileNotFoundError(
            f"no observability artifacts (metrics.json / trace.json / "
            f"decisions.jsonl) under {directory}"
        )
    return artifacts


def _metrics_table(families: list[dict]) -> str:
    rows = []
    for family in families:
        for series in family["series"]:
            labels = ",".join(f"{k}={v}" for k, v in series["labels"].items())
            value = series["value"]
            if family["kind"] == "histogram":
                shown = (
                    f"n={value['count']} mean={_num(value['mean'])} "
                    f"max={_num(value['max'])}"
                )
            else:
                shown = _num(value)
            rows.append((family["name"], family["kind"], labels or "-", shown))
    return format_table(
        ["metric", "kind", "labels", "value"], rows, title="Metrics"
    )


def _spans_table(events: list[dict]) -> str:
    totals: dict[str, list[float]] = defaultdict(list)
    for event in events:
        if event.get("ph") == "X":
            totals[event["name"]].append(event.get("dur", 0.0))
    rows = [
        (
            name,
            len(durations),
            f"{sum(durations) / 1e6:.3f}",
            f"{max(durations) / 1e3:.2f}",
        )
        for name, durations in sorted(
            totals.items(), key=lambda kv: -sum(kv[1])
        )
    ]
    return format_table(
        ["span", "count", "total s", "max ms"], rows, title="Trace spans"
    )


def _decisions_summary(decisions: list[dict]) -> str:
    joined = [d for d in decisions if d.get("outcome")]
    lines = [
        format_kv(
            {
                "decisions": len(decisions),
                "joined outcomes": len(joined),
                "fallback placements": sum(
                    1 for d in joined if d["outcome"].get("fallback")
                ),
            },
            title="Decision audit",
        )
    ]
    by_policy: dict[str, dict[str, list]] = defaultdict(
        lambda: {"modes": [], "errors": [], "ratios": []}
    )
    for decision in decisions:
        bucket = by_policy[decision["policy"]]
        bucket["modes"].append(decision["chosen_mode"])
        error = decision.get("prediction_error")
        outcome = decision.get("outcome") or {}
        actual = outcome.get("performance")
        if error is not None and actual:
            bucket["errors"].append(error)
            bucket["ratios"].append(abs(error) / abs(actual))
    rows = []
    for policy, bucket in sorted(by_policy.items()):
        n = len(bucket["modes"])
        remote = sum(1 for m in bucket["modes"] if m == "remote")
        errors = bucket["errors"]
        rows.append(
            (
                policy,
                n,
                f"{remote / n * 100:.1f}%",
                (
                    f"{sum(abs(e) for e in errors) / len(errors):.3f}"
                    if errors
                    else "-"
                ),
                (
                    f"{sum(bucket['ratios']) / len(bucket['ratios']) * 100:.1f}%"
                    if bucket["ratios"]
                    else "-"
                ),
                f"{sum(errors) / len(errors):+.3f}" if errors else "-",
            )
        )
    lines.append(
        format_table(
            ["policy", "decisions", "remote", "MAE", "MAPE", "bias"],
            rows,
            title="Predicted vs actual (joined rows)",
        )
    )
    return "\n\n".join(lines)


def summarize_dir(directory: str | Path) -> str:
    """Render the full plain-text report for one dump directory."""
    artifacts = load_artifacts(directory)
    sections = [f"Observability dump: {Path(directory)}"]
    if artifacts["metrics"] is not None:
        if artifacts["metrics"]:
            sections.append(_metrics_table(artifacts["metrics"]))
        else:
            sections.append("Metrics: (empty)")
    if artifacts["trace"] is not None:
        spans = [e for e in artifacts["trace"] if e.get("ph") == "X"]
        if spans:
            sections.append(_spans_table(artifacts["trace"]))
        else:
            sections.append("Trace spans: (none)")
    if artifacts["decisions"] is not None:
        if artifacts["decisions"]:
            sections.append(_decisions_summary(artifacts["decisions"]))
        else:
            sections.append("Decision audit: (no decisions recorded)")
    return "\n\n".join(sections)


def _num(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
