"""Ablation — history/horizon window length (DESIGN.md §5.2).

The paper fixes r = z = 120 s after evaluating different values.  This
bench sweeps the window and reports system-state accuracy: very short
windows lose context, very long ones dilute the recent signal, and the
120 s point sits on the plateau.
"""

from benchmarks.conftest import run_once
from repro.analysis import format_table
from repro.experiments import ablations


def test_ablation_history_window(benchmark, report, scale):
    results = run_once(benchmark, ablations.window_ablation, scale=scale)
    report(format_table(
        ["history window s (z fixed at 120 s)", "avg R2"],
        [(w, f"{r2:.3f}") for w, r2 in sorted(results.items())],
        title="Ablation — system-state R2 vs history window r",
    ))

    assert set(results) == {30.0, 60.0, 120.0, 240.0}
    # Every window trains a usable model.
    assert all(r2 > 0.3 for r2 in results.values())
    # The paper's 120 s choice is at or near the plateau: within a small
    # margin of the best history length in the sweep.
    best = max(results.values())
    assert results[120.0] >= best - 0.08
