"""Declarative safety envelope for the serving daemon's admission path.

A :class:`SafetyEnvelope` is a small JSON-loadable document declaring
hard limits the orchestrator may never schedule past, regardless of
what the placement policy prefers: link/pool utilization ceilings,
per-app QoS burn-rate limits fed by the live SLO engine, a cap on
concurrent remote placements, and a breaker-state gate.  The
:class:`SafetyMonitor` evaluates the constraints — in declared order,
first violation wins — against the *hypothetical* state with the
candidate admitted, and answers with a :class:`SafetyVerdict`: admit,
downgrade the placement to local memory, or veto it outright.

Vetoes are first-class citizens of the observability plane: counted in
``safety_vetoes_total{constraint,node}``, audited as decision causes by
the daemon, and pushed as edge-triggered ``safety_veto`` /
``safety_clear`` events onto the live stream so ``repro obs watch`` can
render a tripped-constraint panel.

Only REMOTE candidates are constrained: the envelope protects the
shared disaggregated fabric, and a local placement consumes none of it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.obs.fsio import atomic_write_text
from repro.workloads.base import MemoryMode, WorkloadKind, WorkloadProfile

__all__ = [
    "ENVELOPE_VERSION",
    "CONSTRAINT_KINDS",
    "SafetyConfigError",
    "SafetyConstraint",
    "SafetyEnvelope",
    "SafetyVerdict",
    "SafetyMonitor",
]

ENVELOPE_VERSION = 1

#: Constraint kind -> (needs a limit, validation rule).
CONSTRAINT_KINDS = {
    "max_link_utilization": (True, "fraction"),
    "max_pool_bandwidth": (True, "fraction"),
    "max_pool_capacity": (True, "fraction"),
    "max_qos_burn_rate": (True, "positive"),
    "max_concurrent_remote": (True, "count"),
    "breaker_closed": (False, None),
}

_ACTIONS = ("veto", "downgrade")


class SafetyConfigError(ValueError):
    """An envelope document is malformed (kind, limit or action)."""


@dataclass(frozen=True)
class SafetyConstraint:
    """One declarative limit: a kind, a limit and a violation action."""

    kind: str
    limit: float | None = None
    action: str = "veto"

    def __post_init__(self) -> None:
        if self.kind not in CONSTRAINT_KINDS:
            raise SafetyConfigError(
                f"unknown safety constraint kind {self.kind!r} "
                f"(known: {', '.join(sorted(CONSTRAINT_KINDS))})"
            )
        if self.action not in _ACTIONS:
            raise SafetyConfigError(
                f"{self.kind}: action must be one of {_ACTIONS}, "
                f"got {self.action!r}"
            )
        needs_limit, rule = CONSTRAINT_KINDS[self.kind]
        if not needs_limit:
            if self.limit is not None:
                raise SafetyConfigError(f"{self.kind} takes no limit")
            return
        if self.limit is None:
            raise SafetyConfigError(f"{self.kind} requires a limit")
        if rule == "fraction" and not 0.0 < self.limit <= 1.0:
            raise SafetyConfigError(
                f"{self.kind}: limit must be in (0, 1], got {self.limit}"
            )
        if rule == "positive" and self.limit <= 0:
            raise SafetyConfigError(
                f"{self.kind}: limit must be positive, got {self.limit}"
            )
        if rule == "count" and (self.limit < 1 or self.limit != int(self.limit)):
            raise SafetyConfigError(
                f"{self.kind}: limit must be a whole number >= 1, "
                f"got {self.limit}"
            )

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind, "action": self.action}
        if self.limit is not None:
            out["limit"] = self.limit
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SafetyConstraint":
        if not isinstance(data, dict):
            raise SafetyConfigError(f"constraint must be an object: {data!r}")
        unknown = set(data) - {"kind", "limit", "action"}
        if unknown:
            raise SafetyConfigError(
                f"constraint has unknown fields {sorted(unknown)}"
            )
        if "kind" not in data:
            raise SafetyConfigError("constraint is missing 'kind'")
        return cls(
            kind=data["kind"],
            limit=data.get("limit"),
            action=data.get("action", "veto"),
        )


@dataclass(frozen=True)
class SafetyEnvelope:
    """An ordered set of constraints; evaluation stops at the first hit."""

    constraints: tuple[SafetyConstraint, ...] = ()
    description: str = ""

    def to_dict(self) -> dict:
        return {
            "version": ENVELOPE_VERSION,
            "description": self.description,
            "constraints": [c.to_dict() for c in self.constraints],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SafetyEnvelope":
        if not isinstance(data, dict):
            raise SafetyConfigError("envelope must be a JSON object")
        version = data.get("version", ENVELOPE_VERSION)
        if version != ENVELOPE_VERSION:
            raise SafetyConfigError(
                f"unsupported envelope version {version!r} "
                f"(expected {ENVELOPE_VERSION})"
            )
        raw = data.get("constraints", [])
        if not isinstance(raw, list):
            raise SafetyConfigError("'constraints' must be a list")
        return cls(
            constraints=tuple(SafetyConstraint.from_dict(c) for c in raw),
            description=str(data.get("description", "")),
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "SafetyEnvelope":
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise SafetyConfigError(f"no safety envelope at {path}") from None
        except json.JSONDecodeError as error:
            raise SafetyConfigError(
                f"corrupt safety envelope {path}: {error}"
            ) from None
        return cls.from_dict(data)

    def to_file(self, path: str | Path) -> Path:
        return atomic_write_text(
            path, json.dumps(self.to_dict(), indent=2) + "\n"
        )

    @classmethod
    def sample(cls) -> "SafetyEnvelope":
        """A conservative envelope suitable for the examples and CI."""
        return cls(
            constraints=(
                SafetyConstraint("breaker_closed", action="downgrade"),
                SafetyConstraint("max_link_utilization", 0.9,
                                 action="downgrade"),
                SafetyConstraint("max_pool_bandwidth", 0.95),
                SafetyConstraint("max_pool_capacity", 0.95),
                SafetyConstraint("max_qos_burn_rate", 4.0),
                SafetyConstraint("max_concurrent_remote", 16),
            ),
            description="sample envelope: fabric ceilings + breaker gate",
        )


@dataclass(frozen=True)
class SafetyVerdict:
    """Outcome of one admission review."""

    action: str  # "admit" | "downgrade" | "veto"
    constraint: str | None = None
    detail: dict = field(default_factory=dict)

    @property
    def admitted(self) -> bool:
        return self.action == "admit"


_ADMIT = SafetyVerdict(action="admit")


class SafetyMonitor:
    """Evaluates an envelope against candidate placements.

    ``breaker`` and ``slo`` are the daemon's circuit breaker and live
    :class:`~repro.obs.live.slo.SloEngine`; either may be ``None``, in
    which case the corresponding constraint kinds pass trivially.
    Veto/downgrade tallies are kept on the monitor itself
    (``self.vetoes`` / ``self.downgrades``) so the accounting survives
    observability being off.
    """

    def __init__(self, envelope: SafetyEnvelope, breaker=None, slo=None) -> None:
        self.envelope = envelope
        self.breaker = breaker
        self.slo = slo
        #: constraint kind -> veto / downgrade counts (obs-independent).
        self.vetoes: dict[str, int] = {}
        self.downgrades: dict[str, int] = {}
        #: Constraints currently tripped (edge detection for the stream).
        self._active: set[str] = set()

    # -- measurement ---------------------------------------------------------
    def _measure(
        self,
        constraint: SafetyConstraint,
        profile: WorkloadProfile,
        engine,
        fleet,
        clock: float,
    ) -> tuple[float, float] | None:
        """``(value, limit)`` for one constraint, or ``None`` when it
        cannot be evaluated in this context (no fleet pool, no SLO data,
        ...) — unevaluable constraints pass rather than veto blindly."""
        kind = constraint.kind
        if kind == "max_link_utilization":
            pressure = engine.pressure_with(profile, MemoryMode.REMOTE)
            return pressure.link.utilization, constraint.limit
        if kind == "max_pool_bandwidth":
            if fleet is None or fleet.pool is None:
                return None
            offered = [
                sum(d.demand().remote_bw_gbps for d in eng.running)
                for eng in fleet.engines
            ]
            index = fleet.engines.index(engine) if engine in fleet.engines else 0
            offered[index] += profile.remote_bw_gbps
            return fleet.pool.bandwidth_utilization(offered), constraint.limit
        if kind == "max_pool_capacity":
            if fleet is None or fleet.pool is None:
                return None
            used = sum(fleet._remote_used_gb()) + profile.footprint_gb
            return used / fleet.pool.capacity_gb, constraint.limit
        if kind == "max_qos_burn_rate":
            if self.slo is None or (
                profile.kind is not WorkloadKind.LATENCY_CRITICAL
            ):
                return None
            rates = self.slo.burn_rates(profile.name, clock)
            if not rates:
                return None
            # The shortest window reacts fastest — that is the one the
            # admission gate should key on.
            return rates[min(rates)], constraint.limit
        if kind == "max_concurrent_remote":
            engines = fleet.engines if fleet is not None else [engine]
            count = sum(
                1
                for eng in engines
                for d in eng.running
                if d.mode is MemoryMode.REMOTE
            )
            return float(count + 1), constraint.limit + 0.5
        if kind == "breaker_closed":
            if self.breaker is None:
                return None
            from repro.faults.breaker import CircuitState

            open_ = self.breaker.state is not CircuitState.CLOSED
            return (1.0 if open_ else 0.0), 0.5
        return None

    # -- review --------------------------------------------------------------
    def review(
        self,
        profile: WorkloadProfile,
        mode: MemoryMode,
        engine,
        fleet=None,
        clock: float = 0.0,
    ) -> SafetyVerdict:
        """Judge one candidate placement against the envelope.

        Local candidates are always admitted (the envelope protects the
        shared fabric).  For remote candidates the constraints run in
        declared order and the first violation decides the verdict; a
        violation increments the per-constraint tally and metric and
        emits an edge-triggered stream event, and a constraint seen
        *passing* after having tripped emits the matching clear event.
        """
        node = getattr(engine, "node_label", None) or "n0"
        if mode is not MemoryMode.REMOTE:
            return _ADMIT
        verdict = _ADMIT
        for constraint in self.envelope.constraints:
            measured = self._measure(constraint, profile, engine, fleet, clock)
            if measured is None:
                continue
            value, limit = measured
            if value > limit + 1e-12:
                verdict = SafetyVerdict(
                    action=constraint.action,
                    constraint=constraint.kind,
                    detail={
                        "value": round(value, 6),
                        "limit": constraint.limit,
                        "node": node,
                        "app": profile.name,
                        "clock": round(clock, 6),
                    },
                )
                self._trip(verdict)
                return verdict
            self._clear(constraint.kind, node, clock)
        return verdict

    def review_mode(self, policy, profile, engine, mode: MemoryMode) -> MemoryMode:
        """``_BasePolicy.safety`` hook: downgrade vetoed remote plans.

        Single-node policies have no local/veto distinction — a plan the
        envelope rejects (either action) falls back to local memory, and
        the override is recorded in the policy's audit detail so the
        decision row carries the constraint as its cause.
        """
        verdict = self.review(profile, mode, engine)
        if verdict.admitted:
            return mode
        detail = getattr(policy, "_detail", None)
        if isinstance(detail, dict):
            reason = detail.get("reason", "")
            tag = f"safety-{verdict.action}:{verdict.constraint}"
            detail["reason"] = f"{reason}+{tag}" if reason else tag
            detail["cause"] = verdict.constraint
        return MemoryMode.LOCAL

    # -- accounting ----------------------------------------------------------
    def _trip(self, verdict: SafetyVerdict) -> None:
        kind = verdict.constraint
        node = verdict.detail.get("node", "n0")
        tally = self.vetoes if verdict.action == "veto" else self.downgrades
        tally[kind] = tally.get(kind, 0) + 1
        if obs.enabled():
            family = (
                "safety_vetoes_total"
                if verdict.action == "veto"
                else "safety_downgrades_total"
            )
            obs.metrics().counter(
                family,
                "Admissions stopped by the safety envelope, by constraint",
                labels=("constraint", "node"),
            ).labels(constraint=kind, node=node).inc()
        live = obs.live_session()
        if live is not None:
            live.note_event(
                "safety_veto",
                constraint=kind,
                node=node,
                app=verdict.detail.get("app"),
                value=verdict.detail.get("value"),
                limit=verdict.detail.get("limit"),
                action=verdict.action,
                clock=verdict.detail.get("clock", 0.0),
            )
        self._active.add(kind)

    def _clear(self, kind: str, node: str, clock: float = 0.0) -> None:
        if kind not in self._active:
            return
        self._active.discard(kind)
        live = obs.live_session()
        if live is not None:
            live.note_event(
                "safety_clear", constraint=kind, node=node,
                clock=round(clock, 6),
            )

    # -- checkpointing -------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "vetoes": dict(self.vetoes),
            "downgrades": dict(self.downgrades),
            "active": sorted(self._active),
        }

    def load_state_dict(self, data: dict) -> None:
        self.vetoes = dict(data.get("vetoes", {}))
        self.downgrades = dict(data.get("downgrades", {}))
        self._active = set(data.get("active", []))
