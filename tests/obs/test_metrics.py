import json

import pytest

from repro.obs.metrics import (
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("ticks_total", "ticks")
        counter.inc()
        counter.inc(2.5)
        assert registry.snapshot()[0]["series"][0]["value"] == 3.5

    def test_counter_cannot_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c_total").inc(-1)

    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("c_total") is registry.counter("c_total")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_invalid_name_raises(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("bad name")


class TestLabels:
    def test_label_sets_are_independent_children(self):
        registry = MetricsRegistry()
        family = registry.counter("decisions_total", labels=("policy", "mode"))
        family.labels(policy="adrias", mode="local").inc()
        family.labels(policy="adrias", mode="remote").inc(2)
        family.labels(policy="adrias", mode="local").inc()
        snapshot = {
            tuple(sorted(s["labels"].items())): s["value"]
            for s in registry.snapshot()[0]["series"]
        }
        assert snapshot[(("mode", "local"), ("policy", "adrias"))] == 2
        assert snapshot[(("mode", "remote"), ("policy", "adrias"))] == 2

    def test_missing_label_raises(self):
        family = MetricsRegistry().counter("c_total", labels=("policy",))
        with pytest.raises(ValueError):
            family.labels(mode="local")
        with pytest.raises(ValueError):
            family.labels()

    def test_unlabeled_method_on_labeled_family_raises(self):
        family = MetricsRegistry().counter("c_total", labels=("policy",))
        with pytest.raises(ValueError):
            family.inc()

    def test_label_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels=("a",))
        with pytest.raises(ValueError):
            registry.counter("c_total", labels=("b",))


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("running")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert registry.snapshot()[0]["series"][0]["value"] == 3


class TestHistogramBuckets:
    def test_value_on_bucket_edge_counts_as_le(self):
        # Prometheus semantics: bucket le=X contains values <= X.
        histogram = Histogram(buckets=(1.0, 2.0))
        histogram.observe(1.0)
        histogram.observe(2.0)
        histogram.observe(2.0001)
        assert histogram.counts == [1, 1, 1]
        assert histogram.cumulative_counts() == [1, 2, 3]

    def test_overflow_goes_to_inf_bucket(self):
        histogram = Histogram(buckets=(1.0,))
        histogram.observe(100.0)
        assert histogram.counts == [0, 1]

    def test_sum_count_min_max_mean(self):
        histogram = Histogram(buckets=(10.0,))
        for v in (1.0, 3.0, 8.0):
            histogram.observe(v)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(12.0)
        assert histogram.mean == pytest.approx(4.0)
        assert histogram.min == 1.0
        assert histogram.max == 8.0

    def test_unsorted_buckets_raise(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=())

    def test_override_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.histogram(
            "qos_p99_ms", "LC p99", buckets=(0.5, 2.0, 8.0)
        ).observe(1.5)
        parsed = json.loads(registry.to_json())
        series = parsed["metrics"][0]["series"][0]
        assert list(series["value"]["buckets"]) == ["0.5", "2.0", "8.0", "+Inf"]
        assert series["value"]["buckets"]["2.0"] == 1

    def test_override_round_trips_through_prometheus(self):
        registry = MetricsRegistry()
        registry.histogram(
            "qos_p99_ms", "LC p99", buckets=(0.5, 2.0, 8.0)
        ).observe(1.5)
        text = registry.to_prometheus()
        assert 'qos_p99_ms_bucket{le="0.5"} 0' in text
        assert 'qos_p99_ms_bucket{le="2"} 1' in text
        assert 'qos_p99_ms_bucket{le="+Inf"} 1' in text
        # No default-bucket edges leak into the exposition.
        assert 'le="30"' not in text

    def test_conflicting_redeclaration_raises(self):
        registry = MetricsRegistry()
        family = registry.histogram("lat_seconds", buckets=(1.0, 2.0))
        # Same buckets or unspecified buckets return the same family.
        assert registry.histogram("lat_seconds", buckets=(1.0, 2.0)) is family
        assert registry.histogram("lat_seconds") is family
        with pytest.raises(ValueError, match="already declared"):
            registry.histogram("lat_seconds", buckets=(1.0, 4.0))

    def test_default_buckets_conflict_with_explicit_override(self):
        registry = MetricsRegistry()
        registry.histogram("tick_seconds")  # implicit DEFAULT_BUCKETS
        with pytest.raises(ValueError, match="already declared"):
            registry.histogram("tick_seconds", buckets=(1.0,))


class TestExport:
    def _registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("ticks_total", "Ticks").inc(3)
        registry.histogram(
            "lat_seconds", "Latency", labels=("model",), buckets=(0.1, 1.0)
        ).labels(model="be").observe(0.5)
        return registry

    def test_json_round_trips(self):
        parsed = json.loads(self._registry().to_json())
        by_name = {m["name"]: m for m in parsed["metrics"]}
        assert by_name["ticks_total"]["series"][0]["value"] == 3
        histogram = by_name["lat_seconds"]["series"][0]
        assert histogram["labels"] == {"model": "be"}
        assert histogram["value"]["count"] == 1
        assert histogram["value"]["buckets"]["+Inf"] == 1

    def test_prometheus_exposition(self):
        text = self._registry().to_prometheus()
        assert "# TYPE ticks_total counter" in text
        assert "ticks_total 3" in text
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="0.1",model="be"} 0' in text
        assert 'lat_seconds_bucket{le="1",model="be"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf",model="be"} 1' in text
        assert 'lat_seconds_count{model="be"} 1' in text
        assert text.endswith("\n")

    def test_reset_clears_families(self):
        registry = self._registry()
        registry.reset()
        assert len(registry) == 0
        assert registry.snapshot() == []


class TestNullRegistry:
    def test_everything_is_a_noop(self):
        NULL_REGISTRY.counter("x_total").inc()
        NULL_REGISTRY.gauge("g").labels(anything="goes").set(1)
        NULL_REGISTRY.histogram("h").observe(3)
        assert len(NULL_REGISTRY) == 0
        assert NULL_REGISTRY.snapshot() == []
        assert NULL_REGISTRY.to_prometheus() == ""
        assert json.loads(NULL_REGISTRY.to_json()) == {"metrics": []}
