"""End-to-end: ``repro obs profile`` and ``repro obs perfcheck``."""

import json
from pathlib import Path

import pytest

from repro.__main__ import main

BASELINES = Path(__file__).resolve().parents[3] / "benchmarks" / "baselines"


def engine_report(congested=8_000.0):
    return {
        "kind": "engine",
        "scales": {"congested": {"ticks_per_sec": congested}},
        "decisions": {"1": {"decisions_per_sec": 200.0}},
    }


@pytest.fixture()
def baseline_path(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(engine_report()))
    return path


class TestProfileCommand:
    def test_prints_ranked_table_and_dumps_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "phases_trace.json"
        code = main([
            "obs", "profile", "--duration", "40", "--hidden", "4",
            "--trace", str(trace_path), "--top", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "phase profile" in out
        assert "engine.tick" in out
        # --top 4 limits the table to header + 4 rows.
        table_rows = [
            line for line in out.splitlines()
            if line.startswith(("engine.", "predictor.", "policy."))
        ]
        assert len(table_rows) == 4
        parsed = json.loads(trace_path.read_text())
        assert any(e.get("cat") == "perf" for e in parsed["traceEvents"])

    def test_profile_leaves_accounting_disabled(self):
        from repro.obs.perf import accounting

        assert main(["obs", "profile", "--duration", "30", "--hidden", "4"]) == 0
        assert accounting() is None


class TestPerfcheckCommand:
    def test_pass_exits_zero(self, baseline_path, tmp_path, capsys):
        current = tmp_path / "current.json"
        current.write_text(json.dumps(engine_report()))
        code = main([
            "obs", "perfcheck",
            "--baseline", str(baseline_path), "--current", str(current),
        ])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, baseline_path, tmp_path, capsys):
        current = tmp_path / "current.json"
        current.write_text(json.dumps(engine_report(congested=1_000.0)))
        code = main([
            "obs", "perfcheck",
            "--baseline", str(baseline_path), "--current", str(current),
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "FAIL" in out

    def test_headroom_rescues_slow_machine(self, baseline_path, tmp_path):
        current = tmp_path / "current.json"
        current.write_text(json.dumps(engine_report(congested=3_000.0)))
        args = ["obs", "perfcheck", "--baseline", str(baseline_path),
                "--current", str(current)]
        assert main(args) == 1
        assert main(args + ["--headroom", "4"]) == 0

    def test_missing_baseline_is_usage_error(self, tmp_path, capsys):
        code = main([
            "obs", "perfcheck", "--baseline", str(tmp_path / "nope.json"),
            "--current", str(tmp_path / "nope.json"),
        ])
        assert code == 2
        assert "no benchmark report" in capsys.readouterr().err

    def test_invalid_tolerance_is_usage_error(self, baseline_path, capsys):
        code = main([
            "obs", "perfcheck", "--baseline", str(baseline_path),
            "--current", str(baseline_path), "--tolerance", "1.5",
        ])
        assert code == 2
        assert "tolerance" in capsys.readouterr().err

    def test_committed_baseline_gates_itself(self, capsys):
        baseline = str(BASELINES / "BENCH_engine.json")
        code = main([
            "obs", "perfcheck", "--baseline", baseline, "--current", baseline,
        ])
        assert code == 0
        assert "PASS" in capsys.readouterr().out
