import numpy as np
import pytest

from repro.hardware import METRIC_NAMES
from repro.models import SystemStateModel, SystemStatePredictor
from repro.models.dataset import build_system_state_dataset


class TestModelArchitecture:
    def test_forward_shape(self):
        model = SystemStateModel(n_metrics=7, lstm_hidden=8, block_hidden=16)
        x = np.random.default_rng(0).normal(size=(5, 12, 7))
        out = model.forward(x)
        assert out.shape == (5, 7)

    def test_backward_returns_input_grad(self):
        model = SystemStateModel(n_metrics=7, lstm_hidden=8, block_hidden=16)
        x = np.random.default_rng(1).normal(size=(3, 6, 7))
        out = model.forward(x)
        grad = model.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_has_two_lstm_layers_and_three_blocks(self):
        """The paper's architecture: 2 LSTM layers + triplet of blocks."""
        from repro.nn import BatchNorm1d, Dropout, LSTM

        model = SystemStateModel()
        lstms = [m for m in model.modules() if isinstance(m, LSTM)]
        batchnorms = [m for m in model.modules() if isinstance(m, BatchNorm1d)]
        dropouts = [m for m in model.modules() if isinstance(m, Dropout)]
        assert len(lstms) == 2
        assert len(batchnorms) == 3
        assert len(dropouts) == 3


class TestPredictor:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_traces):
        dataset = build_system_state_dataset(tiny_traces, stride_s=20.0)
        predictor = SystemStatePredictor(seed=0)
        predictor.fit(dataset.windows, dataset.targets, epochs=20)
        return predictor, dataset

    def test_predict_shapes(self, fitted):
        predictor, dataset = fitted
        batch = predictor.predict(dataset.windows[:4])
        assert batch.shape == (4, len(METRIC_NAMES))
        single = predictor.predict(dataset.windows[0])
        assert single.shape == (len(METRIC_NAMES),)

    def test_predictions_nonnegative(self, fitted):
        predictor, dataset = fitted
        assert np.all(predictor.predict(dataset.windows) >= 0.0)

    def test_beats_naive_zero_predictor(self, fitted):
        predictor, dataset = fitted
        scores = predictor.evaluate(dataset.windows, dataset.targets)
        assert scores["average"] > 0.5  # train-set sanity, tiny budget

    def test_evaluate_reports_all_metrics(self, fitted):
        predictor, dataset = fitted
        scores = predictor.evaluate(dataset.windows, dataset.targets)
        assert set(scores) == set(METRIC_NAMES) | {"average"}

    def test_predict_before_fit_raises(self):
        predictor = SystemStatePredictor()
        with pytest.raises(RuntimeError):
            predictor.predict(np.zeros((1, 24, 7)))

    def test_fit_validation(self):
        predictor = SystemStatePredictor()
        with pytest.raises(ValueError):
            predictor.fit(np.zeros((4, 24, 7)), np.zeros((5, 7)), epochs=1)
        with pytest.raises(ValueError):
            predictor.fit(np.zeros((4, 24)), np.zeros((4, 7)), epochs=1)

    def test_residual_mode_improves_over_nonresidual_on_tiny_budget(
        self, tiny_traces
    ):
        dataset = build_system_state_dataset(tiny_traces, stride_s=30.0)
        n = len(dataset)
        split = int(0.6 * n)
        resid = SystemStatePredictor(seed=1, residual=True)
        flat = SystemStatePredictor(seed=1, residual=False)
        for predictor in (resid, flat):
            predictor.fit(
                dataset.windows[:split], dataset.targets[:split], epochs=8
            )
        r_resid = resid.evaluate(dataset.windows[split:], dataset.targets[split:])
        r_flat = flat.evaluate(dataset.windows[split:], dataset.targets[split:])
        assert r_resid["average"] > r_flat["average"]
