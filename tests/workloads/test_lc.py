import pytest

from repro.hardware import ResourceDemand, Testbed, TestbedConfig
from repro.workloads import (
    LCProfile,
    LoadGenConfig,
    MEMCACHED,
    MemoryMode,
    REDIS,
    TailLatencyModel,
    WorkloadKind,
)


@pytest.fixture
def testbed():
    return Testbed(TestbedConfig(counter_noise=0.0))


def calm(testbed, profile, mode):
    return testbed.resolve([profile.demand(mode)])


class TestProfiles:
    def test_kinds(self):
        assert REDIS.kind is WorkloadKind.LATENCY_CRITICAL
        assert MEMCACHED.kind is WorkloadKind.LATENCY_CRITICAL

    def test_paper_throughputs(self):
        """§IV-A: ~30k ops/s for Redis, ~100k for Memcached."""
        assert REDIS.ops_per_sec == pytest.approx(30000)
        assert MEMCACHED.ops_per_sec == pytest.approx(100000)

    def test_mode_insensitive_in_isolation(self):
        """Remark R4 encoded directly: remote_slowdown ~ 1."""
        assert REDIS.remote_slowdown <= 1.05
        assert MEMCACHED.remote_slowdown <= 1.05

    def test_pointer_chasing_sensitivities(self):
        """Remark R6: low LLC sensitivity, higher memBW sensitivity."""
        for profile in (REDIS, MEMCACHED):
            assert profile.sensitivity.llc < profile.sensitivity.membw

    def test_validation(self):
        with pytest.raises(ValueError):
            LCProfile(
                name="bad", kind=WorkloadKind.LATENCY_CRITICAL,
                nominal_runtime_s=10.0, base_p99_ms=0.0,
            )
        with pytest.raises(ValueError):
            LCProfile(
                name="bad", kind=WorkloadKind.LATENCY_CRITICAL,
                nominal_runtime_s=10.0, nominal_rho=1.5,
            )


class TestLoadGenConfig:
    def test_paper_defaults(self):
        config = LoadGenConfig()
        assert config.total_clients == 800  # 4 threads x 200 clients
        assert config.total_requests == 8_000_000
        assert config.set_fraction == pytest.approx(1 / 11)  # SET:GET 1:10

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadGenConfig(threads=0)
        with pytest.raises(ValueError):
            LoadGenConfig(set_fraction=1.5)


class TestTailLatencyModel:
    def test_nominal_point_reproduces_base_p99(self, testbed):
        model = TailLatencyModel(REDIS)
        pressure = calm(testbed, REDIS, MemoryMode.LOCAL)
        sample = model.sample(pressure, MemoryMode.LOCAL, load_scale=1.0)
        assert sample.p99_ms == pytest.approx(REDIS.base_p99_ms, rel=0.01)
        assert not sample.saturated

    def test_remote_isolation_nearly_identical(self, testbed):
        """Remark R4: local and remote curves almost identical."""
        model = TailLatencyModel(REDIS)
        local = model.sample(calm(testbed, REDIS, MemoryMode.LOCAL), MemoryMode.LOCAL)
        remote = model.sample(
            calm(testbed, REDIS, MemoryMode.REMOTE), MemoryMode.REMOTE
        )
        assert remote.p99_ms / local.p99_ms < 1.10

    def test_latency_monotone_in_load(self, testbed):
        model = TailLatencyModel(MEMCACHED)
        pressure = calm(testbed, MEMCACHED, MemoryMode.LOCAL)
        samples = [
            model.sample(pressure, MemoryMode.LOCAL, load_scale=s)
            for s in (0.25, 0.5, 1.0, 1.5, 2.0)
        ]
        p99s = [s.p99_ms for s in samples]
        assert all(b >= a for a, b in zip(p99s, p99s[1:]))

    def test_throughput_saturates(self, testbed):
        model = TailLatencyModel(REDIS)
        pressure = calm(testbed, REDIS, MemoryMode.LOCAL)
        heavy = model.sample(pressure, MemoryMode.LOCAL, load_scale=5.0)
        assert heavy.saturated
        assert heavy.served_ops < heavy.offered_ops

    def test_p999_exceeds_p99(self, testbed):
        model = TailLatencyModel(REDIS)
        pressure = calm(testbed, REDIS, MemoryMode.LOCAL)
        sample = model.sample(pressure, MemoryMode.LOCAL)
        assert sample.p999_ms > sample.p99_ms

    def test_saturated_link_hurts_remote_lc(self, testbed):
        """Remark R5 for LC: p99 diverges once the channel saturates."""
        model = TailLatencyModel(REDIS)
        trashers = [
            ResourceDemand(remote_bw_gbps=0.45, cpu_threads=0.5) for _ in range(16)
        ]
        congested = testbed.resolve(trashers + [REDIS.demand(MemoryMode.REMOTE)])
        calm_pressure = calm(testbed, REDIS, MemoryMode.REMOTE)
        hot = model.sample(congested, MemoryMode.REMOTE)
        cool = model.sample(calm_pressure, MemoryMode.REMOTE)
        assert hot.p99_ms > 1.5 * cool.p99_ms

    def test_time_to_serve(self, testbed):
        model = TailLatencyModel(REDIS)
        pressure = calm(testbed, REDIS, MemoryMode.LOCAL)
        seconds = model.time_to_serve(30000, pressure, MemoryMode.LOCAL)
        assert seconds == pytest.approx(1.0, rel=0.01)
        with pytest.raises(ValueError):
            model.time_to_serve(0, pressure, MemoryMode.LOCAL)

    def test_client_sweep_shapes(self, testbed):
        model = TailLatencyModel(REDIS)
        pressure = calm(testbed, REDIS, MemoryMode.LOCAL)
        samples = model.client_sweep(pressure, MemoryMode.LOCAL, [100, 800])
        assert len(samples) == 2
        assert samples[0].p99_ms < samples[1].p99_ms
        with pytest.raises(ValueError):
            model.client_sweep(pressure, MemoryMode.LOCAL, [0])

    def test_negative_load_raises(self, testbed):
        model = TailLatencyModel(REDIS)
        pressure = calm(testbed, REDIS, MemoryMode.LOCAL)
        with pytest.raises(ValueError):
            model.utilization(pressure, MemoryMode.LOCAL, load_scale=-1.0)
