"""Fleet failure domains: detector, failover, device loss, conservation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.__main__ import main
from repro.cluster.failover import (
    FailoverConfig,
    FleetHealthManager,
    NodeHealth,
)
from repro.cluster.fleet import (
    ClusterFleet,
    FleetDecision,
    LeastLoadedPlacement,
    PoolAwarePlacement,
)
from repro.cluster.engine import CapacityError, NodeDownError
from repro.faults.plan import FaultPlan, FaultPlanError, FaultSpec
from repro.hardware.pool import RemotePool, RemotePoolConfig
from repro.orchestrator.policies import InterferenceThresholdPolicy
from repro.serve.client import DaemonClient
from repro.workloads import MemoryMode, spark_profile

LINK_GBPS = 2.5


def crash_plan(node="n1", start=10.0, duration=50.0, extra=(), seed=7):
    faults = (
        FaultSpec(kind="node_crash", start_s=start, duration_s=duration,
                  params={"node": node}),
        *extra,
    )
    return FaultPlan(faults=faults, seed=seed)


def make_fleet(plan, n_nodes=3, pool=None, scheduler=None):
    fleet = ClusterFleet(n_nodes=n_nodes, pool=pool)
    manager = FleetHealthManager(plan, scheduler=scheduler)
    fleet.health = manager
    return fleet, manager


def admit(fleet, node, mode=MemoryMode.LOCAL, name="lda"):
    deployment = fleet.deploy(spark_profile(name), FleetDecision(node, mode))
    fleet.note_submitted()
    return deployment


def assert_conserved(fleet):
    acc = fleet.accounting()
    assert acc["submitted"] == acc["total"], acc


class TestDetector:
    def test_fail_stop_precedes_detection(self):
        fleet, manager = make_fleet(crash_plan())
        admit(fleet, 1)
        fleet.run_for(10.0)  # heartbeats seen at now=0..9: still healthy
        assert manager.status("n1") is NodeHealth.UP
        assert not fleet.engines[1].dead
        fleet.run_for(1.0)  # first missed beat at now=10
        assert fleet.engines[1].dead  # fail-stop is immediate...
        assert manager.status("n1") is NodeHealth.SUSPECT  # ...detection lags
        assert len(fleet.engines[1].running) == 1  # frozen, not drained
        assert_conserved(fleet)

    def test_down_after_three_missed_beats_drains(self):
        fleet, manager = make_fleet(crash_plan())
        admit(fleet, 1)
        fleet.run_for(13.0)  # missed beats at now=10, 11, 12
        assert manager.status("n1") is NodeHealth.DOWN
        assert manager.counters["drained"] == 1
        # The same step replays the drained entry onto a survivor.
        assert manager.counters["replayed"] == 1
        assert manager.pending == 0
        assert not fleet.engines[1].running
        assert sum(len(e.running) for e in fleet.engines) == 1
        assert_conserved(fleet)

    def test_dead_node_produces_nan_telemetry(self):
        fleet, _ = make_fleet(crash_plan())
        admit(fleet, 0)
        fleet.run_for(20.0)
        dead_rows = fleet.engines[1].trace.metrics[11:]
        assert np.isnan(dead_rows).all()
        alive_rows = fleet.engines[0].trace.metrics
        assert not np.isnan(alive_rows).any()

    def test_rejoin_after_window_close(self):
        fleet, manager = make_fleet(crash_plan(start=10.0, duration=20.0))
        fleet.run_for(35.0)
        assert manager.status("n1") is NodeHealth.UP
        assert not fleet.engines[1].dead
        admit(fleet, 1)  # re-admitted: placement works again
        assert fleet.engines[1].running
        assert_conserved(fleet)

    def test_rejoin_window_overrides_crash(self):
        rejoin = FaultSpec(kind="node_rejoin", start_s=30.0, duration_s=60.0,
                           params={"node": "n1"})
        fleet, manager = make_fleet(
            crash_plan(start=10.0, duration=80.0, extra=(rejoin,))
        )
        fleet.run_for(25.0)
        assert manager.status("n1") is NodeHealth.DOWN
        fleet.run_for(10.0)  # the explicit rejoin window reboots it early
        assert manager.status("n1") is NodeHealth.UP
        assert not fleet.engines[1].dead

    def test_retry_queue_drains_into_failover(self):
        fleet, manager = make_fleet(crash_plan())
        engine = fleet.engines[1]
        engine.remote_blocked = True
        engine.queue_remote(spark_profile("lda"))
        fleet.note_submitted()
        fleet.run_for(13.0)
        assert engine.queued_remote == 0
        assert manager.counters["drained"] == 1
        assert_conserved(fleet)

    def test_detector_thresholds_validated(self):
        with pytest.raises(ValueError):
            FailoverConfig(suspect_after=0)
        with pytest.raises(ValueError):
            FailoverConfig(suspect_after=3, down_after=2)


class TestFailover:
    def test_drained_work_finishes_on_survivors(self):
        fleet, manager = make_fleet(crash_plan(start=10.0, duration=50.0))
        admit(fleet, 1)
        admit(fleet, 1, name="gmm")
        fleet.run_until_idle()
        assert manager.counters["drained"] == 2
        assert manager.counters["replayed"] == 2
        assert len(fleet.records()) == 2
        # Fail-stop restarts: survivors, not the crashed node, ran them.
        assert not fleet.engines[1].trace.records
        assert_conserved(fleet)

    def test_full_rack_parks_until_rejoin(self):
        # Both nodes crash; n1 rejoins at t=35 while n0 stays dead.  The
        # drained entry has no survivor to land on, so replay must park
        # it (never drop) until the rejoin makes placement possible.
        n0_crash = FaultSpec(kind="node_crash", start_s=5.0, duration_s=100.0,
                             params={"node": "n0"})
        fleet, manager = make_fleet(
            crash_plan(node="n1", start=5.0, duration=30.0,
                       extra=(n0_crash,)),
            n_nodes=2,
        )
        admit(fleet, 1, name="lda")
        conserved_ticks = []
        fleet.tick_hooks.append(
            lambda f: conserved_ticks.append(
                f.accounting()["submitted"] == f.accounting()["total"]
            )
        )
        fleet.run_for(10.0)
        assert manager.status("n0") is NodeHealth.DOWN
        assert manager.status("n1") is NodeHealth.DOWN
        assert manager.pending == 1  # parked in the failover queue
        assert manager.counters["replayed"] == 0
        assert_conserved(fleet)
        fleet.run_for(30.0)  # window closes at 35: n1 rejoins and takes it
        assert manager.status("n1") is NodeHealth.UP
        assert manager.pending == 0
        assert manager.counters["replayed"] == 1
        assert fleet.engines[1].running
        assert all(conserved_ticks)

    def test_deploy_on_dead_node_raises(self):
        fleet, _ = make_fleet(crash_plan())
        fleet.run_for(11.0)
        with pytest.raises(NodeDownError):
            fleet.deploy(spark_profile("lda"), FleetDecision(1, MemoryMode.LOCAL))

    def test_recovery_time_sampled(self):
        fleet, manager = make_fleet(crash_plan())
        admit(fleet, 1)
        fleet.run_for(20.0)
        assert manager.recovery_times
        assert all(t >= 0.0 for t in manager.recovery_times)


class TestPlacementExclusion:
    def test_least_loaded_skips_dead_nodes(self):
        fleet = ClusterFleet(n_nodes=3)
        fleet.engines[1].dead = True
        scheduler = LeastLoadedPlacement(InterferenceThresholdPolicy())
        assert 1 not in scheduler.node_order(fleet)
        decision = scheduler(spark_profile("lda"), fleet)
        assert decision.node_index != 1

    def test_pool_aware_skips_dead_nodes(self):
        fleet = ClusterFleet(n_nodes=3, pool=RemotePoolConfig())
        fleet.engines[2].dead = True
        scheduler = PoolAwarePlacement(InterferenceThresholdPolicy())
        assert 2 not in scheduler.node_order(fleet)

    def test_all_dead_fleet_rejects(self):
        fleet = ClusterFleet(n_nodes=2)
        for engine in fleet.engines:
            engine.dead = True
        scheduler = LeastLoadedPlacement(InterferenceThresholdPolicy())
        with pytest.raises(CapacityError):
            scheduler(spark_profile("lda"), fleet)
        with pytest.raises(CapacityError, match="down"):
            fleet.least_loaded_node()


class TestPoolDeviceLoss:
    def device_plan(self, fraction=0.5, start=5.0, duration=20.0, **params):
        return FaultPlan(
            faults=(
                FaultSpec(
                    kind="pool_device_fail", start_s=start,
                    duration_s=duration,
                    params={"fraction": fraction, **params},
                ),
            ),
            seed=9,
        )

    def test_derate_applies_and_heals(self):
        fleet, _ = make_fleet(
            self.device_plan(), n_nodes=2, pool=RemotePoolConfig()
        )
        fleet.run_for(6.0)
        assert fleet.pool.device_capacity_factor == pytest.approx(0.5)
        assert fleet.pool.device_bw_factor == pytest.approx(0.5)
        fleet.run_for(25.0)  # window closed: full capacity restored
        assert fleet.pool.device_capacity_factor == pytest.approx(1.0)

    def test_bandwidth_fraction_can_differ(self):
        fleet, _ = make_fleet(
            self.device_plan(fraction=0.25, bandwidth_fraction=0.5),
            n_nodes=2, pool=RemotePoolConfig(),
        )
        fleet.run_for(6.0)
        assert fleet.pool.device_capacity_factor == pytest.approx(0.75)
        assert fleet.pool.device_bw_factor == pytest.approx(0.5)

    def test_overflow_evicted_to_local(self):
        pool = RemotePoolConfig(capacity_gb=16.0)  # 2 x lda's 8 GB
        fleet, manager = make_fleet(self.device_plan(), n_nodes=2, pool=pool)
        admit(fleet, 0, mode=MemoryMode.REMOTE, name="lda")
        admit(fleet, 1, mode=MemoryMode.REMOTE, name="gmm")
        fleet.run_for(6.0)  # halved pool holds one 8 GB segment, not two
        assert manager.counters["evicted"] == 1
        assert manager.counters["replayed"] == 1
        used = sum(
            e.used_capacity_gb(MemoryMode.REMOTE) for e in fleet.engines
        )
        assert used <= fleet.pool.effective_capacity_gb + 1e-9
        assert sum(len(e.running) for e in fleet.engines) == 2
        assert_conserved(fleet)

    def test_survivors_keep_their_segments(self):
        pool = RemotePoolConfig(capacity_gb=32.0)
        fleet, manager = make_fleet(
            self.device_plan(), n_nodes=2, pool=pool
        )
        admit(fleet, 0, mode=MemoryMode.REMOTE, name="lda")  # 8 GB of 16
        fleet.run_for(6.0)  # still fits the derated pool: no blast radius
        assert manager.counters["evicted"] == 0
        assert fleet.engines[0].running[0].mode is MemoryMode.REMOTE


class TestWaterFillProperties:
    """Pool arbitration after arbitrary device-loss sequences (satellite)."""

    @given(
        fractions=st.lists(
            st.floats(0.0, 0.9, allow_nan=False), min_size=0, max_size=4
        ),
        demands=st.lists(
            st.floats(0.0, LINK_GBPS, allow_nan=False),
            min_size=2, max_size=6,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_never_exceeds_surviving_bandwidth_and_stays_max_min(
        self, fractions, demands
    ):
        pool = RemotePool(
            RemotePoolConfig(), n_nodes=len(demands),
            link_capacity_gbps=LINK_GBPS, node_remote_gb=16.0,
        )
        survive = 1.0
        for fraction in fractions:
            survive *= 1.0 - fraction
        pool.set_device_factors(survive, survive)
        factors = pool.arbitrate(demands)
        allocated = [
            min(d, LINK_GBPS) if f >= 1.0 - 1e-12 else f * LINK_GBPS
            for d, f in zip(demands, factors)
        ]
        assert all(0.0 <= a <= LINK_GBPS + 1e-9 for a in allocated)
        # Conservation: never hand out more than the surviving fabric.
        if sum(min(d, LINK_GBPS) for d in demands) > pool.effective_bw_gbps:
            assert sum(allocated) <= pool.effective_bw_gbps + 1e-6
        # Max-min fairness: a single water level L with
        # alloc_i == min(demand_i, L) for every lane.
        level = max(allocated, default=0.0)
        for demand, alloc in zip(demands, allocated):
            assert alloc == pytest.approx(
                min(min(demand, LINK_GBPS), level), abs=1e-6
            )

    @given(fraction=st.floats(0.0, 1.0, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_factors_clamped_to_unit_interval(self, fraction):
        pool = RemotePool(
            RemotePoolConfig(), n_nodes=2,
            link_capacity_gbps=LINK_GBPS, node_remote_gb=16.0,
        )
        pool.set_device_factors(1.0 - fraction, 1.0 - fraction)
        for factor in pool.arbitrate([LINK_GBPS, LINK_GBPS]):
            assert 0.0 <= factor <= 1.0


class TestRetryJitterDeterminism:
    """Seeded jitter replays bit-identically (satellite regression)."""

    def _schedule(self, seed=3):
        fleet = ClusterFleet(n_nodes=1)
        engine = fleet.engines[0]
        engine.remote_blocked = True
        engine.queue_remote(spark_profile("lda"))
        fleet.note_submitted()
        fleet.run_for(40.0)
        entry = engine._retry_queue[0]
        return entry["attempts"], entry["next_attempt_s"]

    def test_same_seed_same_backoff_schedule(self):
        assert self._schedule() == self._schedule()

    def test_jitter_draws_are_seed_deterministic(self):
        a = ClusterFleet(n_nodes=1).engines[0]
        b = ClusterFleet(n_nodes=1).engines[0]
        assert [a._retry_rng.random() for _ in range(8)] == (
            [b._retry_rng.random() for _ in range(8)]
        )

    def test_client_backoff_seeded(self):
        a = DaemonClient(port=7001, jitter_seed=11)
        b = DaemonClient(port=7002, jitter_seed=11)
        c = DaemonClient(port=7001, jitter_seed=12)
        schedule_a = [a._backoff(i) for i in range(1, 6)]
        schedule_b = [b._backoff(i) for i in range(1, 6)]
        schedule_c = [c._backoff(i) for i in range(1, 6)]
        assert schedule_a == schedule_b  # seed wins over port
        assert schedule_a != schedule_c
        # Jitter spreads a herd but never shrinks the base backoff.
        for attempt, backoff in enumerate(schedule_a, start=1):
            base = a.backoff_s * attempt
            assert base <= backoff <= base * 1.5 + 1e-12

    def test_client_default_seed_derives_from_port(self):
        a = DaemonClient(port=7001)
        b = DaemonClient(port=7001)
        assert [a._backoff(1)] == [b._backoff(1)]


class TestPlanValidation:
    """Fleet-shape cross-checks and the CLI surface (satellite)."""

    def test_unknown_node_target_rejected(self):
        plan = crash_plan(node="n5")
        with pytest.raises(FaultPlanError, match="n5"):
            plan.validate(3)
        with pytest.raises(FaultPlanError, match="node_crash"):
            plan.validate(3)

    def test_valid_targets_pass_and_chain(self):
        plan = crash_plan(node="n2")
        assert plan.validate(3) is plan
        assert plan.validate(None) is plan  # shape unknown: skip

    def test_sample_availability_deterministic_and_valid(self):
        a = FaultPlan.sample_availability(seed=4, n_nodes=4)
        b = FaultPlan.sample_availability(seed=4, n_nodes=4)
        assert a.to_json() == b.to_json()
        assert a.validate(4) is a
        kinds = {spec.kind for spec in a.faults}
        assert kinds == {"node_crash", "node_rejoin", "pool_device_fail"}
        assert FaultPlan.sample_availability(seed=5, n_nodes=4).to_json() != (
            a.to_json()
        )

    def test_cli_validate_nodes_flag(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        FaultPlan.sample_availability(seed=1, n_nodes=4).to_file(path)
        assert main(["faults", "validate", str(path), "--nodes", "4"]) == 0
        assert "4-node fleet" in capsys.readouterr().out
        assert main(["faults", "validate", str(path), "--nodes", "2"]) == 2
        err = capsys.readouterr().err
        assert "unknown node" in err
        assert "'n1'" in err or "'n2'" in err

    def test_cli_sample_availability(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        assert main([
            "faults", "sample", "--availability", "--nodes", "4",
            "--out", str(path),
        ]) == 0
        plan = FaultPlan.from_file(path)
        assert plan.validate(4) is plan

    def test_cli_sample_variants_mutually_exclusive(self, capsys):
        assert main([
            "faults", "sample", "--availability", "--daemon",
        ]) == 2
        assert "mutually exclusive" in capsys.readouterr().err
