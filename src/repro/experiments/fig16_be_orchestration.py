"""Experiment Fig. 16 — orchestration impact on BE applications.

Replays held-out arrival sequences under Random, Round-Robin, All-Local
and Adrias with β ∈ {1.0, 0.9, 0.8, 0.7, 0.6}, reporting per-benchmark
runtime distributions and local/remote placement counts.

Expected shape (§VI-B): naive schedulers yield the worst distributions;
high β is indistinguishable from All-Local; intermediate β offloads a
meaningful fraction (paper: ~10% at β=0.8, ~35% at β=0.7) with a small
median degradation (0.5% / 15%); low β over-offloads and collapses.
The exact β at which each offload level is reached shifts slightly with
the simulated testbed's remote-slowdown distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.analysis.reporting import format_table
from repro.experiments.common import (
    ExperimentScale,
    eval_scenario_configs,
    get_predictor,
    scale_from_env,
)
from repro.orchestrator.evaluation import PolicyResult, compare_policies
from repro.orchestrator.policies import (
    AdriasPolicy,
    AllLocalPolicy,
    RandomPolicy,
    RoundRobinPolicy,
)
from repro.workloads.base import WorkloadKind
from repro.workloads.registry import lc_profiles

__all__ = ["Fig16Result", "run", "BETAS"]

BETAS: tuple[float, ...] = (1.0, 0.9, 0.8, 0.7, 0.6)

#: Generous default QoS so that LC placement does not confound the BE
#: comparison in this experiment.
_LC_QOS_MS = 6.0


@dataclass(frozen=True)
class Fig16Result:
    results: dict[str, PolicyResult]
    baseline_name: str = "all-local"

    def offload(self, policy: str) -> float:
        return self.results[policy].offload_fraction(WorkloadKind.BEST_EFFORT)

    def median_drop(self, policy: str) -> float:
        """Mean relative change of per-benchmark medians vs All-Local."""
        base = self.results[self.baseline_name]
        target = self.results[policy]
        drops = []
        for name in base.benchmark_names(WorkloadKind.BEST_EFFORT):
            base_median = base.median_performance(name)
            target_median = target.median_performance(name)
            if np.isnan(base_median) or np.isnan(target_median) or base_median == 0:
                continue
            drops.append(target_median / base_median - 1.0)
        return float(np.mean(drops)) if drops else float("nan")

    def placement_counts(self, policy: str, name: str) -> tuple[int, int]:
        return self.results[policy].placement_counts(name)

    def format(self) -> str:
        rows = [
            (
                policy,
                f"{self.offload(policy) * 100:.1f}%",
                f"{self.median_drop(policy) * 100:+.1f}%",
                f"{self.results[policy].total_link_traffic_gb():.1f}",
            )
            for policy in self.results
        ]
        return format_table(
            ["policy", "BE offload", "median drop vs all-local", "link GB"],
            rows,
            title="Fig. 16 — BE orchestration comparison",
        )


def run(
    scale: ExperimentScale | None = None,
    betas: tuple[float, ...] = BETAS,
) -> Fig16Result:
    scale = scale if scale is not None else scale_from_env()
    predictor = get_predictor(scale)
    live = obs.live_session()
    if live is not None:
        # Stream SLO burn for the LC side-traffic against the same
        # generous QoS the experiment holds it to.
        live.slo.set_targets({name: _LC_QOS_MS for name in lc_profiles()})
    policies = {
        "random": RandomPolicy(seed=scale.seed + 1),
        "round-robin": RoundRobinPolicy(),
        "all-local": AllLocalPolicy(),
    }
    for beta in betas:
        policies[f"adrias-{beta:g}"] = AdriasPolicy(
            predictor, beta=beta, default_qos_ms=_LC_QOS_MS
        )
    results = compare_policies(policies, eval_scenario_configs(scale))
    return Fig16Result(results=results)
