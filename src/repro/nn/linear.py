"""Fully-connected layer."""

from __future__ import annotations

import numpy as np

from repro.nn import initializers
from repro.nn.module import Module
from repro.nn.parameter import Parameter

__all__ = ["Linear"]


class Linear(Module):
    """Affine transform ``y = x @ W.T + b``.

    Accepts inputs of shape ``(..., in_features)``; leading axes are
    treated as batch dimensions, which lets the same layer project both
    flat feature vectors and per-timestep LSTM outputs.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        init: str = "he_uniform",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear features must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        init_fn = getattr(initializers, init)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init_fn((out_features, in_features), rng), "weight")
        self.bias = Parameter(np.zeros(out_features), "bias") if bias else None
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"Linear expected last axis {self.in_features}, got {x.shape[-1]}"
            )
        # Inference mode skips the backward cache so repeated online
        # predictions do not pin the last input batch in memory.
        self._input = None if self.inference else x
        out = x @ self.weight.value.T
        if self.bias is not None:
            out = out + self.bias.value
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._input is None:
            if self.inference:
                raise RuntimeError(
                    "Linear.backward called after an inference-mode forward"
                )
            raise RuntimeError("backward called before forward")
        x = self._input
        # Collapse leading axes so the same code handles 2-D and 3-D inputs.
        flat_x = x.reshape(-1, self.in_features)
        flat_g = np.asarray(grad, dtype=np.float64).reshape(-1, self.out_features)
        self.weight.accumulate(flat_g.T @ flat_x)
        if self.bias is not None:
            self.bias.accumulate(flat_g.sum(axis=0))
        return (flat_g @ self.weight.value).reshape(x.shape)
