import numpy as np
import pytest

from repro.models import (
    PerformancePredictor,
    Predictor,
    SystemStatePredictor,
    build_performance_dataset,
    build_system_state_dataset,
)
from repro.workloads import (
    MemoryMode,
    WorkloadKind,
    ibench_profile,
    spark_profile,
)


@pytest.fixture(scope="module")
def service(tiny_traces, signatures, feature_config):
    """A small but fully wired Predictor service."""
    ss_data = build_system_state_dataset(tiny_traces, feature_config, stride_s=20.0)
    system_state = SystemStatePredictor(feature_config=feature_config, seed=0)
    system_state.fit(ss_data.windows, ss_data.targets, epochs=25)

    be_data = build_performance_dataset(
        tiny_traces, signatures, WorkloadKind.BEST_EFFORT, feature_config
    )
    be = PerformancePredictor(feature_config=feature_config, seed=1)
    be.fit(
        be_data.state, be_data.signature, be_data.mode,
        system_state.predict(be_data.state), be_data.targets, epochs=70,
    )
    return Predictor(
        system_state=system_state,
        be_performance=be,
        lc_performance=None,
        signatures=signatures,
        feature_config=feature_config,
    )


@pytest.fixture
def history(feature_config, tiny_traces):
    # A real in-distribution window: predictions on synthetic
    # out-of-distribution counter vectors are unconstrained.
    return tiny_traces[-1].window(600.0, feature_config.history_s)


class TestSystemStateAPI:
    def test_predict_system_state_shape(self, service, history):
        s_hat = service.predict_system_state(history)
        assert s_hat.shape == (7,)
        assert np.all(s_hat >= 0)


class TestPerformanceAPI:
    def test_predict_both_modes(self, service, history):
        estimates = service.predict_both_modes(spark_profile("gmm"), history)
        assert set(estimates) == {MemoryMode.LOCAL, MemoryMode.REMOTE}
        assert all(v > 0 for v in estimates.values())

    def test_remote_predicted_slower_for_sensitive_app(self, service, history):
        estimates = service.predict_both_modes(spark_profile("nweight"), history)
        assert estimates[MemoryMode.REMOTE] > estimates[MemoryMode.LOCAL]

    def test_estimates_distinguish_benchmarks(self, service, history):
        """The universal model must separate long from short benchmarks
        via the signature input (gmm nominal 110 s vs scan 35 s)."""
        gmm = service.predict_performance(
            spark_profile("gmm"), history, MemoryMode.LOCAL
        )
        scan = service.predict_performance(
            spark_profile("scan"), history, MemoryMode.LOCAL
        )
        assert gmm > scan

    def test_signature_management(self, service):
        assert service.has_signature(spark_profile("gmm"))
        fake = spark_profile("gmm").with_overrides(name="unknown-app")
        assert not service.has_signature(fake)

    def test_unknown_signature_raises(self, service, history):
        fake = spark_profile("gmm").with_overrides(name="unknown-app")
        with pytest.raises(KeyError):
            service.predict_performance(fake, history, MemoryMode.LOCAL)

    def test_store_signature(self, service, feature_config):
        rows = np.ones((100, feature_config.n_metrics))
        service.store_signature("new-app", rows)
        assert "new-app" in service.signatures
        service.signatures.drop("new-app")

    def test_no_lc_model_raises(self, service, history):
        from repro.workloads import REDIS

        with pytest.raises(RuntimeError):
            service.predict_performance(REDIS, history, MemoryMode.LOCAL)

    def test_interference_has_no_model(self, service, history):
        with pytest.raises(ValueError):
            service.predict_performance(
                ibench_profile("cpu"), history, MemoryMode.LOCAL
            )


class TestFastPath:
    """Batched dual-mode inference and the per-tick Ŝ memo."""

    def _count_system_state(self, service, monkeypatch):
        calls = {"n": 0}
        real = service.system_state.predict

        def counting(window):
            calls["n"] += 1
            return real(window)

        monkeypatch.setattr(service.system_state, "predict", counting)
        return calls

    def test_batched_matches_sequential(self, service, history):
        profile = spark_profile("gmm")
        sequential = {}
        for mode in (MemoryMode.LOCAL, MemoryMode.REMOTE):
            service.invalidate_memo()  # each call recomputes Ŝ from scratch
            sequential[mode] = service.predict_performance(profile, history, mode)
        service.invalidate_memo()
        batched = service.predict_both_modes(profile, history)
        assert set(batched) == set(sequential)
        for mode, value in sequential.items():
            assert batched[mode] == pytest.approx(value, abs=1e-12)

    def test_memoized_s_hat_identical_to_fresh(self, service, history):
        service.invalidate_memo()
        fresh = service.predict_system_state(history)
        memoized = service.predict_system_state(history)
        assert np.array_equal(fresh, memoized)
        # Returned arrays are copies: mutating one must not poison the memo.
        memoized[:] = -1.0
        assert np.array_equal(service.predict_system_state(history), fresh)

    def test_one_system_state_forward_per_window(
        self, service, history, monkeypatch
    ):
        calls = self._count_system_state(service, monkeypatch)
        service.invalidate_memo()
        service.predict_both_modes(spark_profile("gmm"), history)
        service.predict_both_modes(spark_profile("scan"), history)
        service.predict_system_state(history)
        assert calls["n"] == 1  # all candidates share the memoized Ŝ

    def test_tick_boundary_invalidates_memo(self, service, history, monkeypatch):
        from repro.cluster import ClusterEngine

        calls = self._count_system_state(service, monkeypatch)
        engine = ClusterEngine()
        service.attach(engine)
        service.attach(engine)  # idempotent
        try:
            service.invalidate_memo()
            service.predict_system_state(history)
            service.predict_system_state(history)
            assert calls["n"] == 1
            engine.tick()
            memoized_then_fresh = service.predict_system_state(history)
            assert calls["n"] == 2  # same content, but the tick moved time on
            assert np.all(memoized_then_fresh >= 0)
        finally:
            service.detach(engine)
        engine.tick()  # detached: no hook left behind
        service.detach(engine)  # safe when already detached

    def test_different_window_misses_memo(self, service, history, monkeypatch):
        calls = self._count_system_state(service, monkeypatch)
        service.invalidate_memo()
        service.predict_system_state(history)
        service.predict_system_state(history + 1.0)
        assert calls["n"] == 2

    def test_obs_counters_match_forward_counts(self, service, history):
        from repro import obs

        profile = spark_profile("gmm")
        service.invalidate_memo()
        try:
            obs.enable()
            service.predict_both_modes(profile, history)
            service.predict_both_modes(profile, history)
            service.predict_system_state(history)
            inferences = obs.metrics().counter(
                "predictor_inferences_total",
                "Predictor forward passes",
                labels=("model",),
            )
            # One true system-state forward, recorded under the nested
            # label (regression: it used to double-count under both the
            # outer timing and "system_state").
            assert inferences.labels(model="system_state_nested").value == 1.0
            assert inferences.labels(model="system_state").value == 0.0
            assert inferences.labels(model="be").value == 2.0
            memo_hits = obs.metrics().counter(
                "predictor_memo_hits_total",
                "Inference-memo hits that skipped recomputation",
                labels=("entry",),
            )
            assert memo_hits.labels(entry="system_state").value == 2.0
            assert memo_hits.labels(entry="window").value == 2.0
        finally:
            obs.disable()
