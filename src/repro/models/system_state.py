"""System-state prediction model (§V-B2, Fig. 11a).

Forecasts the mean value of every monitored performance event over the
horizon window z, from the metric time series of the trailing history
window r.  Architecture per the paper: the input sequence is processed
by 2 LSTM layers, then a triplet of non-linear blocks (fully-connected
+ ReLU + batch normalization + dropout) produces the predicted system
state Ŝ.
"""

from __future__ import annotations

import numpy as np

from repro.nn import (
    Adam,
    BatchNorm1d,
    DataLoader,
    Dropout,
    EarlyStopping,
    Linear,
    MSELoss,
    Module,
    ReLU,
    Sequential,
    StackedLSTM,
    StandardScaler,
    TensorDataset,
    Trainer,
    r2_score,
)
from repro.nn.serialization import load_state, save_state
from repro.hardware.counters import METRIC_NAMES
from repro.models.features import FeatureConfig

__all__ = ["SystemStateModel", "SystemStatePredictor"]


def _dense_blocks(
    in_features: int,
    hidden: int,
    out_features: int,
    dropout: float,
    rng: np.random.Generator,
) -> Sequential:
    """The paper's triplet of non-linear blocks plus the output head."""
    return Sequential(
        Linear(in_features, hidden, rng=rng),
        ReLU(),
        BatchNorm1d(hidden),
        Dropout(dropout, rng=rng),
        Linear(hidden, hidden, rng=rng),
        ReLU(),
        BatchNorm1d(hidden),
        Dropout(dropout, rng=rng),
        Linear(hidden, hidden // 2, rng=rng),
        ReLU(),
        BatchNorm1d(hidden // 2),
        Dropout(dropout, rng=rng),
        Linear(hidden // 2, out_features, rng=rng),
    )


class SystemStateModel(Module):
    """2x recurrent layers -> 3 non-linear blocks -> linear head.

    ``cell`` selects the recurrent backbone: ``"lstm"`` (the paper's
    choice) or ``"gru"`` (the architecture ablation).
    """

    def __init__(
        self,
        n_metrics: int = len(METRIC_NAMES),
        lstm_hidden: int = 32,
        lstm_layers: int = 2,
        block_hidden: int = 64,
        dropout: float = 0.1,
        cell: str = "lstm",
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.n_metrics = n_metrics
        if cell == "lstm":
            encoder_cls = StackedLSTM
        elif cell == "gru":
            from repro.nn import StackedGRU

            encoder_cls = StackedGRU
        else:
            raise ValueError(f"unknown cell {cell!r}; choose 'lstm' or 'gru'")
        self.cell = cell
        self.encoder = encoder_cls(
            n_metrics, lstm_hidden, num_layers=lstm_layers,
            return_sequences=False, rng=rng,
        )
        self.head = _dense_blocks(lstm_hidden, block_hidden, n_metrics, dropout, rng)

    def forward(self, windows: np.ndarray) -> np.ndarray:
        """(N, T, n_metrics) history windows -> (N, n_metrics) Ŝ."""
        return self.head.forward(self.encoder.forward(windows))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return self.encoder.backward(self.head.backward(grad))


class SystemStatePredictor:
    """Training/inference wrapper owning the feature and target scalers."""

    def __init__(
        self,
        feature_config: FeatureConfig | None = None,
        lstm_hidden: int = 32,
        block_hidden: int = 64,
        dropout: float = 0.1,
        residual: bool = True,
        cell: str = "lstm",
        seed: int = 0,
    ) -> None:
        self.config = feature_config if feature_config is not None else FeatureConfig()
        self.model = SystemStateModel(
            n_metrics=self.config.n_metrics,
            lstm_hidden=lstm_hidden,
            block_hidden=block_hidden,
            dropout=dropout,
            cell=cell,
            seed=seed,
        )
        self.input_scaler = StandardScaler()
        self.target_scaler = StandardScaler()
        #: With the residual connection the network predicts the *change*
        #: of each metric relative to the history-window mean and the
        #: persistence component is added back at inference time.  The
        #: system metrics are strongly persistent (Fig. 8), so this
        #: focuses model capacity on the hard part of the forecast.
        self.residual = residual
        self.seed = seed
        self._trained = False

    def fit(
        self,
        windows: np.ndarray,
        targets: np.ndarray,
        epochs: int = 30,
        batch_size: int = 64,
        lr: float = 1e-3,
        val_fraction: float = 0.15,
        patience: int = 12,
        verbose: bool = False,
        chaos=None,
        recovery=None,
        checkpoint=None,
        resume: bool = False,
    ) -> None:
        """Train on (N, T, M) windows and (N, M) horizon-mean targets.

        ``chaos``/``recovery``/``checkpoint``/``resume`` pass straight
        through to the resilient training runtime — see
        :meth:`repro.nn.Trainer.fit`.
        """
        windows = np.asarray(windows, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if windows.ndim != 3 or targets.ndim != 2:
            raise ValueError("expected (N, T, M) windows and (N, M) targets")
        if windows.shape[0] != targets.shape[0]:
            raise ValueError("windows and targets must align")
        if self.residual:
            targets = targets - windows.mean(axis=1)
        x = self.input_scaler.fit_transform(windows)
        y = self.target_scaler.fit_transform(targets)

        rng = np.random.default_rng(self.seed)
        n = x.shape[0]
        order = rng.permutation(n)
        n_val = max(1, int(n * val_fraction))
        val_idx, train_idx = order[:n_val], order[n_val:]
        train = TensorDataset(x[train_idx], y[train_idx])
        val = TensorDataset(x[val_idx], y[val_idx])

        trainer = Trainer(
            model=self.model,
            optimizer=Adam(self.model.parameters(), lr=lr),
            loss=MSELoss(),
            name="system_state",
            chaos=chaos,
        )
        trainer.fit(
            DataLoader(train, batch_size=batch_size, shuffle=True, rng=rng),
            DataLoader(val, batch_size=batch_size),
            epochs=epochs,
            early_stopping=EarlyStopping(patience=patience),
            verbose=verbose,
            checkpoint=checkpoint,
            resume=resume,
            recovery=recovery,
        )
        self._trained = True

    def predict(self, windows: np.ndarray) -> np.ndarray:
        """Predict Ŝ for (N, T, M) or a single (T, M) window."""
        if not self._trained:
            raise RuntimeError("predictor must be fit before predicting")
        windows = np.asarray(windows, dtype=np.float64)
        single = windows.ndim == 2
        if single:
            windows = windows[None, ...]
        if self.model.training:  # avoid the sub-tree walk on the hot path
            self.model.eval()
        pred = self.model.forward(self.input_scaler.transform(windows))
        out = self.target_scaler.inverse_transform(pred)
        if self.residual:
            out = out + windows.mean(axis=1)
        # Counter rates are physically non-negative.
        out = np.maximum(out, 0.0)
        return out[0] if single else out

    def evaluate(
        self, windows: np.ndarray, targets: np.ndarray
    ) -> dict[str, float]:
        """Per-metric R² scores plus the average (Table I)."""
        pred = self.predict(windows)
        targets = np.asarray(targets, dtype=np.float64)
        scores = {
            name: r2_score(targets[:, i], pred[:, i])
            for i, name in enumerate(METRIC_NAMES)
        }
        scores["average"] = float(np.mean(list(scores.values())))
        return scores

    # -- persistence --------------------------------------------------------
    def save(self, path) -> None:
        """Persist weights and scaler state to an ``.npz`` archive.

        The architecture hyper-parameters are not stored; loading
        requires constructing a predictor with the same configuration
        (mismatches fail loudly on shape checks).
        """
        if not self._trained:
            raise RuntimeError("cannot save an untrained predictor")
        state = self.model.state_dict()
        state["__input_mean"] = self.input_scaler.mean_
        state["__input_scale"] = self.input_scaler.scale_
        state["__target_mean"] = self.target_scaler.mean_
        state["__target_scale"] = self.target_scaler.scale_
        state["__residual"] = np.array([1.0 if self.residual else 0.0])
        save_state(state, path)

    def load(self, path) -> "SystemStatePredictor":
        """Restore a predictor saved by :meth:`save` (same architecture)."""
        state = load_state(path)
        self.input_scaler.mean_ = state.pop("__input_mean")
        self.input_scaler.scale_ = state.pop("__input_scale")
        self.target_scaler.mean_ = state.pop("__target_mean")
        self.target_scaler.scale_ = state.pop("__target_scale")
        self.residual = bool(state.pop("__residual")[0])
        self.model.load_state_dict(state)
        self._trained = True
        return self
