"""Command-line interface: regenerate paper experiments from the shell.

Usage::

    python -m repro list                       # available experiments
    python -m repro run fig02                  # one experiment
    python -m repro run table1 --scale default
    python -m repro run all --scale quick      # everything (slow)
    python -m repro run fig16 --obs-out out/   # + observability dump
    python -m repro obs out/                   # summarize a dump
    python -m repro obs profile                # ranked phase-cost table
    python -m repro obs perfcheck --headroom 3 # benchmark regression gate
    python -m repro faults sample --out plan.json   # seeded fault plan
    python -m repro run fig16 --faults plan.json    # inject it
    python -m repro train --ckpt fit.ckpt           # crash-safe fit
    python -m repro train --ckpt fit.ckpt --resume  # continue after a crash
    python -m repro retrain --gate                  # gated model promotion
    python -m repro serve --safety env.json         # orchestrator daemon
    python -m repro client health --port 7000       # poke the daemon

Each experiment prints the same rows/series the paper reports.  The
training-based experiments honour ``--scale`` (quick | default | paper).
``--obs-out DIR`` enables the :mod:`repro.obs` layer for the run and
writes ``metrics.json``, ``metrics.prom``, ``trace.json`` (Chrome
trace-event format) and ``decisions.jsonl`` afterwards.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro import obs
from repro.experiments import (
    ablations,
    availability,
    fig02_link_saturation,
    fig03_spark_isolation,
    fig04_lc_isolation,
    fig05_interference_heatmap,
    fig06_correlation,
    fig08_scenarios,
    fig09_10_distributions,
    fig13_be_accuracy,
    fig14_lc_accuracy,
    fig15_generalization,
    fig16_be_orchestration,
    fig17_lc_orchestration,
    fleet_scaling,
    table1_system_state,
    traffic_reduction,
    under_faults,
)
from repro.experiments.common import ExperimentScale, scale_from_env
from repro.workloads import WorkloadKind


def _formatless(run: Callable, *args, **kwargs) -> Callable[[ExperimentScale], str]:
    def runner(scale: ExperimentScale) -> str:
        result = run(*args, **kwargs)
        return result.format()

    return runner


def _scaled(run: Callable, *args, **kwargs) -> Callable[[ExperimentScale], str]:
    def runner(scale: ExperimentScale) -> str:
        result = run(*args, scale=scale, **kwargs)
        return result.format()

    return runner


def _ablation(run: Callable, headers, title) -> Callable[[ExperimentScale], str]:
    from repro.analysis import format_table

    def runner(scale: ExperimentScale) -> str:
        results = run(scale=scale)
        if isinstance(results, dict):
            rows = [(k, f"{v:.3f}") for k, v in sorted(results.items())]
        else:  # beta sweep returns dataclasses
            rows = [
                (f"{p.beta:g}", f"{p.offload_fraction * 100:.1f}%",
                 f"{p.median_drop * 100:+.1f}%")
                for p in results
            ]
        return format_table(headers, rows, title=title)

    return runner


def _recurrent_cell(scale: ExperimentScale) -> str:
    from repro.analysis import format_table

    results = ablations.recurrent_cell_ablation(scale=scale)
    return format_table(
        ["cell", "avg R2", "parameters"],
        [
            (cell, f"{r['r2']:.3f}", f"{int(r['parameters']):,}")
            for cell, r in results.items()
        ],
        title="Recurrent backbone of the system-state model",
    )


EXPERIMENTS: dict[str, tuple[str, Callable[[ExperimentScale], str]]] = {
    "fig02": ("Link saturation sweep (R1-R3)",
              _formatless(fig02_link_saturation.run)),
    "fig03": ("Spark isolation, local vs remote (R4)",
              _formatless(fig03_spark_isolation.run)),
    "fig04": ("LC tail latency vs clients (R4)",
              _formatless(fig04_lc_isolation.run)),
    "fig05": ("Interference heatmap (R5-R7)",
              _formatless(fig05_interference_heatmap.run)),
    "fig06": ("Metric/performance correlation (R8)",
              _scaled(fig06_correlation.run)),
    "fig08": ("Scenario congestion phases",
              _formatless(fig08_scenarios.run)),
    "fig09": ("Spark performance distributions",
              _scaled(fig09_10_distributions.run, WorkloadKind.BEST_EFFORT)),
    "fig10": ("LC performance distributions",
              _scaled(fig09_10_distributions.run, WorkloadKind.LATENCY_CRITICAL)),
    "table1": ("System-state model R2 (Table I)",
               _scaled(table1_system_state.run)),
    "fig13": ("BE model accuracy + stacking ablation",
              _scaled(fig13_be_accuracy.run)),
    "fig14": ("LC model accuracy",
              _scaled(fig14_lc_accuracy.run)),
    "fig15": ("Generalization on unseen applications",
              _scaled(fig15_generalization.run)),
    "fig16": ("BE orchestration vs baselines",
              _scaled(fig16_be_orchestration.run)),
    "fig17": ("LC QoS violations and offloads",
              _scaled(fig17_lc_orchestration.run)),
    "traffic": ("Link data-traffic accounting (§VI-B)",
                _scaled(traffic_reduction.run)),
    "fleet": ("Fleet scaling on the rack memory pool (§VII)",
              _scaled(fleet_scaling.run)),
    "availability": ("Fleet availability under crash/rejoin + device loss",
                     _scaled(availability.run)),
    "fig16-faults": ("BE orchestration under fault injection",
                     _scaled(under_faults.run_fig16)),
    "fig17-faults": ("LC QoS retention under fault injection",
                     _scaled(under_faults.run_fig17)),
    "ablation-window": (
        "History-window ablation",
        _ablation(ablations.window_ablation, ["history s", "avg R2"],
                  "System-state R2 vs history window"),
    ),
    "ablation-capacity": (
        "Model-capacity ablation",
        _ablation(ablations.capacity_ablation, ["hidden", "avg R2"],
                  "System-state R2 vs LSTM hidden width"),
    ),
    "ablation-beta": (
        "Fine-grained beta sweep",
        _ablation(ablations.beta_sweep, ["beta", "offload", "median drop"],
                  "Offload/performance trade-off vs beta"),
    ),
    "ablation-cell": (
        "LSTM vs GRU backbone",
        _recurrent_cell,
    ),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate experiments from the Adrias paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id or 'all'")
    run.add_argument(
        "--scale", choices=("quick", "default", "paper"), default=None,
        help="effort preset for training-based experiments "
             "(default: $ADRIAS_SCALE or quick)",
    )
    run.add_argument(
        "--quick", action="store_true",
        help="shorthand for --scale quick (CI-sized run)",
    )
    run.add_argument(
        "--faults", metavar="PLAN.json", default=None,
        help="inject faults: run every scheduled scenario under the "
             "FaultPlan loaded from PLAN.json (see 'repro faults sample')",
    )
    run.add_argument(
        "--obs-out", metavar="DIR", default=None,
        help="enable observability and dump metrics.json/metrics.prom/"
             "trace.json/decisions.jsonl to DIR after the run",
    )
    run.add_argument(
        "--obs-stream", action="store_true",
        help="also stream per-tick telemetry to DIR/stream.jsonl and "
             "DIR/stream.prom while the run executes (requires --obs-out)",
    )
    faults_cmd = sub.add_parser(
        "faults", help="validate or generate fault-injection plans"
    )
    faults_sub = faults_cmd.add_subparsers(dest="faults_command", required=True)
    validate = faults_sub.add_parser(
        "validate", help="check a plan file and print its schedule"
    )
    validate.add_argument("plan", help="path to a FaultPlan JSON file")
    validate.add_argument(
        "--nodes", type=int, default=None, metavar="N",
        help="also cross-check node_crash/node_rejoin targets against an "
             "N-node fleet (n0..n{N-1})",
    )
    sample = faults_sub.add_parser(
        "sample", help="emit a representative seeded plan"
    )
    sample.add_argument(
        "--seed", type=int, default=0, help="derivation seed (default: 0)"
    )
    sample.add_argument(
        "--duration", type=float, default=900.0,
        help="scenario runway in simulated seconds (default: 900)",
    )
    sample.add_argument(
        "--trainer", action="store_true",
        help="emit a trainer-side plan instead (NaN gradients, checkpoint "
             "write failures, retrain timeouts on the epoch clock)",
    )
    sample.add_argument(
        "--daemon", action="store_true",
        help="emit a serving-daemon plan instead (connection drops and a "
             "wedged tick loop for 'repro serve --faults')",
    )
    sample.add_argument(
        "--availability", action="store_true",
        help="emit a fleet-side plan instead (node crash/rejoin windows "
             "and a pool-device failure for 'repro run availability')",
    )
    sample.add_argument(
        "--nodes", type=int, default=4,
        help="availability plans: fleet size the node targets are drawn "
             "from (default: 4)",
    )
    sample.add_argument(
        "--epochs", type=int, default=12,
        help="trainer plans: epoch runway (default: 12)",
    )
    sample.add_argument(
        "--out", metavar="PLAN.json", default=None,
        help="write the plan here instead of stdout",
    )
    train = sub.add_parser(
        "train", help="fit the system-state model with crash-safe checkpoints"
    )
    train.add_argument(
        "--ckpt", metavar="FILE", required=True,
        help="fit-checkpoint file (written atomically at each epoch boundary)",
    )
    train.add_argument(
        "--resume", action="store_true",
        help="continue bit-identically from the checkpoint if it exists",
    )
    train.add_argument("--epochs", type=int, default=None,
                       help="override the scale's epoch budget")
    train.add_argument("--scale", choices=("quick", "default", "paper"),
                       default=None, help="corpus/effort preset")
    train.add_argument(
        "--kill-after-epoch", type=int, default=None, metavar="N",
        help="SIGKILL the process right after checkpoint N lands "
             "(deterministic crash for resume testing)",
    )
    train.add_argument(
        "--faults", metavar="PLAN.json", default=None,
        help="inject trainer-side faults from this plan "
             "(see 'repro faults sample --trainer')",
    )
    train.add_argument("--seed", type=int, default=0)
    retrain_cmd = sub.add_parser(
        "retrain", help="retrain the performance models (optionally gated)"
    )
    retrain_cmd.add_argument(
        "--gate", action="store_true",
        help="evaluate candidates on a held-out slice and promote only if "
             "val R2 does not regress beyond --tolerance",
    )
    retrain_cmd.add_argument(
        "--tolerance", type=float, default=0.02,
        help="max held-out R2 regression a candidate may show (default: 0.02)",
    )
    retrain_cmd.add_argument("--epochs", type=int, default=None,
                             help="override the scale's epoch budget")
    retrain_cmd.add_argument("--scale", choices=("quick", "default", "paper"),
                             default=None, help="corpus/effort preset")
    retrain_cmd.add_argument(
        "--faults", metavar="PLAN.json", default=None,
        help="inject trainer-side faults from this plan",
    )
    retrain_cmd.add_argument("--seed", type=int, default=0)
    obs_cmd = sub.add_parser(
        "obs",
        help="summarize an observability dump, watch a stream, "
             "profile phases, or gate benchmark regressions",
    )
    obs_cmd.add_argument(
        "target", nargs="+",
        help="directory written by --obs-out; 'watch STREAM.jsonl' to "
             "render the live dashboard; 'report STREAM.jsonl' to print "
             "an offline stream summary; 'profile' to print a ranked "
             "phase-cost table of a congested Adrias scenario; "
             "'perfcheck' to gate a benchmark report against the "
             "committed baseline",
    )
    obs_cmd.add_argument(
        "--once", action="store_true",
        help="watch: print a single frame and exit (non-interactive/CI)",
    )
    obs_cmd.add_argument(
        "--fleet", action="store_true",
        help="watch/report: render the per-node rack view (node tables, "
             "pool arbitration) instead of the single-engine dashboard",
    )
    obs_cmd.add_argument(
        "--exit-on-end", action=argparse.BooleanOptionalAction, default=None,
        help="watch: exit when the stream's end record arrives (default); "
             "--no-exit-on-end keeps following so the watcher rides across "
             "a daemon warm restart appending to the same stream",
    )
    obs_cmd.add_argument(
        "--interval", type=float, default=1.0,
        help="watch: seconds between dashboard refreshes (default: 1)",
    )
    obs_cmd.add_argument(
        "--duration", type=float, default=300.0,
        help="profile: simulated seconds of the profiled scenario "
             "(default: 300)",
    )
    obs_cmd.add_argument(
        "--hidden", type=int, default=32,
        help="profile: LSTM hidden width of the fabricated models "
             "(default: 32)",
    )
    obs_cmd.add_argument(
        "--seed", type=int, default=0,
        help="profile: scenario seed (default: 0)",
    )
    obs_cmd.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="profile: only print the N most expensive phases",
    )
    obs_cmd.add_argument(
        "--trace", metavar="TRACE.json", default=None,
        help="profile: also dump the per-phase timeline as a Chrome "
             "trace-event file (chrome://tracing / Perfetto)",
    )
    obs_cmd.add_argument(
        "--baseline", metavar="PATH",
        default="benchmarks/baselines/BENCH_engine.json",
        help="perfcheck: committed baseline report "
             "(default: benchmarks/baselines/BENCH_engine.json)",
    )
    obs_cmd.add_argument(
        "--current", metavar="PATH", default=None,
        help="perfcheck: freshly measured report; when omitted a fresh "
             "engine bench is run in-process (smoke scale unless --full)",
    )
    obs_cmd.add_argument(
        "--tolerance", type=float, default=0.2,
        help="perfcheck: relative regression allowed per metric "
             "(default: 0.2)",
    )
    obs_cmd.add_argument(
        "--headroom", type=float, default=1.0,
        help="perfcheck: extra baseline-floor divisor for slower "
             "machines, e.g. 3 on shared CI runners (default: 1)",
    )
    obs_cmd.add_argument(
        "--full", action="store_true",
        help="perfcheck: run the full (non-smoke) bench when measuring "
             "in-process",
    )
    serve_cmd = sub.add_parser(
        "serve",
        help="run the long-running orchestrator daemon with a declarative "
             "safety envelope (DESIGN.md §15)",
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default: 0 = OS-assigned, printed on startup)",
    )
    serve_cmd.add_argument("--nodes", type=int, default=2,
                           help="fleet size (default: 2)")
    serve_cmd.add_argument(
        "--max-link-utilization", type=float, default=0.7,
        help="interference-threshold policy knob (default: 0.7)",
    )
    serve_cmd.add_argument(
        "--tick-interval", type=float, default=0.01, metavar="S",
        help="wall seconds per simulated tick (default: 0.01)",
    )
    serve_cmd.add_argument(
        "--watchdog-timeout", type=float, default=1.0, metavar="S",
        help="wall seconds without a completed tick before the watchdog "
             "restarts the engine loop (default: 1)",
    )
    serve_cmd.add_argument(
        "--request-timeout", type=float, default=5.0, metavar="S",
        help="idle seconds before a half-sent request is rejected "
             "(default: 5)",
    )
    serve_cmd.add_argument(
        "--breaker-cooldown", type=float, default=30.0, metavar="S",
        help="simulated seconds the engine breaker stays open after a "
             "watchdog restart (default: 30)",
    )
    serve_cmd.add_argument(
        "--pool-regime", choices=("pooled", "shared-segment"), default=None,
        help="attach a rack memory pool in this regime",
    )
    serve_cmd.add_argument("--pool-capacity", type=float, default=None,
                           metavar="GB", help="rack pool capacity override")
    serve_cmd.add_argument("--pool-bw", type=float, default=None,
                           metavar="GBPS",
                           help="rack fabric aggregate bandwidth override")
    serve_cmd.add_argument("--seed", type=int, default=0)
    serve_cmd.add_argument(
        "--safety", metavar="ENVELOPE.json", default=None,
        help="declarative safety envelope (see --sample-envelope)",
    )
    serve_cmd.add_argument(
        "--sample-envelope", metavar="FILE", nargs="?", const="-",
        default=None,
        help="write a sample safety envelope to FILE (or stdout) and exit",
    )
    serve_cmd.add_argument(
        "--faults", metavar="PLAN.json", default=None,
        help="daemon-side fault plan (see 'repro faults sample --daemon')",
    )
    serve_cmd.add_argument(
        "--checkpoint", metavar="FILE", default=None,
        help="write the crash-safe daemon checkpoint here on drain",
    )
    serve_cmd.add_argument(
        "--resume", metavar="FILE", default=None,
        help="warm-restart from a daemon checkpoint (config, envelope and "
             "fault plan come from the checkpoint)",
    )
    serve_cmd.add_argument(
        "--max-wall-s", type=float, default=None, metavar="S",
        help="auto-drain after this much wall time (soak/CI guard)",
    )
    serve_cmd.add_argument(
        "--paused", action="store_true",
        help="start with the tick loop paused (tests drive 'tick' ops)",
    )
    serve_cmd.add_argument(
        "--obs-out", metavar="DIR", default=None,
        help="enable observability; dump artifacts to DIR after the drain",
    )
    serve_cmd.add_argument(
        "--obs-stream", action="store_true",
        help="also stream live telemetry to DIR/stream.jsonl "
             "(requires --obs-out)",
    )
    client_cmd = sub.add_parser(
        "client", help="send one op to a running 'repro serve' daemon"
    )
    client_cmd.add_argument(
        "client_op",
        choices=("deploy", "complete", "query", "drain", "health", "tick"),
        metavar="OP",
        help="deploy | complete | query | drain | health | tick",
    )
    client_cmd.add_argument("--host", default="127.0.0.1")
    client_cmd.add_argument("--port", type=int, required=True)
    client_cmd.add_argument("--app", default=None,
                            help="deploy: workload name (e.g. redis)")
    client_cmd.add_argument("--duration", type=float, default=None,
                            help="deploy: interference duration override")
    client_cmd.add_argument("--id", dest="req_id", default=None,
                            help="complete/query: deployment id")
    client_cmd.add_argument("--count", type=int, default=1,
                            help="deploy: repeat N times (default: 1)")
    client_cmd.add_argument("--n", type=int, default=1,
                            help="tick: ticks to advance (default: 1)")
    client_cmd.add_argument("--timeout", type=float, default=5.0)
    client_cmd.add_argument("--retries", type=int, default=5)
    args = parser.parse_args(argv)

    if args.command == "list":
        width = max(len(k) for k in EXPERIMENTS)
        for key, (description, _) in EXPERIMENTS.items():
            print(f"{key.ljust(width)}  {description}")
        return 0

    if args.command == "faults":
        from repro.faults.errors import FaultPlanError
        from repro.faults.plan import FaultPlan

        if args.faults_command == "sample":
            try:
                variants = [args.trainer, args.daemon, args.availability]
                if sum(variants) > 1:
                    print("--trainer, --daemon and --availability are "
                          "mutually exclusive", file=sys.stderr)
                    return 2
                if args.trainer:
                    plan = FaultPlan.sample_trainer(
                        seed=args.seed, epochs=args.epochs
                    )
                elif args.daemon:
                    plan = FaultPlan.sample_daemon(
                        seed=args.seed, duration_s=args.duration
                    )
                elif args.availability:
                    plan = FaultPlan.sample_availability(
                        seed=args.seed, duration_s=args.duration,
                        n_nodes=args.nodes,
                    )
                else:
                    plan = FaultPlan.sample(
                        seed=args.seed, duration_s=args.duration
                    )
            except FaultPlanError as error:
                print(str(error), file=sys.stderr)
                return 2
            if args.out is not None:
                plan.to_file(args.out)
                print(f"wrote {args.out}: {len(plan)} fault windows, "
                      f"horizon {plan.horizon_s:.0f}s")
            else:
                print(plan.to_json(), end="")
            return 0
        try:
            plan = FaultPlan.from_file(args.plan)
            if args.nodes is not None:
                plan.validate(args.nodes)
        except FileNotFoundError:
            print(f"no such plan file: {args.plan}", file=sys.stderr)
            return 2
        except FaultPlanError as error:
            print(f"invalid plan: {error}", file=sys.stderr)
            return 2
        shape = "" if args.nodes is None else f", {args.nodes}-node fleet"
        print(f"{args.plan}: valid (seed={plan.seed}, "
              f"{len(plan)} windows, horizon {plan.horizon_s:.0f}s{shape})")
        for spec in plan.faults:
            params = ", ".join(f"{k}={v}" for k, v in sorted(spec.params.items()))
            print(f"  {spec.start_s:8.1f}s +{spec.duration_s:6.1f}s  "
                  f"{spec.kind}  {params}")
        return 0

    if args.command in ("train", "retrain"):
        from repro.faults.errors import FaultPlanError
        from repro.faults.plan import FaultPlan

        plan = None
        if args.faults is not None:
            try:
                plan = FaultPlan.from_file(args.faults)
            except (FileNotFoundError, FaultPlanError) as error:
                print(f"--faults: {error}", file=sys.stderr)
                return 2
        if args.scale is not None:
            import os

            os.environ["ADRIAS_SCALE"] = args.scale
        scale = scale_from_env()

        if args.command == "train":
            from repro.models.training_runtime import run_training

            summary = run_training(
                args.ckpt,
                resume=args.resume,
                epochs=args.epochs,
                scale=scale,
                kill_after_epoch=args.kill_after_epoch,
                plan=plan,
                seed=args.seed,
            )
            print(f"== train: system-state model (scale={summary['scale']}) ==")
            print(f"epochs run:        {summary['epochs']}"
                  + (" (resumed)" if summary["resumed"] else ""))
            print(f"train loss:        {summary['train_loss']:.6f}")
            if summary["val_loss"] is not None:
                print(f"val loss:          {summary['val_loss']:.6f}")
            print(f"recoveries:        {summary['recoveries']}")
            if summary["checkpoint_write_failures"]:
                print("ckpt write fails:  "
                      f"{summary['checkpoint_write_failures']}")
            print(f"model digest:      {summary['digest']}")
            print(f"checkpoint:        {summary['checkpoint']}")
            return 0

        from repro.models.promotion import GateConfig
        from repro.models.training_runtime import run_gated_retrain

        gate = (
            GateConfig(tolerance=args.tolerance, seed=args.seed)
            if args.gate else None
        )
        if gate is None:
            from repro.experiments.common import get_predictor, get_traces
            from repro.models.retraining import retrain as plain_retrain

            plain_retrain(
                get_predictor(scale), list(get_traces(scale)),
                epochs=(
                    args.epochs if args.epochs is not None
                    else scale.epochs_performance
                ),
                seed=args.seed,
            )
            print(f"== retrain: ungated (scale={scale.name}) ==")
            print("performance models rebuilt and swapped unconditionally "
                  "(use --gate for held-out promotion gating)")
            return 0
        summary = run_gated_retrain(
            scale=scale, epochs=args.epochs, gate=gate, plan=plan,
            seed=args.seed,
        )
        print(f"== retrain: gated promotion (scale={summary['scale']}) ==")
        for decision in summary["decisions"]:
            verdict = "promoted" if decision["promoted"] else "kept incumbent"
            detail = f"reason={decision['reason']}"
            if decision["candidate_r2"] is not None:
                detail += f" candidate_r2={decision['candidate_r2']:.3f}"
            if decision["incumbent_r2"] is not None:
                detail += f" incumbent_r2={decision['incumbent_r2']:.3f}"
            print(f"  {decision['kind']:<18} {verdict:<15} {detail}")
        print(f"promoted {summary['promoted']}, rejected {summary['rejected']}")
        return 0

    if args.command == "serve":
        from repro.faults.errors import CheckpointError, FaultPlanError
        from repro.faults.plan import FaultPlan
        from repro.serve import (
            DaemonConfig,
            DaemonServer,
            OrchestratorDaemon,
            SafetyConfigError,
            SafetyEnvelope,
        )

        if args.sample_envelope is not None:
            envelope = SafetyEnvelope.sample()
            if args.sample_envelope == "-":
                import json as _json

                print(_json.dumps(envelope.to_dict(), indent=2))
            else:
                envelope.to_file(args.sample_envelope)
                print(f"wrote {args.sample_envelope}: "
                      f"{len(envelope.constraints)} constraints")
            return 0
        envelope = None
        if args.safety is not None:
            try:
                envelope = SafetyEnvelope.from_file(args.safety)
            except SafetyConfigError as error:
                print(f"--safety: {error}", file=sys.stderr)
                return 2
        plan = None
        if args.faults is not None:
            try:
                plan = FaultPlan.from_file(args.faults)
            except (FileNotFoundError, FaultPlanError) as error:
                print(f"--faults: {error}", file=sys.stderr)
                return 2
        if args.obs_stream and args.obs_out is None:
            parser.error("--obs-stream requires --obs-out DIR")
        if args.obs_out is not None:
            if args.obs_stream:
                obs.enable_live(args.obs_out)
            else:
                obs.enable()
        try:
            if args.resume is not None:
                daemon = OrchestratorDaemon.restore(args.resume)
                print(f"serve: warm restart from {args.resume} "
                      f"(clock {daemon.fleet.now:g}s, "
                      f"{len(daemon.ledger)} ledger entries)")
            else:
                config = DaemonConfig(
                    n_nodes=args.nodes,
                    max_link_utilization=args.max_link_utilization,
                    tick_interval_s=args.tick_interval,
                    watchdog_timeout_s=args.watchdog_timeout,
                    request_timeout_s=args.request_timeout,
                    breaker_cooldown_s=args.breaker_cooldown,
                    pool_regime=args.pool_regime,
                    pool_capacity_gb=args.pool_capacity,
                    pool_bw_gbps=args.pool_bw,
                    seed=args.seed,
                    checkpoint_path=args.checkpoint,
                )
                daemon = OrchestratorDaemon(config, envelope=envelope,
                                            plan=plan)
        except CheckpointError as error:
            print(f"serve: {error}", file=sys.stderr)
            return 2
        daemon.paused = args.paused
        server = DaemonServer(
            daemon, host=args.host, port=args.port,
            max_wall_s=args.max_wall_s,
        )
        code = server.serve()
        if args.obs_out is not None:
            paths = obs.dump(args.obs_out)
            obs.disable()
            print("observability artifacts:")
            for name in sorted(paths):
                print(f"  {paths[name]}")
        return code

    if args.command == "client":
        import json as _json

        from repro.serve import DaemonClient, DaemonClientError

        client = DaemonClient(
            host=args.host, port=args.port,
            timeout_s=args.timeout, retries=args.retries,
        )
        try:
            if args.client_op == "deploy":
                if args.app is None:
                    print("client deploy requires --app", file=sys.stderr)
                    return 2
                responses = [
                    client.deploy(args.app, duration=args.duration)
                    for _ in range(max(1, args.count))
                ]
                for response in responses:
                    print(_json.dumps(response))
                return 0 if all(r.get("ok") for r in responses) else 1
            if args.client_op in ("complete", "query"):
                if args.req_id is None:
                    print(f"client {args.client_op} requires --id",
                          file=sys.stderr)
                    return 2
                response = getattr(client, args.client_op)(args.req_id)
            elif args.client_op == "tick":
                response = client.tick(args.n)
            else:
                response = getattr(client, args.client_op)()
        except DaemonClientError as error:
            print(str(error), file=sys.stderr)
            return 2
        print(_json.dumps(response))
        return 0 if response.get("ok") else 1

    if args.command == "obs":
        if args.target[0] == "profile":
            from repro.obs.perf.bench import profile_run

            tracer = None
            if args.trace is not None:
                from repro.obs.tracing import SpanTracer

                tracer = SpanTracer()
            acct = profile_run(
                duration_s=args.duration,
                hidden=args.hidden,
                seed=args.seed,
                tracer=tracer,
            )
            print(f"phase profile: congested Adrias scenario, "
                  f"{args.duration:g}s simulated (seed={args.seed}, "
                  f"hidden={args.hidden})")
            print(acct.table(top=args.top))
            if tracer is not None:
                with open(args.trace, "w", encoding="utf-8") as handle:
                    handle.write(tracer.to_json())
                print(f"chrome trace: {args.trace}")
            return 0
        if args.target[0] == "perfcheck":
            from repro.obs.perf import gate

            try:
                baseline = gate.load_report(args.baseline)
                if args.current is not None:
                    current = gate.load_report(args.current)
                else:
                    from repro.obs.perf.bench import run_engine_bench

                    print("measuring fresh engine bench "
                          + ("(full)..." if args.full else "(smoke)..."))
                    current = run_engine_bench(smoke=not args.full)
            except (FileNotFoundError, ValueError) as error:
                print(str(error), file=sys.stderr)
                return 2
            try:
                result = gate.compare_reports(
                    baseline, current,
                    tolerance=args.tolerance, headroom=args.headroom,
                )
            except ValueError as error:
                print(str(error), file=sys.stderr)
                return 2
            print(result.format())
            return 0 if result.ok else 1
        if args.target[0] == "watch":
            if len(args.target) != 2:
                print("usage: python -m repro obs watch STREAM.jsonl",
                      file=sys.stderr)
                return 2
            from repro.obs.live.watch import watch

            return watch(
                args.target[1], interval=args.interval, once=args.once,
                fleet=args.fleet, exit_on_end=args.exit_on_end,
            )
        if args.target[0] == "report":
            if len(args.target) != 2:
                print("usage: python -m repro obs report STREAM.jsonl "
                      "[--fleet]", file=sys.stderr)
                return 2
            from repro.obs.live.watch import read_stream, render_frame

            try:
                records, skipped = read_stream(args.target[1])
            except FileNotFoundError as error:
                print(str(error), file=sys.stderr)
                return 2
            if args.fleet:
                from repro.obs.fleet.report import format_fleet_report

                print(format_fleet_report(records, skipped))
            else:
                print(render_frame(records, skipped))
            return 0
        from repro.obs.report import summarize_dir

        try:
            print(summarize_dir(args.target[0]))
        except FileNotFoundError as error:
            print(str(error), file=sys.stderr)
            return 2
        return 0

    if args.quick and args.scale is None:
        args.scale = "quick"
    if args.scale is not None:
        import os

        os.environ["ADRIAS_SCALE"] = args.scale
    scale = scale_from_env()

    targets = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; try 'python -m repro list'",
              file=sys.stderr)
        return 2

    if args.obs_stream and args.obs_out is None:
        parser.error("--obs-stream requires --obs-out DIR")

    fault_plan = None
    if args.faults is not None:
        from repro.faults.errors import FaultPlanError
        from repro.faults.plan import FaultPlan

        try:
            fault_plan = FaultPlan.from_file(args.faults)
        except (FileNotFoundError, FaultPlanError) as error:
            print(f"--faults: {error}", file=sys.stderr)
            return 2

    if args.obs_out is not None:
        if args.obs_stream:
            obs.enable_live(args.obs_out)
        else:
            obs.enable()
    import contextlib

    with contextlib.ExitStack() as stack:
        if fault_plan is not None:
            from repro.faults.runtime import active_plan

            stack.enter_context(active_plan(fault_plan))
            print(f"fault injection: {args.faults} "
                  f"(seed={fault_plan.seed}, {len(fault_plan)} windows)")
        try:
            for target in targets:
                description, runner = EXPERIMENTS[target]
                print(f"== {target}: {description} (scale={scale.name}) ==")
                print(runner(scale))
                print()
        finally:
            if args.obs_out is not None:
                paths = obs.dump(args.obs_out)
                obs.disable()
                print("observability artifacts:")
                for name in sorted(paths):
                    print(f"  {paths[name]}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
