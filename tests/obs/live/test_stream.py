"""StreamExporter: bounded buffering, whole-line flushes, atomicity."""

import json
import os

import pytest

from repro.obs.live.stream import StreamExporter


class TestBuffering:
    def test_emit_buffers_until_flush_every(self, tmp_path):
        path = tmp_path / "s.jsonl"
        exporter = StreamExporter(path, flush_every=4)
        for i in range(3):
            exporter.emit({"i": i})
        assert exporter.pending == 3
        assert path.read_text() == ""  # nothing flushed yet

    def test_auto_flush_at_bound(self, tmp_path):
        path = tmp_path / "s.jsonl"
        exporter = StreamExporter(path, flush_every=4)
        for i in range(4):
            exporter.emit({"i": i})
        assert exporter.pending == 0
        lines = path.read_text().splitlines()
        assert [json.loads(line)["i"] for line in lines] == [0, 1, 2, 3]

    def test_emitted_counts_buffered_and_flushed(self, tmp_path):
        exporter = StreamExporter(tmp_path / "s.jsonl", flush_every=2)
        for i in range(5):
            exporter.emit({"i": i})
        assert exporter.emitted == 5

    def test_flush_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="flush_every"):
            StreamExporter(tmp_path / "s.jsonl", flush_every=0)


class TestCrashSafety:
    def test_every_flushed_line_is_complete_json(self, tmp_path):
        """A kill between flushes loses only the buffer, never tears a
        line: whatever is on disk parses line by line."""
        path = tmp_path / "s.jsonl"
        exporter = StreamExporter(path, flush_every=3)
        for i in range(8):  # two full flushes + 2 buffered
            exporter.emit({"i": i, "payload": "x" * 100})
        # Simulate the kill: drop the exporter without close/flush.
        del exporter
        lines = path.read_text().splitlines()
        assert len(lines) == 6
        for line in lines:
            json.loads(line)  # must not raise

    def test_append_reopens_existing_stream(self, tmp_path):
        path = tmp_path / "s.jsonl"
        first = StreamExporter(path, flush_every=1)
        first.emit({"run": 1})
        first.close()
        second = StreamExporter(path, flush_every=1)
        second.emit({"run": 2})
        second.close()
        runs = [json.loads(line)["run"] for line in path.read_text().splitlines()]
        assert runs == [1, 2]


class TestOpenMetricsSnapshot:
    def test_snapshot_written_on_flush(self, tmp_path):
        prom = tmp_path / "s.prom"
        exporter = StreamExporter(
            tmp_path / "s.jsonl",
            flush_every=64,
            openmetrics_path=prom,
            openmetrics_source=lambda: "metric_a 1\n",
        )
        exporter.emit({"i": 0})
        assert not prom.exists()
        exporter.flush()
        assert prom.read_text() == "metric_a 1\n"

    def test_no_tmp_files_left_behind(self, tmp_path):
        exporter = StreamExporter(
            tmp_path / "s.jsonl",
            openmetrics_path=tmp_path / "s.prom",
            openmetrics_source=lambda: "x 1\n",
        )
        exporter.emit({"i": 0})
        exporter.close()
        leftovers = [p for p in os.listdir(tmp_path) if p.endswith(".tmp")]
        assert leftovers == []


class TestLifecycle:
    def test_close_flushes_and_is_idempotent(self, tmp_path):
        path = tmp_path / "s.jsonl"
        exporter = StreamExporter(path, flush_every=64)
        exporter.emit({"i": 0})
        exporter.close()
        exporter.close()
        assert exporter.closed
        assert json.loads(path.read_text()) == {"i": 0}

    def test_emit_after_close_raises(self, tmp_path):
        exporter = StreamExporter(tmp_path / "s.jsonl")
        exporter.close()
        with pytest.raises(ValueError, match="closed"):
            exporter.emit({"i": 0})
