"""Performance-regression gate over committed benchmark baselines.

Compares a freshly measured benchmark report (``BENCH_engine.json`` /
``BENCH_predictor.json``) against the committed baseline and fails when
any shared throughput metric regresses beyond tolerance.  The gate is
deliberately one-sided: running *faster* than the baseline never fails —
the baseline is a floor, refreshed by committing new numbers.

Two knobs absorb measurement noise:

* ``tolerance`` — the relative regression a metric may show before the
  gate trips (0.2 ⇒ a 20 % slowdown still passes);
* ``headroom`` — an extra divisor on the baseline floor for machines
  slower than the one that produced it (shared CI runners routinely run
  2–3× slower than a quiet dev box).  ``headroom=3`` lets a metric fall
  to a third of the baseline before the tolerance even starts to bite.

Effective floor: ``baseline * (1 - tolerance) / headroom``.

Shared between the ``repro obs perfcheck`` CLI and the CI ``perf-smoke``
job; only metrics present in *both* reports are compared, so a smoke run
(fewer candidate counts, smaller scales) gates the subset it measured.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "GateCheck",
    "GateResult",
    "extract_metrics",
    "compare_reports",
    "load_report",
]


@dataclass(frozen=True)
class GateCheck:
    """One metric's verdict (all gate metrics are higher-is-better)."""

    name: str
    baseline: float
    current: float
    floor: float

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else float("inf")

    @property
    def ok(self) -> bool:
        return self.current >= self.floor


@dataclass
class GateResult:
    """The full comparison; falsy when any check regressed."""

    checks: list[GateCheck] = field(default_factory=list)
    tolerance: float = 0.0
    headroom: float = 1.0

    @property
    def ok(self) -> bool:
        return bool(self.checks) and all(c.ok for c in self.checks)

    @property
    def failures(self) -> list[GateCheck]:
        return [c for c in self.checks if not c.ok]

    def __bool__(self) -> bool:
        return self.ok

    def format(self) -> str:
        lines = [
            f"perf gate: tolerance={self.tolerance:g} headroom={self.headroom:g}",
            f"{'metric':<34} {'baseline':>12} {'current':>12} "
            f"{'ratio':>7} {'floor':>12}  verdict",
        ]
        for check in self.checks:
            verdict = "ok" if check.ok else "REGRESSED"
            lines.append(
                f"{check.name:<34} {check.baseline:>12.2f} "
                f"{check.current:>12.2f} {check.ratio:>6.2f}x "
                f"{check.floor:>12.2f}  {verdict}"
            )
        if not self.checks:
            lines.append("(no comparable metrics between the two reports)")
        lines.append(
            "PASS" if self.ok
            else f"FAIL: {len(self.failures)} metric(s) regressed "
                 f"beyond tolerance"
        )
        return "\n".join(lines)


def _engine_metrics(report: dict) -> dict[str, float]:
    metrics: dict[str, float] = {}
    for scale, entry in report.get("scales", {}).items():
        value = entry.get("ticks_per_sec")
        if value:
            metrics[f"ticks_per_sec[{scale}]"] = float(value)
    for candidates, entry in report.get("decisions", {}).items():
        value = entry.get("decisions_per_sec")
        if value:
            metrics[f"decisions_per_sec[{candidates}]"] = float(value)
    for nodes, entry in report.get("fleet", {}).items():
        value = entry.get("fleet_ticks_per_sec")
        if value:
            metrics[f"fleet_ticks_per_sec[{nodes}]"] = float(value)
    return metrics


def _predictor_metrics(report: dict) -> dict[str, float]:
    metrics: dict[str, float] = {}
    tick = report.get("tick", {})
    if tick.get("speedup"):
        # Fast-path-vs-sequential ratio: machine-speed independent, the
        # primary guard that the batching/memo optimization stays on.
        metrics["tick_speedup"] = float(tick["speedup"])
    if tick.get("fast_s") and report.get("candidates"):
        metrics["tick_candidates_per_sec"] = (
            float(report["candidates"]) / float(tick["fast_s"])
        )
    lstm = report.get("lstm", {})
    if lstm.get("speedup"):
        metrics["lstm_inference_speedup"] = float(lstm["speedup"])
    return metrics


def extract_metrics(report: dict) -> dict[str, float]:
    """Flat ``{name: value}`` of gate-able (higher-is-better) metrics.

    The report kind is self-describing: engine reports carry ``scales``
    / ``decisions`` sections, predictor reports a ``tick`` section.
    """
    kind = report.get("kind")
    if kind == "engine" or "scales" in report or "decisions" in report:
        return _engine_metrics(report)
    if kind == "predictor" or "tick" in report:
        return _predictor_metrics(report)
    raise ValueError(
        "unrecognized benchmark report: expected BENCH_engine.json "
        "(scales/decisions) or BENCH_predictor.json (tick/lstm) shape"
    )


def compare_reports(
    baseline: dict,
    current: dict,
    tolerance: float = 0.2,
    headroom: float = 1.0,
) -> GateResult:
    """Gate ``current`` against ``baseline`` on their shared metrics."""
    if not 0 <= tolerance < 1:
        raise ValueError("tolerance must be in [0, 1)")
    if headroom < 1:
        raise ValueError("headroom must be >= 1")
    base = extract_metrics(baseline)
    cur = extract_metrics(current)
    result = GateResult(tolerance=tolerance, headroom=headroom)
    for name in sorted(base):
        if name not in cur:
            continue
        floor = base[name] * (1.0 - tolerance) / headroom
        result.checks.append(
            GateCheck(
                name=name, baseline=base[name], current=cur[name], floor=floor
            )
        )
    return result


def load_report(path: str | Path) -> dict:
    """Load a benchmark report JSON, with a pointed error when absent."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(
            f"no benchmark report at {path} — run benchmarks/bench_engine.py "
            f"(or bench_predictor.py) with --json first"
        )
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)
