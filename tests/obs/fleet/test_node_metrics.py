"""Node-labeled metrics, fleet audit attribution, per-node phase envelopes."""

from repro import obs
from repro.cluster.engine import ClusterEngine
from repro.cluster.fleet import LeastLoadedPlacement
from repro.cluster.fleet_scenario import FleetScenarioConfig, run_fleet_scenario
from repro.cluster.scenario import ScenarioConfig
from repro.hardware.pool import RemotePoolConfig
from repro.obs.perf.accounting import PhaseAccounting, phases_session
from repro.orchestrator.policies import InterferenceThresholdPolicy
from repro.workloads.base import MemoryMode, WorkloadKind
from repro.workloads.spark import spark_profile

SCENARIO = ScenarioConfig(duration_s=400.0, spawn_interval=(15.0, 30.0), seed=3)


def fleet_config(n_nodes=4):
    return FleetScenarioConfig(
        scenario=SCENARIO, n_nodes=n_nodes, pool=RemotePoolConfig(),
    )


def scheduler():
    return LeastLoadedPlacement(InterferenceThresholdPolicy())


class TestNodeLabels:
    def test_single_node_series_default_to_n0(self):
        with obs.session() as handles:
            engine = ClusterEngine()
            engine.deploy(spark_profile("scan"), MemoryMode.LOCAL)
            engine.run_for(5.0)
            snapshot = handles.metrics.get("engine_ticks_total").snapshot()
        assert snapshot["series"] == [
            {"labels": {"node": "n0"}, "value": 5}
        ]

    def test_fleet_run_exports_series_for_every_node(self):
        with obs.session() as handles:
            run_fleet_scenario(fleet_config(n_nodes=4), scheduler=scheduler())
            prom = handles.metrics.to_prometheus()
            snapshot = handles.metrics.get("engine_ticks_total").snapshot()
        nodes = {s["labels"]["node"] for s in snapshot["series"]}
        assert nodes == {"n0", "n1", "n2", "n3"}
        for node in sorted(nodes):
            assert f'engine_ticks_total{{node="{node}"}}' in prom

    def test_one_registry_serves_the_whole_fleet(self):
        # Node-labeled series live in the session registry, not
        # per-node registries: family count is node-independent.
        with obs.session() as handles:
            run_fleet_scenario(fleet_config(n_nodes=2), scheduler=scheduler())
            families_2 = len(handles.metrics)
        with obs.session() as handles:
            run_fleet_scenario(fleet_config(n_nodes=4), scheduler=scheduler())
            families_4 = len(handles.metrics)
        assert families_2 == families_4

    def test_decision_counter_carries_the_serving_node(self):
        with obs.session() as handles:
            run_fleet_scenario(fleet_config(), scheduler=scheduler())
            family = handles.metrics.get("orchestrator_decisions_total")
            assert family is not None
            snapshot = family.snapshot()
        assert all("node" in s["labels"] for s in snapshot["series"])
        assert len({s["labels"]["node"] for s in snapshot["series"]}) > 1


class TestFleetAudit:
    def test_fleet_placements_produce_audit_rows(self):
        # Regression: the fleet scheduler used to call the wrapped
        # policy's decide() directly, bypassing _observe — fleet runs
        # produced zero audit rows.
        with obs.session() as handles:
            fleet = run_fleet_scenario(fleet_config(), scheduler=scheduler())
            records = list(handles.audit.records)
        # Interference co-runners are deliberately unaudited, so the
        # floor is every completed BE/LC deployment.
        completed = sum(
            1 for r in fleet.records()
            if r.kind is not WorkloadKind.INTERFERENCE
        )
        assert len(records) >= completed > 0

    def test_audit_rows_attribute_the_serving_node(self):
        with obs.session() as handles:
            run_fleet_scenario(fleet_config(n_nodes=4), scheduler=scheduler())
            records = list(handles.audit.records)
        nodes = {record.node for record in records}
        assert nodes <= {"n0", "n1", "n2", "n3"}
        assert len(nodes) > 1  # placement really spread across the rack
        assert all(record.to_dict()["node"] == record.node
                   for record in records)

    def test_audit_joins_journeys_by_decision_key(self):
        with obs.session() as handles:
            fleet = run_fleet_scenario(fleet_config(), scheduler=scheduler())
            journal = fleet.journal
            journey_keys = {
                (j.app_name, round(j.decided_s, 6)) for j in journal.journeys
            }
            audit_keys = {
                (r.app_name, round(r.sim_time, 6))
                for r in handles.audit.records
            }
        assert audit_keys
        assert audit_keys <= journey_keys

    def test_single_node_audit_defaults_to_n0(self):
        from repro.cluster.scenario import run_scenario
        from repro.orchestrator.policies import RandomPolicy

        with obs.session() as handles:
            run_scenario(
                ScenarioConfig(duration_s=150.0, seed=6),
                scheduler=RandomPolicy(seed=3),
            )
            records = list(handles.audit.records)
        assert records
        assert {record.node for record in records} == {"n0"}


class TestPerNodePhaseEnvelopes:
    def test_fleet_tick_records_per_node_envelopes(self):
        with phases_session() as acct:
            fleet = run_fleet_scenario(
                fleet_config(n_nodes=2), scheduler=scheduler()
            )
        snapshot = acct.snapshot()
        assert "engine.tick[n0]" in snapshot
        assert "engine.tick[n1]" in snapshot
        per_node_calls = sum(
            snapshot[f"engine.tick[n{i}]"]["calls"] for i in range(2)
        )
        assert per_node_calls == snapshot["engine.tick"]["calls"]
        assert fleet.now > 0

    def test_single_node_engine_records_no_bracket_envelope(self):
        engine = ClusterEngine()
        with phases_session() as acct:
            engine.run_for(3.0)
        assert "engine.tick" in acct.snapshot()
        assert not any("[" in name for name in acct.snapshot())

    def test_table_excludes_envelopes_from_leaf_share(self):
        acct = PhaseAccounting()
        acct.add("engine.tick", 2.0)
        acct.add("engine.tick[n0]", 1.0)
        acct.add("engine.tick[n1]", 1.0)
        acct.add("engine.tick_hooks", 3.0)  # leaf despite the prefix
        acct.add("engine.advance", 1.0)
        table = acct.table()
        lines = {
            line.split()[0]: line for line in table.splitlines()[1:]
        }
        assert lines["engine.tick"].endswith("0.0%")
        assert lines["engine.tick[n0]"].endswith("0.0%")
        # Leaves share 3.0 + 1.0 = 4.0s between them.
        assert lines["engine.tick_hooks"].endswith("75.0%")
        assert lines["engine.advance"].endswith("25.0%")
