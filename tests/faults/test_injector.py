"""FaultInjector wiring, link/telemetry/predictor effects and inertness."""

import numpy as np
import pytest

from repro.cluster.engine import ClusterEngine, RemoteUnavailableError
from repro.faults.errors import InferenceTimeout
from repro.faults.injector import FaultedLink, FaultInjector, PredictorChaos
from repro.faults.plan import FaultPlan, FaultSpec
from repro.hardware import Testbed, TestbedConfig
from repro.workloads import MemoryMode, spark_profile


def plan_of(*specs, seed=7):
    return FaultPlan(faults=tuple(specs), seed=seed)


def make_engine(seed=0):
    return ClusterEngine(testbed=Testbed(TestbedConfig(seed=seed)))


class TestAttachDetach:
    def test_attach_wraps_link_and_detach_restores(self):
        engine = make_engine()
        original_link = engine.testbed.link
        injector = FaultInjector(plan_of(), scenario_seed=1)
        injector.attach(engine)
        assert isinstance(engine.testbed.link, FaultedLink)
        assert engine.testbed.link.inner is original_link
        injector.detach()
        assert engine.testbed.link is original_link
        assert not engine._tick_hooks
        injector.detach()  # idempotent

    def test_double_attach_rejected(self):
        engine = make_engine()
        injector = FaultInjector(plan_of())
        injector.attach(engine)
        with pytest.raises(RuntimeError, match="already attached"):
            injector.attach(engine)

    def test_detach_clears_predictor_chaos_and_remote_block(self):
        class FakePredictor:
            chaos = None

        engine = make_engine()
        predictor = FakePredictor()
        injector = FaultInjector(
            plan_of(
                FaultSpec(kind="link_outage", start_s=0.0, duration_s=50.0)
            )
        )
        injector.attach(engine, predictor=predictor)
        assert isinstance(predictor.chaos, PredictorChaos)
        assert engine.remote_blocked  # window opens at t=0
        injector.detach()
        assert predictor.chaos is None
        assert not engine.remote_blocked


class TestLinkFaults:
    def test_degrade_window_scales_capacity_and_latency(self):
        engine = make_engine()
        injector = FaultInjector(
            plan_of(
                FaultSpec(
                    kind="link_degrade", start_s=0.0, duration_s=100.0,
                    params={"capacity_factor": 0.5, "latency_factor": 1.5},
                )
            )
        )
        injector.attach(engine)
        healthy = engine.testbed.link.inner.resolve(2.0)
        degraded = engine.testbed.link.resolve(2.0)
        assert degraded.delivered_gbps == pytest.approx(1.25)  # 2.5 * 0.5
        assert degraded.utilization == pytest.approx(2.0 / 1.25)
        assert degraded.latency_cycles > healthy.latency_cycles
        # After the window the proxy is transparent.
        engine.run_for(150.0)
        assert engine.testbed.link.resolve(2.0) == healthy

    def test_outage_delivers_only_drain_trickle_and_blocks_remote(self):
        engine = make_engine()
        injector = FaultInjector(
            plan_of(
                FaultSpec(kind="link_outage", start_s=10.0, duration_s=30.0)
            )
        )
        injector.attach(engine)
        assert not engine.remote_blocked
        engine.run_for(15.0)
        assert engine.remote_blocked
        state = engine.testbed.link.resolve(2.0)
        # Only the FPGA back-pressure drain survives: 2% of 2.5 Gbps.
        assert state.delivered_gbps == pytest.approx(2.5 * 0.02)
        assert state.backpressure == pytest.approx(2.0 / (2.5 * 0.02))
        with pytest.raises(RemoteUnavailableError):
            engine.deploy(spark_profile("scan"), MemoryMode.REMOTE)
        engine.run_for(30.0)  # window closes
        assert not engine.remote_blocked
        engine.deploy(spark_profile("scan"), MemoryMode.REMOTE)


class TestTelemetryFaults:
    def test_dropout_blanks_whole_rows(self):
        engine = make_engine()
        injector = FaultInjector(
            plan_of(
                FaultSpec(
                    kind="telemetry_dropout", start_s=5.0, duration_s=20.0,
                    params={"probability": 1.0},
                )
            )
        )
        injector.attach(engine)
        engine.run_for(40.0)
        rows = engine.trace._counter_rows
        times = engine.trace.times
        in_window = [r for t, r in zip(times, rows) if 5.0 <= t < 25.0 + 1.0]
        outside = [r for t, r in zip(times, rows) if t < 5.0 or t > 26.0]
        assert any(np.isnan(r).all() for r in in_window)
        assert all(np.isfinite(r).all() for r in outside)
        assert injector.injected["telemetry_dropped_samples"] > 0

    def test_corrupt_plants_partial_nans(self):
        engine = make_engine()
        injector = FaultInjector(
            plan_of(
                FaultSpec(
                    kind="telemetry_corrupt", start_s=0.0, duration_s=30.0,
                    params={"probability": 0.3},
                )
            ),
            scenario_seed=3,
        )
        injector.attach(engine)
        engine.run_for(30.0)
        nan_counts = [int(np.isnan(r).sum()) for r in engine.trace._counter_rows]
        assert injector.injected["telemetry_corrupted_values"] == sum(nan_counts)
        assert sum(nan_counts) > 0
        # p = 0.3 should leave most rows partially intact.
        assert any(0 < n < engine.trace._counter_rows[0].size for n in nan_counts)


class TestPredictorChaos:
    def _injector_at(self, spec, now=10.0):
        engine = make_engine()
        injector = FaultInjector(plan_of(spec))
        injector.attach(engine)
        engine.run_for(now)
        return injector

    def test_delay_over_deadline_raises_timeout(self):
        injector = self._injector_at(
            FaultSpec(
                kind="predictor_delay", start_s=0.0, duration_s=60.0,
                params={"latency_s": 5.0},
            )
        )
        chaos = PredictorChaos(injector)
        with pytest.raises(InferenceTimeout) as excinfo:
            chaos.before_inference("be", deadline_s=1.0)
        assert excinfo.value.latency_s == 5.0
        assert excinfo.value.deadline_s == 1.0
        # No deadline -> slow but not fatal.
        chaos.before_inference("be", deadline_s=None)
        # Deadline above the injected latency -> fine.
        chaos.before_inference("be", deadline_s=10.0)

    def test_nan_corruption_replaces_estimates(self):
        injector = self._injector_at(
            FaultSpec(
                kind="predictor_nan", start_s=0.0, duration_s=60.0,
                params={"probability": 1.0, "value": "nan"},
            )
        )
        chaos = PredictorChaos(injector)
        out = chaos.corrupt_output("be", np.array([12.0, 40.0]))
        assert np.isnan(out).all()

    def test_inf_corruption(self):
        injector = self._injector_at(
            FaultSpec(
                kind="predictor_nan", start_s=0.0, duration_s=60.0,
                params={"probability": 1.0, "value": "inf"},
            )
        )
        out = PredictorChaos(injector).corrupt_output("lc", np.array([3.0]))
        assert np.isinf(out).all()

    def test_outside_window_is_identity(self):
        injector = self._injector_at(
            FaultSpec(
                kind="predictor_nan", start_s=100.0, duration_s=10.0,
                params={"probability": 1.0},
            ),
            now=10.0,
        )
        values = np.array([12.0, 40.0])
        out = PredictorChaos(injector).corrupt_output("be", values)
        assert out is values


class TestInertness:
    def test_empty_plan_leaves_run_bit_identical(self):
        plain = make_engine(seed=5)
        plain.deploy(spark_profile("scan"), MemoryMode.REMOTE)
        plain.run_for(60.0)

        injected = make_engine(seed=5)
        injector = FaultInjector(plan_of(), scenario_seed=5)
        rng_before = injector.rng.bit_generator.state["state"]
        injector.attach(injected)
        injected.deploy(spark_profile("scan"), MemoryMode.REMOTE)
        injected.run_for(60.0)

        for a, b in zip(plain.trace._counter_rows, injected.trace._counter_rows):
            assert np.array_equal(a, b)
        assert plain.trace.times == injected.trace.times
        # The fault RNG was never consulted.
        assert injector.rng.bit_generator.state["state"] == rng_before

    def test_windows_beyond_horizon_are_inert(self):
        spec = FaultSpec(
            kind="telemetry_dropout", start_s=500.0, duration_s=10.0,
            params={"probability": 1.0},
        )
        plain = make_engine(seed=6)
        plain.run_for(50.0)
        injected = make_engine(seed=6)
        FaultInjector(plan_of(spec), scenario_seed=6).attach(injected)
        injected.run_for(50.0)
        for a, b in zip(plain.trace._counter_rows, injected.trace._counter_rows):
            assert np.array_equal(a, b)
