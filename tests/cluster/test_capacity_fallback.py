"""Capacity-pressure behaviour of the scenario runner.

When the chosen pool cannot host an arrival the runner falls back to
the other pool, and drops the arrival only when both are exhausted.
"""


from repro.cluster import ScenarioConfig, run_scenario
from repro.hardware import NodeConfig, TestbedConfig
from repro.workloads import MemoryMode, spark_profile


class TestCapacityFallback:
    def test_remote_overflow_falls_back_to_local(self):
        # Remote pool fits a single 8 GB app; everything else must land
        # in local DRAM instead of being dropped.
        config = ScenarioConfig(duration_s=300.0, spawn_interval=(10, 20), seed=1)
        testbed = TestbedConfig(node=NodeConfig(remote_gb=9.0))

        def all_remote(profile, engine):
            return MemoryMode.REMOTE

        trace = run_scenario(config, scheduler=all_remote,
                             pool=[spark_profile("scan")],
                             testbed_config=testbed)
        assert len(trace.records) > 1
        local = [r for r in trace.records if r.mode is MemoryMode.LOCAL]
        assert local, "overflow arrivals must fall back to local memory"

    def test_total_exhaustion_drops_arrivals(self):
        config = ScenarioConfig(duration_s=300.0, spawn_interval=(10, 20), seed=2)
        testbed = TestbedConfig(node=NodeConfig(dram_gb=9.0, remote_gb=9.0))

        def all_local(profile, engine):
            return MemoryMode.LOCAL

        # gmm runs 110 s with an 8 GB footprint: at one arrival every
        # 10-20 s both 9 GB pools saturate and later arrivals drop.
        trace = run_scenario(config, scheduler=all_local,
                             pool=[spark_profile("gmm")],
                             testbed_config=testbed)
        from repro.cluster import generate_arrivals

        arrivals = generate_arrivals(config, pool=[spark_profile("gmm")])
        assert len(trace.records) < len(arrivals)
        assert len(trace.records) >= 1
