"""Experiment §VI-B (last paragraph) — Adrias' impact on data traffic.

Quantifies the data transmitted over the FPGA interconnection under
each policy.  Expected shape: at comparable offload counts, Adrias
generates substantially less channel traffic than Random/Round-Robin
(paper: 45% less than Random at β=0.8, 23% less than Round-Robin at
β=0.7, up to 55% less at matched offload counts), because it favors
less memory-intensive applications for remote placement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import format_table
from repro.experiments.common import (
    ExperimentScale,
    eval_scenario_configs,
    get_predictor,
    scale_from_env,
)
from repro.orchestrator.evaluation import compare_policies
from repro.orchestrator.policies import AdriasPolicy, RandomPolicy, RoundRobinPolicy

__all__ = ["TrafficResult", "run"]


@dataclass(frozen=True)
class TrafficEntry:
    policy: str
    offload_fraction: float
    traffic_gb: float

    def traffic_per_offload(self) -> float:
        """Link traffic normalized by offload fraction (memory intensity
        of what the policy chose to offload)."""
        if self.offload_fraction == 0:
            return 0.0
        return self.traffic_gb / self.offload_fraction


@dataclass(frozen=True)
class TrafficResult:
    entries: dict[str, TrafficEntry]

    def reduction_vs(self, adrias: str, baseline: str) -> float:
        """Relative traffic reduction of Adrias vs a baseline policy."""
        base = self.entries[baseline].traffic_gb
        if base == 0:
            raise ValueError(f"baseline {baseline!r} generated no traffic")
        return 1.0 - self.entries[adrias].traffic_gb / base

    def intensity_reduction_vs(self, adrias: str, baseline: str) -> float:
        """Traffic-per-offload reduction (the 'favors less memory-
        intensive applications' effect)."""
        base = self.entries[baseline].traffic_per_offload()
        if base == 0:
            raise ValueError(f"baseline {baseline!r} offloaded nothing")
        return 1.0 - self.entries[adrias].traffic_per_offload() / base

    def format(self) -> str:
        rows = [
            (
                e.policy,
                f"{e.offload_fraction * 100:.1f}%",
                f"{e.traffic_gb:.1f}",
                f"{e.traffic_per_offload():.1f}",
            )
            for e in self.entries.values()
        ]
        return format_table(
            ["policy", "offload", "link traffic GB", "GB per offload unit"],
            rows,
            title="§VI-B — data traffic over the FPGA interconnection",
        )


def run(
    scale: ExperimentScale | None = None,
    betas: tuple[float, ...] = (0.8, 0.7),
) -> TrafficResult:
    scale = scale if scale is not None else scale_from_env()
    predictor = get_predictor(scale)
    policies = {
        "random": RandomPolicy(seed=scale.seed + 3),
        "round-robin": RoundRobinPolicy(),
    }
    for beta in betas:
        policies[f"adrias-{beta:g}"] = AdriasPolicy(
            predictor, beta=beta, default_qos_ms=6.0
        )
    results = compare_policies(policies, eval_scenario_configs(scale))
    entries = {
        name: TrafficEntry(
            policy=name,
            offload_fraction=result.offload_fraction(),
            traffic_gb=result.total_link_traffic_gb(),
        )
        for name, result in results.items()
    }
    return TrafficResult(entries=entries)
