"""Orchestration evaluation harness (§VI-B).

Replays identical arrival sequences under different scheduling policies
and aggregates the quantities the paper reports:

* per-benchmark performance distributions and local/remote placement
  counts (Fig. 16);
* QoS violations and offload counts for LC applications (Fig. 17);
* total data traffic over the FPGA interconnection (§VI-B last
  paragraph).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.scenario import ScenarioConfig, Scheduler, run_scenario
from repro.cluster.trace import Trace
from repro.obs.live.slo import peak_burn_rate
from repro.workloads.base import MemoryMode, WorkloadKind

__all__ = [
    "PolicyResult",
    "compare_policies",
    "qos_violations",
    "burn_rate_summary",
]


@dataclass
class PolicyResult:
    """Aggregated outcome of one policy over a set of scenarios."""

    policy_name: str
    traces: list[Trace] = field(default_factory=list)

    # -- per-benchmark views -------------------------------------------------
    def performances(self, name: str) -> np.ndarray:
        """Performance samples (runtime or p99) for one benchmark."""
        values = [
            r.performance
            for trace in self.traces
            for r in trace.records_for(name)
        ]
        return np.asarray(values)

    def placement_counts(self, name: str) -> tuple[int, int]:
        """(local, remote) deployment counts for one benchmark."""
        local = remote = 0
        for trace in self.traces:
            for record in trace.records_for(name):
                if record.mode is MemoryMode.REMOTE:
                    remote += 1
                else:
                    local += 1
        return local, remote

    def median_performance(self, name: str) -> float:
        values = self.performances(name)
        if values.size == 0:
            return float("nan")
        return float(np.median(values))

    # -- aggregates -------------------------------------------------------------
    def offload_fraction(self, kind: WorkloadKind | None = None) -> float:
        records = [
            r
            for trace in self.traces
            for r in trace.records
            if r.kind is not WorkloadKind.INTERFERENCE
            and (kind is None or r.kind is kind)
        ]
        if not records:
            return 0.0
        remote = sum(1 for r in records if r.mode is MemoryMode.REMOTE)
        return remote / len(records)

    def total_link_traffic_gb(self) -> float:
        return sum(trace.total_link_traffic_gb() for trace in self.traces)

    def benchmark_names(self, kind: WorkloadKind) -> list[str]:
        names = {
            r.name
            for trace in self.traces
            for r in trace.records_of_kind(kind)
        }
        return sorted(names)


def compare_policies(
    policies: dict[str, Scheduler],
    scenario_configs: list[ScenarioConfig],
    pool=None,
) -> dict[str, PolicyResult]:
    """Replay every scenario under every policy.

    Arrival sequences are regenerated from the scenario seed, so all
    policies face the same workloads at the same instants — only the
    memory-mode decisions differ (the §VI-B methodology).
    """
    if not policies:
        raise ValueError("no policies given")
    if not scenario_configs:
        raise ValueError("no scenarios given")
    results: dict[str, PolicyResult] = {}
    for policy_name, scheduler in policies.items():
        result = PolicyResult(policy_name=policy_name)
        for config in scenario_configs:
            result.traces.append(
                run_scenario(config, scheduler=scheduler, pool=pool)
            )
        results[policy_name] = result
    return results


def qos_violations(
    result: PolicyResult, qos_p99_ms: dict[str, float]
) -> dict[str, dict[str, int]]:
    """Count QoS violations and offloads per LC benchmark (Fig. 17).

    A deployment violates its QoS when its measured p99 exceeds the
    constraint, regardless of the memory mode it ran in.
    """
    summary: dict[str, dict[str, int]] = {}
    for name, qos in qos_p99_ms.items():
        if qos <= 0:
            raise ValueError(f"QoS for {name!r} must be positive")
        violations = offloads = total = 0
        for trace in result.traces:
            for record in trace.records_for(name):
                total += 1
                if record.p99_ms > qos:
                    violations += 1
                if record.mode is MemoryMode.REMOTE:
                    offloads += 1
        summary[name] = {
            "violations": violations,
            "offloads": offloads,
            "total": total,
        }
    return summary


def burn_rate_summary(
    result: PolicyResult,
    qos_p99_ms: dict[str, float],
    objective: float = 0.99,
    windows: tuple[float, ...] = (60.0, 600.0),
) -> dict[str, dict]:
    """Post-hoc SLO burn-rate view of a policy result.

    For each LC benchmark, classifies every finished deployment against
    its QoS (the :func:`qos_violations` predicate) and reports the *peak*
    error-budget burn rate per trailing window — the offline counterpart
    of the live ``slo_burn_rate`` gauge, computed with the same
    :func:`repro.obs.live.slo.peak_burn_rate` arithmetic.  Scenario sim
    clocks restart at zero between replays, so the peak is taken per
    trace and the maximum across traces is reported.
    """
    summary: dict[str, dict] = {}
    for name, qos in qos_p99_ms.items():
        if qos <= 0:
            raise ValueError(f"QoS for {name!r} must be positive")
        violations = total = 0
        peaks = {f"{w:g}": 0.0 for w in windows}
        for trace in result.traces:
            events = sorted(
                (r.finish_time, r.p99_ms > qos)
                for r in trace.records_for(name)
            )
            if not events:
                continue
            total += len(events)
            violations += sum(1 for _, bad in events if bad)
            for window in windows:
                rate = peak_burn_rate(events, window, objective)
                key = f"{window:g}"
                if rate > peaks[key]:
                    peaks[key] = rate
        summary[name] = {
            "violations": violations,
            "total": total,
            "peak_burn": peaks,
        }
    return summary
