import numpy as np
import pytest

from repro.nn import Parameter


class TestParameter:
    def test_stores_float64_copy_semantics(self):
        p = Parameter(np.array([1, 2, 3], dtype=np.int32), "w")
        assert p.value.dtype == np.float64
        assert p.shape == (3,)
        assert p.size == 3

    def test_grad_starts_zero_and_matches_shape(self):
        p = Parameter(np.ones((2, 3)))
        assert p.grad.shape == (2, 3)
        assert np.all(p.grad == 0)

    def test_accumulate_adds(self):
        p = Parameter(np.zeros(4))
        p.accumulate(np.ones(4))
        p.accumulate(2 * np.ones(4))
        assert np.allclose(p.grad, 3.0)

    def test_zero_grad_resets_in_place(self):
        p = Parameter(np.zeros(2))
        buffer = p.grad
        p.accumulate(np.ones(2))
        p.zero_grad()
        assert np.all(p.grad == 0)
        assert p.grad is buffer  # in-place: optimizers keep aliases

    def test_accumulate_broadcast_mismatch_raises(self):
        p = Parameter(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            p.accumulate(np.ones((3, 3)))
