"""ThymesisFlow interconnect model.

Encodes the three regimes measured in §IV-B on the real prototype:

* **R1 — bounded throughput.** Delivered bandwidth saturates at
  ``capacity_gbps`` (~2.5 Gbps) no matter the offered load.
* **R2 — two-level latency.** Channel latency sits at ~350 cycles until
  the channel saturates, then the FPGA back-pressure mechanism delays
  transactions and latency plateaus at ~900 cycles.  The transition is a
  logistic in offered-load/capacity.
* **Back-pressure stretch.** Once offered load exceeds capacity, every
  remote access is delayed proportionally (offered/delivered), which the
  cluster engine turns into per-application slowdown.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.hardware.config import LinkConfig

__all__ = ["LinkState", "ThymesisFlowLink"]

#: Histogram edges spanning the two latency regimes (R2): the ~350-cycle
#: unloaded level, the logistic ramp, and the ~900-cycle plateau.
_LATENCY_BUCKETS = (360.0, 400.0, 500.0, 600.0, 700.0, 800.0, 900.0)


@dataclass(frozen=True)
class LinkState:
    """Resolved channel state for one simulation tick."""

    offered_gbps: float
    delivered_gbps: float
    utilization: float          # offered / capacity (can exceed 1)
    latency_cycles: float
    backpressure: float         # >= 1; offered / delivered stretch factor
    base_latency_cycles: float = 350.0

    @property
    def saturated(self) -> bool:
        return self.utilization >= 1.0

    @property
    def latency_ratio(self) -> float:
        """Fractional latency increase over the unloaded channel (>= 0)."""
        return max(0.0, self.latency_cycles / self.base_latency_cycles - 1.0)


class ThymesisFlowLink:
    """Analytic model of the FPGA-to-FPGA OpenCAPI channel."""

    def __init__(self, config: LinkConfig | None = None) -> None:
        self.config = config if config is not None else LinkConfig()

    def resolve(
        self,
        offered_gbps: float,
        capacity_factor: float = 1.0,
        latency_factor: float = 1.0,
    ) -> LinkState:
        """Compute delivered throughput, latency and back-pressure.

        Parameters
        ----------
        offered_gbps:
            Aggregate remote-memory bandwidth demanded by all
            applications currently in remote mode.
        capacity_factor:
            Health of the channel in [0, 1]: 1 is the nominal capacity,
            fractions model partial degradation and 0 a full outage —
            the channel then delivers only the FPGA drain trickle
            (``LinkConfig.outage_drain_fraction``), so back-pressure
            stays finite while everything remote crawls.
        latency_factor:
            Multiplier (>= 1) on the resolved channel latency, modelling
            retransmission-induced latency spikes.
        """
        if offered_gbps < 0:
            raise ValueError("offered bandwidth cannot be negative")
        if not 0.0 <= capacity_factor <= 1.0:
            raise ValueError("capacity_factor must be in [0, 1]")
        if latency_factor < 1.0:
            raise ValueError("latency_factor must be >= 1")
        cfg = self.config
        healthy = capacity_factor == 1.0
        effective_fraction = (
            1.0 if healthy else max(capacity_factor, cfg.outage_drain_fraction)
        )
        capacity = cfg.capacity_gbps * effective_fraction
        delivered = min(offered_gbps, capacity)
        utilization = offered_gbps / capacity
        latency = self.latency_at(utilization) * latency_factor
        backpressure = 1.0 if delivered == 0 else max(1.0, offered_gbps / delivered)
        if obs.enabled():
            metrics = obs.metrics()
            regime = (
                "outage" if capacity_factor == 0.0
                else "degraded" if not healthy or latency_factor > 1.0
                else "idle" if offered_gbps == 0
                else "saturated" if utilization >= 1.0
                else "linear"
            )
            metrics.counter(
                "link_resolves_total",
                "Channel-state resolutions by saturation regime",
                labels=("regime",),
            ).labels(regime=regime).inc()
            metrics.histogram(
                "link_latency_cycles",
                "Resolved channel latency per tick (cycles)",
                buckets=_LATENCY_BUCKETS,
            ).observe(latency)
        return LinkState(
            offered_gbps=offered_gbps,
            delivered_gbps=delivered,
            utilization=utilization,
            latency_cycles=latency,
            backpressure=backpressure,
            base_latency_cycles=cfg.base_latency_cycles,
        )

    def latency_at(self, utilization: float) -> float:
        """Two-regime latency: logistic ramp from base to saturated.

        Below the knee the channel keeps up and latency is flat (R2);
        past it the back-pressure FIFO delays transactions and latency
        steps up to the plateau.
        """
        cfg = self.config
        span = cfg.saturated_latency_cycles - cfg.base_latency_cycles
        x = cfg.saturation_sharpness * (utilization - cfg.saturation_knee)
        # Stable logistic.
        if x >= 0:
            ramp = 1.0 / (1.0 + np.exp(-x))
        else:
            ex = np.exp(x)
            ramp = ex / (1.0 + ex)
        return float(cfg.base_latency_cycles + span * ramp)

    def flits(self, delivered_gbps: float, dt_s: float = 1.0) -> int:
        """Number of 32-byte flits moved in ``dt_s`` seconds (one way)."""
        if delivered_gbps < 0 or dt_s < 0:
            raise ValueError("arguments must be non-negative")
        bytes_moved = delivered_gbps * 1e9 / 8.0 * dt_s
        return int(bytes_moved / self.config.flit_bytes)
