"""Ablation — fine-grained β sweep (DESIGN.md §5.4).

Extends Fig. 16's five β points to a finer grid, mapping the full
offload/performance trade-off curve that the slack parameter controls.
"""

from benchmarks.conftest import run_once
from repro.analysis import format_table
from repro.experiments import ablations


def test_ablation_beta_sweep(benchmark, report, scale, strict):
    points = run_once(benchmark, ablations.beta_sweep, scale=scale)
    report(format_table(
        ["beta", "BE offload", "median drop"],
        [
            (f"{p.beta:g}", f"{p.offload_fraction * 100:.1f}%",
             f"{p.median_drop * 100:+.1f}%")
            for p in points
        ],
        title="Ablation — offload/performance trade-off vs beta",
    ))

    betas = [p.beta for p in points]
    offloads = [p.offload_fraction for p in points]
    assert betas == sorted(betas, reverse=True)
    # Offload fraction is (weakly) monotone as beta falls.
    assert all(b >= a - 0.05 for a, b in zip(offloads, offloads[1:]))
    # The curve spans the full range: near-zero to majority offload.
    assert offloads[0] <= 0.2
    assert offloads[-1] >= 0.4
    if strict:
        # Cost is monotone too: more offloading never helps the median
        # beyond noise.
        drops = [p.median_drop for p in points]
        assert drops[-1] > drops[0]
