"""Fault plans: declarative, seeded, JSON-serializable fault schedules.

A :class:`FaultPlan` is a validated list of :class:`FaultSpec` windows on
the *simulated* clock of one scenario engine (every engine starts at
t = 0, so a plan applies identically to each scenario replay of an
evaluation — the policies face the same degraded conditions on the same
schedule).  Plans serialize to plain JSON so they can be versioned next
to experiment outputs, and :meth:`FaultPlan.sample` derives a
representative plan deterministically from an experiment seed, keeping
faulted runs bit-reproducible end to end.

Fault kinds
-----------

``link_degrade``
    Remote-link throughput cap scaled by ``capacity_factor`` ∈ (0, 1]
    and channel latency stretched by ``latency_factor`` ≥ 1.
``link_outage``
    Full link flap: the channel delivers only the FPGA back-pressure
    drain trickle (see ``LinkConfig.outage_drain_fraction``) and new
    remote deployments are blocked (the engine re-queues them).
``telemetry_dropout``
    The Watcher loses whole samples: each tick's counter row is dropped
    (recorded as an all-NaN gap) with probability ``probability``.
``telemetry_corrupt``
    Counter corruption: each metric value is independently replaced by
    NaN with probability ``probability``.
``predictor_nan``
    Performance estimates are replaced by ``value`` (``"nan"`` or
    ``"inf"``) with probability ``probability`` per inference call.
``predictor_delay``
    Every inference call takes an extra ``latency_s`` seconds; callers
    that pass a decision deadline below it observe a timeout.

Trainer-side kinds run on a different clock: ``start_s``/``duration_s``
are interpreted as *epoch indices* (``nan_grad``, ``ckpt_write_fail``)
or *retrain-attempt indices* (``retrain_timeout``) by
:class:`repro.faults.training.TrainingChaos` — the schedule semantics
(seeded windows, JSON round-trip, bit-reproducibility) are identical.

``nan_grad``
    With ``probability`` per epoch in the window, every parameter
    gradient is replaced by NaN right before the optimizer step,
    exercising the Trainer's divergence-recovery path.
``ckpt_write_fail``
    Fit-checkpoint writes fail (with ``probability``) while the window
    covers the epoch being saved; the trainer keeps the previous
    checkpoint and continues.
``retrain_timeout``
    Covered retrain attempts are given ``timeout_s`` seconds of wall
    clock; a candidate fit exceeding it is abandoned and the incumbent
    model stays in place.

Daemon-side kinds target the serving loop of
:class:`repro.serve.OrchestratorDaemon`; their windows run on the
daemon's simulated fleet clock.

``conn_drop``
    While the window is open, each incoming client request is dropped
    (the connection is closed before a response is written) with
    ``probability`` — exercising client retry and the daemon's
    request-error accounting.
``wedged_tick``
    The daemon's tick loop stops advancing simulated time while the
    window covers the fleet clock — a stand-in for a hung engine tick.
    The watchdog detects the stall on the wall clock, opens the daemon
    breaker and restarts the tick machinery.

Fleet-side kinds target whole failure domains of a
:class:`repro.cluster.ClusterFleet`; their windows run on the fleet
clock and are consumed by the :class:`repro.cluster.FleetHealthManager`
(the per-node :class:`FaultInjector` ignores them).

``node_crash``
    Fail-stop crash of one borrower node (``node`` = ``"n<index>"``).
    The node stops heartbeating at ``start_s``; its in-flight
    deployments are lost and — once the failure detector declares it
    DOWN — drained into the failover queue and replayed on survivors.
    The node reboots (rejoins with cold telemetry) when the window
    closes.
``node_rejoin``
    Forces a crashed ``node`` back up while active — an explicit early
    reboot that overrides any covering ``node_crash`` window.
``pool_device_fail``
    A ``fraction`` of the remote pool's memory devices fail: pool
    capacity and aggregate bandwidth shrink by that fraction (bandwidth
    override via ``bandwidth_fraction``), forcing immediate water-fill
    re-arbitration and eviction-or-park of remote segments that no
    longer fit.  Devices are replaced when the window closes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.faults.errors import FaultPlanError

__all__ = [
    "FAULT_KINDS",
    "TRAINER_KINDS",
    "DAEMON_KINDS",
    "NODE_KINDS",
    "POOL_KINDS",
    "FLEET_KINDS",
    "FaultSpec",
    "FaultPlan",
]

PLAN_VERSION = 1

#: kind -> {param: (required, validator, doc)}
_PARAM_SCHEMAS: dict[str, dict[str, tuple[bool, str]]] = {
    "link_degrade": {
        "capacity_factor": (True, "fraction"),
        "latency_factor": (False, "stretch"),
    },
    "link_outage": {
        "latency_factor": (False, "stretch"),
    },
    "telemetry_dropout": {
        "probability": (True, "probability"),
    },
    "telemetry_corrupt": {
        "probability": (True, "probability"),
    },
    "predictor_nan": {
        "probability": (True, "probability"),
        "value": (False, "nan_or_inf"),
    },
    "predictor_delay": {
        "latency_s": (True, "positive"),
    },
    "nan_grad": {
        "probability": (True, "probability"),
    },
    "ckpt_write_fail": {
        "probability": (True, "probability"),
    },
    "retrain_timeout": {
        "timeout_s": (True, "positive"),
    },
    "conn_drop": {
        "probability": (True, "probability"),
    },
    "wedged_tick": {},
    "node_crash": {
        "node": (True, "node_label"),
    },
    "node_rejoin": {
        "node": (True, "node_label"),
    },
    "pool_device_fail": {
        "fraction": (True, "fraction"),
        "bandwidth_fraction": (False, "fraction"),
    },
}

FAULT_KINDS: tuple[str, ...] = tuple(_PARAM_SCHEMAS)

#: Fault kinds grouped by the subsystem they target.
LINK_KINDS = ("link_degrade", "link_outage")
TELEMETRY_KINDS = ("telemetry_dropout", "telemetry_corrupt")
PREDICTOR_KINDS = ("predictor_nan", "predictor_delay")
#: Trainer-side kinds; windows run on the epoch / retrain-attempt clock.
TRAINER_KINDS = ("nan_grad", "ckpt_write_fail", "retrain_timeout")
#: Daemon-side kinds; windows run on the serving daemon's fleet clock.
DAEMON_KINDS = ("conn_drop", "wedged_tick")
#: Node-lifecycle kinds; windows run on the fleet clock, targeted per node.
NODE_KINDS = ("node_crash", "node_rejoin")
#: Remote-pool device kinds; windows run on the fleet clock.
POOL_KINDS = ("pool_device_fail",)
#: Kinds consumed by the fleet health manager, not the per-node injector.
FLEET_KINDS = NODE_KINDS + POOL_KINDS


def _check_param(kind: str, name: str, rule: str, value) -> None:
    if rule == "fraction":
        if not (isinstance(value, (int, float)) and 0 < value <= 1):
            raise FaultPlanError(
                f"{kind}.{name} must be a fraction in (0, 1], got {value!r}"
            )
    elif rule == "probability":
        if not (isinstance(value, (int, float)) and 0 < value <= 1):
            raise FaultPlanError(
                f"{kind}.{name} must be a probability in (0, 1], got {value!r}"
            )
    elif rule == "stretch":
        if not (isinstance(value, (int, float)) and value >= 1):
            raise FaultPlanError(
                f"{kind}.{name} must be a stretch factor >= 1, got {value!r}"
            )
    elif rule == "positive":
        if not (isinstance(value, (int, float)) and value > 0):
            raise FaultPlanError(
                f"{kind}.{name} must be positive, got {value!r}"
            )
    elif rule == "nan_or_inf":
        if value not in ("nan", "inf"):
            raise FaultPlanError(
                f"{kind}.{name} must be 'nan' or 'inf', got {value!r}"
            )
    elif rule == "node_label":
        ok = (
            isinstance(value, str)
            and value.startswith("n")
            and value[1:].isdigit()
        )
        if not ok:
            raise FaultPlanError(
                f"{kind}.{name} must be a node label like 'n0', got {value!r}"
            )
    else:  # pragma: no cover - schema typo guard
        raise AssertionError(f"unknown validation rule {rule!r}")


@dataclass(frozen=True)
class FaultSpec:
    """One fault window on the simulated clock of an engine run."""

    kind: str
    start_s: float
    duration_s: float
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _PARAM_SCHEMAS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; known: {list(FAULT_KINDS)}"
            )
        if not (isinstance(self.start_s, (int, float)) and self.start_s >= 0):
            raise FaultPlanError(f"{self.kind}.start_s must be >= 0")
        if not (isinstance(self.duration_s, (int, float)) and self.duration_s > 0):
            raise FaultPlanError(f"{self.kind}.duration_s must be positive")
        schema = _PARAM_SCHEMAS[self.kind]
        for name, value in self.params.items():
            if name not in schema:
                raise FaultPlanError(
                    f"{self.kind} does not accept parameter {name!r}; "
                    f"allowed: {sorted(schema)}"
                )
            _check_param(self.kind, name, schema[name][1], value)
        for name, (required, _) in schema.items():
            if required and name not in self.params:
                raise FaultPlanError(f"{self.kind} requires parameter {name!r}")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def active(self, now: float) -> bool:
        """Whether this window covers simulated time ``now``."""
        return self.start_s <= now < self.end_s

    def param(self, name: str, default=None):
        return self.params.get(name, default)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        if not isinstance(data, dict):
            raise FaultPlanError(f"fault spec must be an object, got {data!r}")
        unknown = set(data) - {"kind", "start_s", "duration_s", "params"}
        if unknown:
            raise FaultPlanError(f"fault spec has unknown fields {sorted(unknown)}")
        try:
            return cls(
                kind=data["kind"],
                start_s=data["start_s"],
                duration_s=data["duration_s"],
                params=dict(data.get("params", {})),
            )
        except KeyError as missing:
            raise FaultPlanError(f"fault spec missing field {missing}") from None


@dataclass(frozen=True)
class FaultPlan:
    """A validated, seeded schedule of fault windows."""

    faults: tuple[FaultSpec, ...] = ()
    seed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int):
            raise FaultPlanError("plan seed must be an integer")
        object.__setattr__(self, "faults", tuple(self.faults))

    def __len__(self) -> int:
        return len(self.faults)

    # -- queries -------------------------------------------------------------
    def active(self, kinds, now: float) -> FaultSpec | None:
        """The first active fault of one of ``kinds`` at time ``now``."""
        for spec in self.faults:
            if spec.kind in kinds and spec.active(now):
                return spec
        return None

    def of_kind(self, kind: str) -> tuple[FaultSpec, ...]:
        return tuple(s for s in self.faults if s.kind == kind)

    def node_crashed(self, node: str, now: float) -> bool:
        """Whether ``node`` is fail-stopped at fleet time ``now``.

        An active ``node_rejoin`` window for the node overrides any
        covering ``node_crash`` window (explicit early reboot).
        """
        rejoined = any(
            s.kind == "node_rejoin" and s.param("node") == node and s.active(now)
            for s in self.faults
        )
        if rejoined:
            return False
        return any(
            s.kind == "node_crash" and s.param("node") == node and s.active(now)
            for s in self.faults
        )

    def device_fault_factors(self, now: float) -> tuple[float, float]:
        """Surviving ``(capacity_factor, bandwidth_factor)`` of the pool.

        Concurrent ``pool_device_fail`` windows compound: each active
        window removes its ``fraction`` of the devices that survived the
        previous one.  ``(1.0, 1.0)`` when no device fault is active.
        """
        capacity = 1.0
        bandwidth = 1.0
        for spec in self.faults:
            if spec.kind != "pool_device_fail" or not spec.active(now):
                continue
            lost = float(spec.param("fraction"))
            capacity *= max(0.0, 1.0 - lost)
            bw_lost = float(spec.param("bandwidth_fraction", lost))
            bandwidth *= max(0.0, 1.0 - bw_lost)
        return capacity, bandwidth

    def validate(self, n_nodes: int | None = None) -> "FaultPlan":
        """Cross-check the plan against a concrete fleet shape.

        Construction already validates kinds and parameters; this adds
        the checks that need context — currently that every node target
        of a ``node_crash``/``node_rejoin`` window exists in a fleet of
        ``n_nodes`` nodes (a typo'd label would otherwise silently never
        fire).  Returns ``self`` so calls chain.
        """
        if n_nodes is not None:
            if n_nodes <= 0:
                raise FaultPlanError("n_nodes must be positive")
            valid = {f"n{i}" for i in range(n_nodes)}
            for spec in self.faults:
                if spec.kind not in NODE_KINDS:
                    continue
                target = spec.param("node")
                if target not in valid:
                    raise FaultPlanError(
                        f"{spec.kind} targets unknown node {target!r}; "
                        f"fleet has {n_nodes} nodes (n0..n{n_nodes - 1})"
                    )
        return self

    @property
    def horizon_s(self) -> float:
        """Simulated time at which the last fault window closes."""
        return max((s.end_s for s in self.faults), default=0.0)

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "version": PLAN_VERSION,
            "seed": self.seed,
            "description": self.description,
            "faults": [s.to_dict() for s in self.faults],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultPlanError("fault plan must be a JSON object")
        version = data.get("version", PLAN_VERSION)
        if version != PLAN_VERSION:
            raise FaultPlanError(
                f"unsupported plan version {version!r} (expected {PLAN_VERSION})"
            )
        unknown = set(data) - {"version", "seed", "description", "faults"}
        if unknown:
            raise FaultPlanError(f"fault plan has unknown fields {sorted(unknown)}")
        faults = data.get("faults", [])
        if not isinstance(faults, list):
            raise FaultPlanError("'faults' must be a list")
        return cls(
            faults=tuple(FaultSpec.from_dict(entry) for entry in faults),
            seed=data.get("seed", 0),
            description=data.get("description", ""),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise FaultPlanError(f"invalid plan JSON: {error}") from None
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str | Path) -> "FaultPlan":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def to_file(self, path: str | Path) -> Path:
        from repro.obs.fsio import atomic_write_text

        return atomic_write_text(path, self.to_json())

    # -- derivation ----------------------------------------------------------
    @classmethod
    def sample(cls, seed: int = 0, duration_s: float = 900.0) -> "FaultPlan":
        """A representative plan derived deterministically from ``seed``.

        Exercises every subsystem the injector targets: a 60 s full link
        outage, a throughput/latency degradation window, telemetry
        dropouts and NaN corruption, and a predictor NaN + delay phase —
        staggered across the first ``duration_s`` seconds of each
        scenario run.  Same seed ⇒ bit-identical plan.
        """
        if duration_s < 300.0:
            raise FaultPlanError("sample plans need at least 300 s of runway")
        rng = np.random.default_rng(seed)
        third = duration_s / 3.0

        def jitter(low: float, high: float) -> float:
            return float(np.round(rng.uniform(low, high), 1))

        outage_start = jitter(third, third + 60.0)
        faults = (
            FaultSpec(
                kind="telemetry_dropout",
                start_s=jitter(30.0, 60.0),
                duration_s=jitter(45.0, 90.0),
                params={"probability": 0.5},
            ),
            FaultSpec(
                kind="telemetry_corrupt",
                start_s=jitter(120.0, 180.0),
                duration_s=jitter(60.0, 120.0),
                params={"probability": 0.25},
            ),
            FaultSpec(
                kind="link_degrade",
                start_s=jitter(200.0, 260.0),
                duration_s=jitter(60.0, 120.0),
                params={"capacity_factor": 0.5, "latency_factor": 1.5},
            ),
            FaultSpec(
                kind="link_outage",
                start_s=outage_start,
                duration_s=60.0,
                params={"latency_factor": 1.0},
            ),
            # The predictor phase ends by ~0.8 · duration so the circuit
            # breaker's cooldown (default 120 s) and a successful
            # half-open probe fit inside the run — sampled plans should
            # demonstrate recovery, not just degradation.
            FaultSpec(
                kind="predictor_nan",
                start_s=jitter(0.60 * duration_s, 0.65 * duration_s),
                duration_s=jitter(0.05 * duration_s, 0.08 * duration_s),
                params={"probability": 1.0, "value": "nan"},
            ),
            FaultSpec(
                kind="predictor_delay",
                start_s=jitter(0.70 * duration_s, 0.73 * duration_s),
                duration_s=jitter(0.04 * duration_s, 0.06 * duration_s),
                params={"latency_s": 5.0},
            ),
        )
        return cls(
            faults=faults,
            seed=seed,
            description=(
                f"sample plan (seed={seed}): link outage + degradation, "
                "telemetry dropouts/corruption, predictor NaNs and delays"
            ),
        )

    @classmethod
    def sample_daemon(cls, seed: int = 0, duration_s: float = 120.0) -> "FaultPlan":
        """A representative *daemon-side* plan on the fleet clock.

        One connection-drop window early (client retry + request-error
        accounting) and one wedged-tick window later (watchdog recovery
        behind the daemon breaker).  Same seed ⇒ bit-identical plan.
        """
        if duration_s < 30.0:
            raise FaultPlanError("daemon sample plans need at least 30 s of runway")
        rng = np.random.default_rng([seed, 0xDA3])

        def jitter(low: float, high: float) -> float:
            return float(np.round(rng.uniform(low, high), 1))

        drop_start = jitter(0.05 * duration_s, 0.15 * duration_s)
        wedge_start = jitter(0.45 * duration_s, 0.55 * duration_s)
        faults = (
            FaultSpec(
                kind="conn_drop",
                start_s=drop_start,
                duration_s=jitter(0.10 * duration_s, 0.20 * duration_s),
                params={"probability": 1.0},
            ),
            FaultSpec(
                kind="wedged_tick",
                start_s=wedge_start,
                duration_s=jitter(0.05 * duration_s, 0.10 * duration_s),
            ),
        )
        return cls(
            faults=faults,
            seed=seed,
            description=(
                f"daemon sample plan (seed={seed}): connection drops from "
                f"{drop_start:.0f}s, wedged tick loop from {wedge_start:.0f}s"
            ),
        )

    @classmethod
    def sample_availability(
        cls,
        seed: int = 0,
        duration_s: float = 900.0,
        n_nodes: int = 4,
    ) -> "FaultPlan":
        """A representative *fleet-side* crash/rejoin schedule.

        One long crash of ``n1`` cut short by an explicit early rejoin,
        a later shorter crash of ``n2`` overlapping a pool-device
        failure that halves the remote pool — every failure domain the
        health manager owns, with all windows closing well before
        ``duration_s`` so the fleet demonstrates recovery.  Same seed ⇒
        bit-identical plan.
        """
        if duration_s < 300.0:
            raise FaultPlanError(
                "availability sample plans need at least 300 s of runway"
            )
        if n_nodes < 3:
            raise FaultPlanError(
                "availability sample plans target n1 and n2; need >= 3 nodes"
            )
        rng = np.random.default_rng([seed, 0xFA17])

        def jitter(low: float, high: float) -> float:
            return float(np.round(rng.uniform(low, high), 1))

        crash1_start = jitter(0.20 * duration_s, 0.25 * duration_s)
        crash1_dur = jitter(0.18 * duration_s, 0.22 * duration_s)
        # Early reboot ~70% through the crash window, covering its
        # remainder so n1 stays up once rejoined (no flapping).
        rejoin_start = float(np.round(crash1_start + 0.7 * crash1_dur, 1))
        rejoin_dur = float(np.round(crash1_start + crash1_dur - rejoin_start, 1))
        crash2_start = jitter(0.55 * duration_s, 0.60 * duration_s)
        crash2_dur = jitter(0.08 * duration_s, 0.12 * duration_s)
        device_start = jitter(0.60 * duration_s, 0.63 * duration_s)
        faults = (
            FaultSpec(
                kind="node_crash",
                start_s=crash1_start,
                duration_s=crash1_dur,
                params={"node": "n1"},
            ),
            FaultSpec(
                kind="node_rejoin",
                start_s=rejoin_start,
                duration_s=rejoin_dur,
                params={"node": "n1"},
            ),
            FaultSpec(
                kind="node_crash",
                start_s=crash2_start,
                duration_s=crash2_dur,
                params={"node": "n2"},
            ),
            FaultSpec(
                kind="pool_device_fail",
                start_s=device_start,
                duration_s=jitter(0.08 * duration_s, 0.10 * duration_s),
                params={"fraction": 0.5},
            ),
        )
        return cls(
            faults=faults,
            seed=seed,
            description=(
                f"availability sample plan (seed={seed}): n1 crash at "
                f"{crash1_start:.0f}s with early rejoin, n2 crash at "
                f"{crash2_start:.0f}s overlapping a half-pool device loss"
            ),
        ).validate(n_nodes)

    @classmethod
    def sample_trainer(cls, seed: int = 0, epochs: int = 12) -> "FaultPlan":
        """A representative *trainer-side* plan on the epoch clock.

        Exercises the resilient training runtime end to end: a NaN
        gradient burst early (divergence recovery), a checkpoint-write
        failure window later (degraded checkpointing), and a timeout on
        the second retrain attempt (gated promotion keeps the
        incumbent).  Same seed ⇒ bit-identical plan.
        """
        if epochs < 6:
            raise FaultPlanError(
                "trainer sample plans need at least 6 epochs of runway"
            )
        rng = np.random.default_rng([seed, 0x7E41])
        nan_epoch = int(rng.integers(2, max(3, epochs // 2)))
        ckpt_epoch = int(rng.integers(epochs // 2, epochs - 1))
        faults = (
            FaultSpec(
                kind="nan_grad",
                start_s=float(nan_epoch),
                duration_s=1.0,
                params={"probability": 1.0},
            ),
            FaultSpec(
                kind="ckpt_write_fail",
                start_s=float(ckpt_epoch),
                duration_s=2.0,
                params={"probability": 1.0},
            ),
            FaultSpec(
                kind="retrain_timeout",
                start_s=1.0,
                duration_s=1.0,
                params={"timeout_s": 1e-3},
            ),
        )
        return cls(
            faults=faults,
            seed=seed,
            description=(
                f"trainer sample plan (seed={seed}): NaN-gradient burst at "
                f"epoch {nan_epoch}, checkpoint-write failures from epoch "
                f"{ckpt_epoch}, timeout on the second retrain attempt"
            ),
        )
