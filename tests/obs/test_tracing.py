import json

from repro import obs
from repro.obs.tracing import NULL_SPAN, NULL_TRACER, SpanTracer


class FakeClock:
    """Deterministic monotonic clock for span tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestSpans:
    def test_nested_spans_order_and_containment(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("outer"):
            clock.advance(1.0)
            with tracer.span("inner"):
                clock.advance(0.5)
            clock.advance(1.0)
        inner, outer = tracer.spans("inner")[0], tracer.spans("outer")[0]
        # Child closed first, so it is recorded first; depth reflects nesting.
        assert tracer.events[0]["name"] == "inner"
        assert inner["args"]["depth"] == 1
        assert outer["args"]["depth"] == 0
        # Containment: the viewer reconstructs nesting from ts/dur.
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]
        assert outer["dur"] == 2.5e6  # microseconds

    def test_span_args_and_sim_time(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("scenario", sim_time=120.0, seed=7) as span:
            span.set(arrivals=3)
        event = tracer.spans("scenario")[0]
        assert event["args"]["sim_time_s"] == 120.0
        assert event["args"]["seed"] == 7
        assert event["args"]["arrivals"] == 3

    def test_exception_is_annotated_and_span_closed(self):
        tracer = SpanTracer(clock=FakeClock())
        try:
            with tracer.span("boom"):
                raise RuntimeError("nope")
        except RuntimeError:
            pass
        event = tracer.spans("boom")[0]
        assert event["args"]["error"] == "RuntimeError"

    def test_instant_event(self):
        tracer = SpanTracer(clock=FakeClock())
        tracer.instant("marker", note="hi")
        assert tracer.events[0]["ph"] == "i"
        assert tracer.events[0]["args"]["note"] == "hi"


class TestChromeExport:
    def test_export_is_valid_chrome_trace_json(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("a"):
            clock.advance(0.25)
        parsed = json.loads(tracer.to_json())
        assert parsed["displayTimeUnit"] == "ms"
        events = parsed["traceEvents"]
        assert events[0]["ph"] == "M"  # process-name metadata record
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == 1
        for event in spans:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(event)

    def test_events_sorted_by_timestamp(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("first"):
            clock.advance(1.0)
            with tracer.span("nested"):
                clock.advance(1.0)
        clock.advance(1.0)
        with tracer.span("second"):
            clock.advance(1.0)
        ts = [e["ts"] for e in tracer.to_chrome_trace()["traceEvents"][1:]]
        assert ts == sorted(ts)

    def test_reset_clears_events(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("a"):
            pass
        tracer.reset()
        assert len(tracer) == 0


class TestEdgeCases:
    def test_empty_tracer_exports_valid_trace(self):
        parsed = json.loads(SpanTracer(clock=FakeClock()).to_json())
        assert parsed["displayTimeUnit"] == "ms"
        assert [e["ph"] for e in parsed["traceEvents"]] == ["M"]

    def test_out_of_order_close_does_not_corrupt_the_trace(self):
        # Spans entered manually can be exited in the wrong order (outer
        # before inner); both must still be recorded as complete events.
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        outer = tracer.span("outer").__enter__()
        clock.advance(1.0)
        inner = tracer.span("inner").__enter__()
        clock.advance(1.0)
        outer.__exit__(None, None, None)
        clock.advance(1.0)
        inner.__exit__(None, None, None)
        assert len(tracer.spans()) == 2
        assert tracer.spans("outer")[0]["args"]["depth"] == 0
        # Orphaned inner falls back to depth 0 rather than crashing.
        assert tracer.spans("inner")[0]["args"]["depth"] == 0
        json.loads(tracer.to_json())  # export still well-formed

    def test_every_event_has_ph_ts_and_name(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("outer", sim_time=1.0):
            clock.advance(0.5)
            tracer.instant("marker")
        parsed = json.loads(tracer.to_json())
        for event in parsed["traceEvents"]:
            assert isinstance(event["name"], str) and event["name"]
            assert event["ph"] in {"M", "X", "i"}
            assert isinstance(event["ts"], (int, float))
            assert event["ts"] >= 0
            if event["ph"] == "X":
                assert event["dur"] >= 0


class TestNullTracer:
    def test_null_span_supports_with_and_set(self):
        with NULL_TRACER.span("whatever", sim_time=1.0, x=2) as span:
            span.set(y=3)
        NULL_TRACER.instant("marker")
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.to_chrome_trace()["traceEvents"] == []

    def test_record_complete_is_a_noop(self):
        NULL_TRACER.record_complete("phase", 0.0, 1.0, category="perf")
        assert len(NULL_TRACER) == 0


class TestRecordComplete:
    def test_event_converted_to_tracer_epoch(self):
        clock = FakeClock()
        clock.advance(10.0)
        tracer = SpanTracer(clock=clock)  # epoch = 10.0
        tracer.record_complete("phase", 11.0, 11.5, category="perf", n=3)
        event = tracer.events[0]
        assert event["ph"] == "X"
        assert event["cat"] == "perf"
        assert event["ts"] == 1.0e6  # microseconds past the epoch
        assert event["dur"] == 0.5e6
        assert event["args"]["n"] == 3

    def test_negative_interval_clamps_duration(self):
        tracer = SpanTracer(clock=FakeClock())
        tracer.record_complete("odd", 2.0, 1.0)
        assert tracer.events[0]["dur"] == 0.0

    def test_exports_alongside_spans(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("outer"):
            clock.advance(1.0)
        tracer.record_complete("phase", 0.25, 0.75)
        parsed = json.loads(tracer.to_json())
        names = [e["name"] for e in parsed["traceEvents"] if e["ph"] == "X"]
        assert set(names) == {"outer", "phase"}


class TestDisabledHotPath:
    """The guarded-span idiom must not touch the tracer when obs is off."""

    def test_null_span_is_the_shared_singleton(self):
        assert obs.NULL_SPAN is NULL_SPAN
        with NULL_SPAN as span:
            assert span is NULL_SPAN

    def test_disabled_run_never_calls_the_tracer(self, monkeypatch):
        # Guarded call sites (`... if obs.enabled() else obs.NULL_SPAN`)
        # must short-circuit: zero span() calls, zero record() events,
        # zero Span allocations on the disabled path.
        from repro.cluster.scenario import ScenarioConfig, run_scenario
        from repro.obs import tracing
        from repro.orchestrator.policies import RandomPolicy

        calls = []
        monkeypatch.setattr(
            tracing.NullTracer, "span",
            lambda self, *a, **k: calls.append(a) or NULL_SPAN,
        )
        monkeypatch.setattr(
            tracing.Span, "__init__",
            lambda self, *a, **k: calls.append(a),
        )
        assert not obs.enabled()
        run_scenario(
            ScenarioConfig(duration_s=60.0, seed=2),
            scheduler=RandomPolicy(seed=2),
        )
        assert calls == []
