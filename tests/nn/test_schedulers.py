
import numpy as np
import pytest

from repro.nn import (
    Adam,
    CosineAnnealingLR,
    ExponentialLR,
    Parameter,
    ReduceLROnPlateau,
    StepLR,
)


def make_opt(lr=1.0):
    return Adam([Parameter(np.zeros(2))], lr=lr)


class TestStepLR:
    def test_decays_every_step_size(self):
        opt = make_opt(1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StepLR(make_opt(), step_size=0)
        with pytest.raises(ValueError):
            StepLR(make_opt(), step_size=2, gamma=1.5)


class TestExponentialLR:
    def test_geometric_decay(self):
        opt = make_opt(2.0)
        sched = ExponentialLR(opt, gamma=0.5)
        sched.step()
        assert opt.lr == pytest.approx(1.0)
        sched.step()
        assert opt.lr == pytest.approx(0.5)


class TestCosine:
    def test_endpoints(self):
        opt = make_opt(1.0)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.1)
        for _ in range(5):
            sched.step()
        mid = opt.lr
        assert mid == pytest.approx(0.55, abs=1e-9)  # halfway point
        for _ in range(5):
            sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_clamps_beyond_t_max(self):
        opt = make_opt(1.0)
        sched = CosineAnnealingLR(opt, t_max=2)
        for _ in range(5):
            sched.step()
        assert opt.lr == pytest.approx(0.0)


class TestPlateau:
    def test_reduces_after_patience(self):
        opt = make_opt(1.0)
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=1)
        sched.step(metric=1.0)   # best
        sched.step(metric=1.0)   # bad epoch 1
        assert opt.lr == pytest.approx(1.0)
        sched.step(metric=1.0)   # bad epoch 2 -> reduce
        assert opt.lr == pytest.approx(0.5)

    def test_improvement_resets_counter(self):
        opt = make_opt(1.0)
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=1)
        sched.step(metric=1.0)
        sched.step(metric=0.9)
        sched.step(metric=0.8)
        assert opt.lr == pytest.approx(1.0)

    def test_respects_min_lr(self):
        opt = make_opt(1e-5)
        sched = ReduceLROnPlateau(opt, factor=0.1, patience=0, min_lr=1e-6)
        sched.step(metric=1.0)
        for _ in range(5):
            sched.step(metric=2.0)
        assert opt.lr >= 1e-6 - 1e-15

    def test_requires_metric(self):
        sched = ReduceLROnPlateau(make_opt())
        with pytest.raises(ValueError):
            sched.step()


class TestStateDictRoundTrip:
    @pytest.mark.parametrize("factory", [
        lambda o: StepLR(o, step_size=2, gamma=0.5),
        lambda o: ExponentialLR(o, gamma=0.9),
        lambda o: CosineAnnealingLR(o, t_max=10, eta_min=0.01),
    ])
    def test_restored_scheduler_continues_identically(self, factory):
        opt = make_opt(1.0)
        sched = factory(opt)
        for _ in range(3):
            sched.step()
        state = sched.state_dict()
        # Diverge, restore, take one more step.
        for _ in range(4):
            sched.step()
        sched.load_state_dict(state)
        assert opt.lr == state["lr"]
        sched.step()
        restored_lr = opt.lr

        fresh_opt = make_opt(1.0)
        fresh = factory(fresh_opt)
        for _ in range(4):
            fresh.step()
        assert restored_lr == fresh_opt.lr

    def test_plateau_round_trip_keeps_best_and_patience(self):
        opt = make_opt(1.0)
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=1)
        sched.step(metric=1.0)
        sched.step(metric=1.0)  # bad epoch 1 of 2
        state = sched.state_dict()
        assert state["best"] == 1.0
        assert state["bad_epochs"] == 1

        other_opt = make_opt(1.0)
        other = ReduceLROnPlateau(other_opt, factor=0.5, patience=1)
        other.load_state_dict(state)
        other.step(metric=1.0)  # bad epoch 2 -> reduce now
        assert other_opt.lr == pytest.approx(0.5)

    def test_base_lr_is_restored(self):
        # Divergence recovery rescales base_lr; a checkpoint taken after
        # that must restore the rescaled value, not the construction-time
        # one.
        opt = make_opt(1.0)
        sched = StepLR(opt, step_size=100, gamma=0.5)
        sched.base_lr = 0.25
        state = sched.state_dict()
        other = StepLR(make_opt(1.0), step_size=100, gamma=0.5)
        other.load_state_dict(state)
        assert other.base_lr == 0.25
