"""Bench Fig. 4 — LC tail latency vs clients, local vs remote (R4).

Paper shape: local and remote curves almost identical for Redis and
Memcached at every client count; latency grows with the client
population.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig04_lc_isolation


def test_fig04_lc_isolation(benchmark, report):
    result = run_once(benchmark, fig04_lc_isolation.run)
    report(result.format())

    for app in ("redis", "memcached"):
        # R4 — modes nearly identical in isolation.
        assert result.max_mode_gap(app) < 0.12
        # Closed-loop latency grows with clients in both modes.
        for mode in ("local", "remote"):
            p99s = [s.p99_ms for s in result.sweeps[app][mode]]
            assert all(b >= a for a, b in zip(p99s, p99s[1:]))
            p999s = [s.p999_ms for s in result.sweeps[app][mode]]
            assert all(hi > lo for lo, hi in zip(p99s, p999s))
    # Memcached is faster than Redis at the same operating point.
    assert (
        result.sweeps["memcached"]["local"][0].p99_ms
        < result.sweeps["redis"]["local"][0].p99_ms
    )
