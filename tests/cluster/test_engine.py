import pytest

from repro.cluster import CapacityError, ClusterEngine
from repro.hardware import NodeConfig, Testbed, TestbedConfig
from repro.workloads import MemoryMode, ibench_profile, spark_profile


@pytest.fixture
def engine():
    return ClusterEngine(testbed=Testbed(TestbedConfig(counter_noise=0.0)))


class TestTick:
    def test_clock_advances_by_dt(self, engine):
        engine.tick()
        assert engine.now == pytest.approx(1.0)
        engine.run_for(9.0)
        assert engine.now == pytest.approx(10.0)

    def test_trace_grows_per_tick(self, engine):
        engine.run_for(5.0)
        assert len(engine.trace) == 5

    def test_app_ids_unique_and_increasing(self, engine):
        a = engine.deploy(spark_profile("scan"), MemoryMode.LOCAL)
        b = engine.deploy(spark_profile("scan"), MemoryMode.LOCAL)
        assert b.app_id == a.app_id + 1

    def test_run_backwards_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.run_for(-1.0)

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            ClusterEngine(dt=0.0)


class TestCapacity:
    def test_local_capacity_enforced(self):
        small = TestbedConfig(node=NodeConfig(dram_gb=10.0))
        engine = ClusterEngine(testbed=Testbed(small))
        engine.deploy(spark_profile("scan"), MemoryMode.LOCAL)  # 8 GB
        with pytest.raises(CapacityError):
            engine.deploy(spark_profile("scan"), MemoryMode.LOCAL)

    def test_remote_capacity_enforced(self):
        small = TestbedConfig(node=NodeConfig(remote_gb=10.0))
        engine = ClusterEngine(testbed=Testbed(small))
        engine.deploy(spark_profile("scan"), MemoryMode.REMOTE)
        with pytest.raises(CapacityError):
            engine.deploy(spark_profile("scan"), MemoryMode.REMOTE)

    def test_finished_deployments_release_capacity(self):
        small = TestbedConfig(node=NodeConfig(dram_gb=10.0))
        engine = ClusterEngine(testbed=Testbed(small))
        engine.deploy(spark_profile("scan"), MemoryMode.LOCAL)
        engine.run_until_idle()
        engine.deploy(spark_profile("scan"), MemoryMode.LOCAL)  # fits again

    def test_fits_and_used_capacity(self, engine):
        assert engine.used_capacity_gb(MemoryMode.LOCAL) == 0.0
        engine.deploy(spark_profile("scan"), MemoryMode.LOCAL)
        assert engine.used_capacity_gb(MemoryMode.LOCAL) == 8.0
        assert engine.fits(spark_profile("scan"), MemoryMode.LOCAL)


class TestContention:
    def test_colocated_apps_slow_each_other(self, engine):
        solo_runtime = engine.measure_isolated(
            spark_profile("pagerank"), MemoryMode.LOCAL
        )
        for _ in range(8):
            engine.deploy(ibench_profile("l3"), MemoryMode.LOCAL, duration_s=1e6)
        target = engine.deploy(spark_profile("pagerank"), MemoryMode.LOCAL)
        while target.running:
            engine.tick()
        assert target.record().runtime_s > solo_runtime * 1.05

    def test_pressure_with_hypothetical(self, engine):
        baseline = engine.current_pressure()
        with_app = engine.pressure_with(spark_profile("lr"), MemoryMode.REMOTE)
        assert with_app.link.offered_gbps > baseline.link.offered_gbps
        # The hypothetical must not mutate the engine.
        assert engine.current_pressure().link.offered_gbps == pytest.approx(
            baseline.link.offered_gbps
        )

    def test_measure_isolated_does_not_touch_engine(self, engine):
        engine.deploy(spark_profile("scan"), MemoryMode.LOCAL)
        before = len(engine.deployments)
        engine.measure_isolated(spark_profile("lr"), MemoryMode.LOCAL)
        assert len(engine.deployments) == before


class TestHooks:
    def test_on_finish_called_with_record(self, engine):
        seen = []
        engine.on_finish = seen.append
        engine.deploy(spark_profile("scan"), MemoryMode.LOCAL)
        engine.run_until_idle()
        assert len(seen) == 1
        assert seen[0].name == "scan"

    def test_run_until_idle_timeout(self, engine):
        engine.deploy(ibench_profile("cpu"), MemoryMode.LOCAL, duration_s=1e9)
        with pytest.raises(RuntimeError):
            engine.run_until_idle(max_seconds=5.0)


class TestTickHooks:
    def test_hook_runs_at_end_of_every_tick(self, engine):
        seen = []
        engine.add_tick_hook(lambda eng: seen.append(eng.now))
        engine.run_for(3.0)
        assert seen == [pytest.approx(t) for t in (1.0, 2.0, 3.0)]

    def test_add_is_idempotent(self, engine):
        calls = []

        def hook(eng):
            calls.append(eng)

        engine.add_tick_hook(hook)
        engine.add_tick_hook(hook)
        engine.tick()
        assert len(calls) == 1

    def test_remove_stops_and_is_safe(self, engine):
        calls = []

        def hook(eng):
            calls.append(eng)

        engine.add_tick_hook(hook)
        engine.tick()
        engine.remove_tick_hook(hook)
        engine.tick()
        assert len(calls) == 1
        engine.remove_tick_hook(hook)  # not registered: no-op

    def test_hook_sees_appended_trace_sample(self, engine):
        lengths = []
        engine.add_tick_hook(lambda eng: lengths.append(len(eng.trace.times)))
        engine.run_for(2.0)
        assert lengths == [1, 2]  # hooks fire after the trace append
