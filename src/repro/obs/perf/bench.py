"""Engine benchmark harness: ticks/sec, decisions/sec, phase breakdown.

Measures the simulator's two throughput axes —

* **ticks/sec** across scenario scales (an idle engine, the paper's
  relaxed {5, 60} and congested {5, 20} arrival regimes), and
* **decisions/sec** for the full Adrias decision path (history window →
  Ŝ → batched two-mode forward → β/QoS rule) at 1–1000 candidate
  placements arriving within one tick —

plus a per-phase cost breakdown of a congested policy-driven scenario
(recorded by :mod:`repro.obs.perf.accounting`), so a regression caught
by the gate is attributable to the phase that slowed down.

The report is emitted as ``BENCH_engine.json`` (CLI wrapper:
``benchmarks/bench_engine.py``); the committed baseline lives at
``benchmarks/baselines/BENCH_engine.json`` and is enforced by
``repro obs perfcheck`` / the CI ``perf-smoke`` job via
:mod:`repro.obs.perf.gate`.

Models are fabricated (random weights, fitted scalers): inference cost
does not depend on weight values, and this keeps the benchmark free of a
multi-minute training phase.
"""

from __future__ import annotations

import time

import numpy as np

from repro.cluster.engine import ClusterEngine
from repro.cluster.scenario import ScenarioConfig, default_pool, run_scenario
from repro.hardware.config import TestbedConfig
from repro.hardware.testbed import Testbed
from repro.models.features import FeatureConfig
from repro.models.performance import PerformancePredictor
from repro.models.predictor import Predictor
from repro.models.signatures import SignatureLibrary
from repro.models.system_state import SystemStatePredictor
from repro.obs.perf.accounting import phases_session
from repro.orchestrator.policies import AdriasPolicy
from repro.workloads import MemoryMode, spark_profile
from repro.workloads.base import WorkloadKind

__all__ = [
    "fabricate_predictor",
    "bench_ticks",
    "bench_decisions",
    "bench_fleet",
    "bench_phases",
    "profile_run",
    "run_engine_bench",
    "format_report",
    "SCHEMA_VERSION",
]

SCHEMA_VERSION = 1

#: Candidate-placement counts of the full decision sweep (1–1000).
DEFAULT_CANDIDATES = (1, 8, 64, 256, 1000)
SMOKE_CANDIDATES = (1, 8, 64)

#: Rack sizes of the fleet tick sweep (per-tick pool arbitration cost).
DEFAULT_FLEET_SIZES = (1, 8, 64)


def fabricate_predictor(
    config: FeatureConfig | None = None,
    lstm_hidden: int = 32,
    seed: int = 0,
    with_lc: bool = True,
) -> Predictor:
    """A fully wired Predictor with fabricated (untrained) weights.

    Shared by ``benchmarks/bench_predictor.py`` and the engine bench:
    scalers are fitted on synthetic samples so the numeric pipeline runs
    end to end, while the weights stay at their seeded initialization.
    """
    config = config if config is not None else FeatureConfig()
    rng = np.random.default_rng(seed)
    n_metrics = config.n_metrics

    system_state = SystemStatePredictor(
        feature_config=config, lstm_hidden=lstm_hidden, seed=seed
    )
    sample = rng.uniform(0.5, 2.0, size=(64, config.history_steps, n_metrics))
    system_state.input_scaler.fit(sample)
    system_state.target_scaler.fit(sample.mean(axis=1))
    system_state._trained = True

    be = PerformancePredictor(
        feature_config=config, lstm_hidden=lstm_hidden, seed=seed + 1
    )
    be.metric_scaler.fit(sample.reshape(-1, n_metrics))
    # A narrow, realistic runtime range: predictions come out of a log
    # transform, so a wide target scale would exp-amplify 1-ulp GEMM
    # differences past the 1e-12 identity gate on untrained weights.
    be.target_scaler.fit(np.log(rng.uniform(30.0, 60.0, size=(64, 1))))
    be._trained = True

    lc = None
    if with_lc:
        lc = PerformancePredictor(
            feature_config=config, lstm_hidden=lstm_hidden, seed=seed + 2
        )
        lc.metric_scaler.fit(sample.reshape(-1, n_metrics))
        lc.target_scaler.fit(np.log(rng.uniform(2.0, 20.0, size=(64, 1))))
        lc._trained = True

    signatures = SignatureLibrary(feature_config=config)
    signatures.add(
        "gmm",
        rng.uniform(0.5, 2.0, size=(int(config.signature_s), n_metrics)),
    )
    return Predictor(
        system_state=system_state,
        be_performance=be,
        lc_performance=lc,
        signatures=signatures,
        feature_config=config,
    )


def _calibrate(predictor: Predictor, trace) -> None:
    """Refit the fabricated scalers on a real trace's counter rows.

    Fabricated scalers are fitted on synthetic uniforms; real testbed
    counters live on very different magnitudes, and feeding them through
    un-calibrated scalers saturates the log-space performance heads into
    ``inf`` — which the AdriasPolicy (correctly) treats as a predictor
    failure and falls back, so the bench would silently measure the
    degradation ladder instead of the decision path.  The trace must
    span the concurrency range the measured run will see (an idle-to-
    congested warm-up), otherwise peak-load windows still land far
    outside the fitted range.
    """
    from repro.models.features import impute_gaps, subsample

    config = predictor.config
    filled, _ = impute_gaps(trace.metrics)
    sub = subsample(filled, config.sample_period_s, config.dt)
    predictor.system_state.input_scaler.fit(sub)
    predictor.system_state.target_scaler.fit(sub)
    for model in (predictor.be_performance, predictor.lc_performance):
        if model is not None:
            model.metric_scaler.fit(sub)


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# -- ticks/sec ---------------------------------------------------------------
def bench_ticks(
    duration_s: float = 600.0, repeats: int = 3, seed: int = 0
) -> dict[str, dict[str, float]]:
    """Ticks/sec at three app-count scales: idle, relaxed, congested."""
    scales: dict[str, dict[str, float]] = {}

    def idle() -> None:
        engine = ClusterEngine(testbed=Testbed(TestbedConfig(seed=seed)))
        engine.run_for(duration_s)

    wall = _best_of(idle, repeats)
    ticks = int(round(duration_s))
    scales["idle"] = {
        "ticks": ticks,
        "mean_apps": 0.0,
        "wall_s": wall,
        "ticks_per_sec": ticks / wall,
    }

    for name, spawn in (("relaxed", (5.0, 60.0)), ("congested", (5.0, 20.0))):
        config = ScenarioConfig(
            duration_s=duration_s, spawn_interval=spawn, seed=seed
        )
        traces = []

        def scenario() -> None:
            traces.append(run_scenario(config))

        wall = _best_of(scenario, repeats)
        trace = traces[-1]  # seeded: every repeat is identical
        ticks = len(trace.times)
        scales[name] = {
            "ticks": ticks,
            "mean_apps": float(np.mean(trace.concurrency)) if ticks else 0.0,
            "wall_s": wall,
            "ticks_per_sec": ticks / wall,
        }
    return scales


# -- decisions/sec -----------------------------------------------------------
def bench_decisions(
    candidate_counts: tuple[int, ...] = DEFAULT_CANDIDATES,
    repeats: int = 3,
    hidden: int = 32,
    seed: int = 0,
) -> dict[str, dict[str, float]]:
    """Adrias decisions/sec for N candidate placements within one tick.

    All candidates of a tick share one history window, so the Ŝ memo
    warms on the first candidate — exactly the production decision path
    exercised by the Fig. 16/17 replays.
    """
    config = FeatureConfig()
    predictor = fabricate_predictor(config, lstm_hidden=hidden, seed=seed)
    policy = AdriasPolicy(predictor)
    profile = spark_profile("gmm")
    predictor.signatures.capture(profile)  # real counters, not synthetic

    engine = ClusterEngine(testbed=Testbed(TestbedConfig(seed=seed)))
    engine.deploy(spark_profile("sort"), MemoryMode.LOCAL)
    # Warm enough trace history for the predictor's full window.
    engine.run_for(config.history_s + 5 * config.dt)
    _calibrate(predictor, engine.trace)

    results: dict[str, dict[str, float]] = {}
    for n in candidate_counts:
        def one_tick(n: int = n) -> None:
            predictor.invalidate_memo()  # fresh tick; memo warms on #1
            for _ in range(n):
                policy(profile, engine)

        wall = _best_of(one_tick, repeats)
        results[str(n)] = {
            "candidates": n,
            "wall_s": wall,
            "decisions_per_sec": n / wall,
        }
    return results


# -- fleet ticks/sec ---------------------------------------------------------
def bench_fleet(
    fleet_sizes: tuple[int, ...] = DEFAULT_FLEET_SIZES,
    duration_s: float = 60.0,
    repeats: int = 3,
    seed: int = 0,
) -> dict[str, dict[str, float]]:
    """Fleet ticks/sec vs rack size, pool arbitration on the hot path.

    Every node carries one remote-mode deployment so the per-tick
    water-filling arbitration sees real bandwidth demand; setup (fleet
    construction, placement) is excluded from the timed window.
    """
    from repro.cluster.fleet import ClusterFleet, FleetDecision
    from repro.hardware.pool import RemotePoolConfig

    results: dict[str, dict[str, float]] = {}
    for n in fleet_sizes:
        config = TestbedConfig(seed=seed)
        pool = RemotePoolConfig(
            capacity_gb=config.node.remote_gb * n,
            aggregate_bw_gbps=config.link.capacity_gbps * n * 0.5,
        )
        best = float("inf")
        for _ in range(repeats):
            fleet = ClusterFleet(n_nodes=n, testbed_config=config, pool=pool)
            for i in range(n):
                fleet.deploy(
                    spark_profile("gmm"),
                    FleetDecision(i, MemoryMode.REMOTE),
                    duration_s=duration_s * 2,
                )
            start = time.perf_counter()
            fleet.run_for(duration_s)
            best = min(best, time.perf_counter() - start)
        ticks = int(round(duration_s / fleet.dt))
        results[str(n)] = {
            "nodes": n,
            "ticks": ticks,
            "wall_s": best,
            "fleet_ticks_per_sec": ticks / best,
        }
    return results


# -- phase breakdown ---------------------------------------------------------
def profile_run(
    duration_s: float = 300.0,
    hidden: int = 32,
    seed: int = 0,
    tracer=None,
):
    """Run a congested Adrias scenario under phase accounting.

    Returns the :class:`~repro.obs.perf.accounting.PhaseAccounting`
    accumulator (``repro obs profile`` prints its ranked table and, when
    ``tracer`` is a :class:`~repro.obs.tracing.SpanTracer`, dumps the
    per-phase Chrome-trace timeline).

    Signatures are pre-captured so first-encounter capture runs (whole
    isolated scenarios) do not pollute the breakdown; the measured run
    then exercises every phase: tick sub-steps, window build, Ŝ,
    performance forwards and the policy rule.
    """
    config = FeatureConfig()
    predictor = fabricate_predictor(config, lstm_hidden=hidden, seed=seed)
    for profile in default_pool():
        if profile.kind is not WorkloadKind.INTERFERENCE:
            predictor.signatures.capture(profile)  # real counter rows
    scenario = ScenarioConfig(
        duration_s=duration_s, spawn_interval=(5.0, 20.0), seed=seed
    )
    # Calibrate on a warm-up replay of the *same* congested scenario so
    # the fitted range covers idle through peak concurrency.
    warm_trace = run_scenario(scenario)
    _calibrate(predictor, warm_trace)
    policy = AdriasPolicy(predictor)
    with phases_session(tracer=tracer) as acct:
        run_scenario(scenario, scheduler=policy)
    return acct


def bench_phases(
    duration_s: float = 300.0, hidden: int = 32, seed: int = 0
) -> dict[str, dict[str, float]]:
    """Per-phase cost snapshot of a congested, Adrias-driven scenario."""
    return profile_run(
        duration_s=duration_s, hidden=hidden, seed=seed
    ).snapshot()


# -- full report -------------------------------------------------------------
def run_engine_bench(
    smoke: bool = False,
    repeats: int = 3,
    hidden: int = 32,
    candidate_counts: tuple[int, ...] | None = None,
    tick_duration_s: float | None = None,
    phase_duration_s: float | None = None,
    seed: int = 0,
) -> dict:
    """Run every section and assemble the ``BENCH_engine.json`` report."""
    if smoke:
        repeats = min(repeats, 2)
        hidden = min(hidden, 8)
        candidates = (
            candidate_counts if candidate_counts is not None else SMOKE_CANDIDATES
        )
        tick_duration = tick_duration_s if tick_duration_s is not None else 60.0
        phase_duration = (
            phase_duration_s if phase_duration_s is not None else 60.0
        )
    else:
        candidates = (
            candidate_counts if candidate_counts is not None else DEFAULT_CANDIDATES
        )
        tick_duration = tick_duration_s if tick_duration_s is not None else 600.0
        phase_duration = (
            phase_duration_s if phase_duration_s is not None else 300.0
        )
    return {
        "schema": SCHEMA_VERSION,
        "kind": "engine",
        "smoke": smoke,
        "config": {
            "repeats": repeats,
            "hidden": hidden,
            "tick_duration_s": tick_duration,
            "phase_duration_s": phase_duration,
            "seed": seed,
        },
        "scales": bench_ticks(
            duration_s=tick_duration, repeats=repeats, seed=seed
        ),
        "decisions": bench_decisions(
            candidate_counts=candidates, repeats=repeats, hidden=hidden,
            seed=seed,
        ),
        "fleet": bench_fleet(
            duration_s=tick_duration, repeats=repeats, seed=seed
        ),
        "phases": bench_phases(
            duration_s=phase_duration, hidden=hidden, seed=seed
        ),
    }


def format_report(report: dict) -> str:
    """Human-readable summary of a ``run_engine_bench`` report."""
    config = report.get("config", {})
    lines = [
        f"engine benchmark (hidden={config.get('hidden')}, "
        f"best of {config.get('repeats')}"
        + (", smoke)" if report.get("smoke") else ")"),
        "ticks/sec by scenario scale:",
    ]
    for name, entry in report.get("scales", {}).items():
        lines.append(
            f"  {name:<10} {entry['ticks_per_sec']:>10.0f} ticks/s  "
            f"({entry['ticks']} ticks, {entry['mean_apps']:.1f} mean apps, "
            f"{entry['wall_s'] * 1e3:.1f} ms)"
        )
    lines.append("Adrias decisions/sec by candidates-per-tick:")
    for n, entry in report.get("decisions", {}).items():
        lines.append(
            f"  {n:>5} candidates {entry['decisions_per_sec']:>10.1f} "
            f"decisions/s  ({entry['wall_s'] * 1e3:.1f} ms/tick)"
        )
    fleet = report.get("fleet", {})
    if fleet:
        lines.append("fleet ticks/sec by rack size (pool arbitration):")
        for n, entry in fleet.items():
            lines.append(
                f"  {n:>5} nodes {entry['fleet_ticks_per_sec']:>12.0f} "
                f"ticks/s  ({entry['ticks']} ticks, "
                f"{entry['wall_s'] * 1e3:.1f} ms)"
            )
    phases = report.get("phases", {})
    if phases:
        total = sum(
            entry["total_s"] for name, entry in phases.items()
            if name != "engine.tick"
        )
        lines.append("phase breakdown (congested Adrias scenario):")
        ranked = sorted(
            phases.items(), key=lambda item: -item[1]["total_s"]
        )
        for name, entry in ranked:
            share = (
                entry["total_s"] / total
                if total and name != "engine.tick" else 0.0
            )
            lines.append(
                f"  {name:<24} {entry['total_s'] * 1e3:>9.2f} ms "
                f"{int(entry['calls']):>9d} calls "
                f"{entry['mean_us']:>9.1f} us/call {share:>6.1%}"
            )
    return "\n".join(lines)
