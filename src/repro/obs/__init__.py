"""``repro.obs`` — unified metrics, tracing and decision-audit layer.

Three collectors behind one on/off switch (default: off, zero-cost):

* :mod:`repro.obs.metrics` — labeled counters / gauges / histograms with
  JSON and Prometheus text exposition;
* :mod:`repro.obs.tracing` — nested spans exported as Chrome trace-event
  JSON (``chrome://tracing`` / Perfetto);
* :mod:`repro.obs.audit` — orchestrator decision log with actual
  outcomes joined back via ``engine.on_finish``.

See :mod:`repro.obs.runtime` for the session/enable/dump lifecycle and
:mod:`repro.obs.report` for the ``python -m repro obs`` summaries.
"""

from repro.obs.audit import DecisionAuditLog, DecisionRecord, NullAuditLog
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.fsio import atomic_write_bytes, atomic_write_text
from repro.obs.runtime import (
    ARTIFACT_NAMES,
    JOURNEY_ARTIFACT_NAMES,
    ObsHandles,
    audit,
    disable,
    dump,
    enable,
    enable_live,
    enabled,
    live_session,
    metrics,
    reset,
    session,
    tracer,
    wall_time,
)
from repro.obs.tracing import NULL_SPAN, NullTracer, Span, SpanTracer

__all__ = [
    # runtime
    "enabled",
    "enable",
    "disable",
    "reset",
    "metrics",
    "tracer",
    "audit",
    "live_session",
    "enable_live",
    "wall_time",
    "session",
    "dump",
    "ObsHandles",
    "ARTIFACT_NAMES",
    "JOURNEY_ARTIFACT_NAMES",
    "atomic_write_text",
    "atomic_write_bytes",
    # metrics
    "MetricsRegistry",
    "NullRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    # tracing
    "SpanTracer",
    "NullTracer",
    "Span",
    "NULL_SPAN",
    # audit
    "DecisionAuditLog",
    "DecisionRecord",
    "NullAuditLog",
]
