"""memtier-style closed-loop load generation and tail-latency model.

The paper measures LC applications with the official Redis Labs
``memtier_benchmark``: 4 threads x 200 closed-loop clients, SET:GET
1:10, constant per-client request counts (§IV-A).  This module models
the served tail latency of such a setup with a queueing approximation:

* the server's *service time* stretches with the same interference
  slowdown model as BE workloads (``WorkloadProfile.slowdown``);
* closed-loop load at utilization ``rho`` amplifies the tail by the
  classic ``1/(1-rho)`` waiting-time factor, normalized so that the
  nominal operating point reproduces the profile's ``base_p99_ms``;
* the p99.9 is a calm-regime multiple of the p99 that inflates further
  as the server approaches saturation (tails grow faster than medians).

This reproduces R4 (local ~ remote in isolation: the only difference is
the ~2% service stretch of remote mode) and R5 (the chasm once the
ThymesisFlow channel saturates, via the back-pressure term inside
``slowdown``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.testbed import SystemPressure
from repro.workloads.base import MemoryMode
from repro.workloads.redis import LCProfile

__all__ = ["LoadGenConfig", "LatencySample", "TailLatencyModel"]

#: Utilization ceiling: closed-loop clients cannot push a queue beyond
#: this point because they self-throttle waiting for responses.
_RHO_CEILING = 0.95


@dataclass(frozen=True)
class LoadGenConfig:
    """memtier_benchmark configuration of §IV-A."""

    threads: int = 4
    clients_per_thread: int = 200
    set_fraction: float = 1.0 / 11.0  # SET:GET = 1:10
    requests_per_client: int = 10000

    def __post_init__(self) -> None:
        if self.threads <= 0 or self.clients_per_thread <= 0:
            raise ValueError("threads and clients_per_thread must be positive")
        if not 0 < self.set_fraction < 1:
            raise ValueError("set_fraction must be in (0, 1)")
        if self.requests_per_client <= 0:
            raise ValueError("requests_per_client must be positive")

    @property
    def total_clients(self) -> int:
        return self.threads * self.clients_per_thread

    @property
    def total_requests(self) -> int:
        return self.total_clients * self.requests_per_client


@dataclass(frozen=True)
class LatencySample:
    """One measured operating point of an LC server."""

    p99_ms: float
    p999_ms: float
    served_ops: float
    offered_ops: float

    @property
    def saturated(self) -> bool:
        return self.served_ops < self.offered_ops * 0.999


class TailLatencyModel:
    """Queueing-based tail-latency model for :class:`LCProfile` servers."""

    def __init__(self, profile: LCProfile) -> None:
        self.profile = profile

    # -- operating point -------------------------------------------------
    def utilization(
        self, pressure: SystemPressure, mode: MemoryMode, load_scale: float = 1.0
    ) -> float:
        """Effective server utilization under interference.

        ``load_scale`` scales the offered load relative to the nominal
        memtier configuration (1.0 = the paper's constant load).
        """
        if load_scale < 0:
            raise ValueError("load_scale cannot be negative")
        stretch = self.profile.slowdown(pressure, mode)
        return min(_RHO_CEILING, self.profile.nominal_rho * load_scale * stretch)

    def sample(
        self, pressure: SystemPressure, mode: MemoryMode, load_scale: float = 1.0
    ) -> LatencySample:
        """Tail latencies and throughput at one operating point."""
        profile = self.profile
        stretch = profile.slowdown(pressure, mode)
        rho = self.utilization(pressure, mode, load_scale)
        # Normalize the M/M/1-style tail amplification to 1.0 at the
        # nominal operating point so base_p99_ms is the isolated value.
        amplification = (1.0 - profile.nominal_rho) / (1.0 - rho)
        p99 = profile.base_p99_ms * stretch * amplification
        # Near saturation the extreme tail outgrows the p99.
        tail_stress = 1.0 + 1.5 * max(0.0, rho - profile.nominal_rho)
        p999 = p99 * profile.tail_ratio * tail_stress

        offered = profile.ops_per_sec * load_scale
        capacity = profile.ops_per_sec / profile.nominal_rho / stretch
        served = min(offered, capacity)
        return LatencySample(
            p99_ms=p99, p999_ms=p999, served_ops=served, offered_ops=offered
        )

    def time_to_serve(
        self,
        requests: int,
        pressure: SystemPressure,
        mode: MemoryMode,
        load_scale: float = 1.0,
    ) -> float:
        """Seconds needed to serve ``requests`` operations (Fig. 10 left)."""
        if requests <= 0:
            raise ValueError("requests must be positive")
        sample = self.sample(pressure, mode, load_scale)
        return requests / sample.served_ops

    def client_sweep(
        self,
        pressure: SystemPressure,
        mode: MemoryMode,
        client_counts: list[int],
        config: LoadGenConfig | None = None,
    ) -> list[LatencySample]:
        """Scale the closed-loop client population (Fig. 4 x-axis)."""
        config = config if config is not None else LoadGenConfig()
        if any(c <= 0 for c in client_counts):
            raise ValueError("client counts must be positive")
        return [
            self.sample(pressure, mode, load_scale=c / config.total_clients)
            for c in client_counts
        ]
