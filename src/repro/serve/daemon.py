"""Long-running orchestrator daemon: admission, ticking, lifecycle.

:class:`OrchestratorDaemon` owns a :class:`~repro.cluster.fleet.ClusterFleet`,
a placement scheduler, an always-on :class:`~repro.obs.live.slo.SloEngine`
and a :class:`~repro.serve.safety.SafetyMonitor`, and exposes a small
request API (``deploy`` / ``complete`` / ``query`` / ``drain`` /
``health`` / ``pause`` / ``resume`` / ``tick``) that the socket server in
:mod:`repro.serve.server` maps one-to-one onto newline-delimited JSON.

Robustness properties, all exercised by the soak tests:

* **Never crashes on input** — malformed or unknown requests produce an
  error response; every handler runs under a catch-all.
* **Watchdog** — a fault plan's ``wedged_tick`` window starves the tick
  loop; once the wall-clock heartbeat exceeds ``watchdog_timeout_s`` the
  daemon restarts the engine loop *behind the circuit breaker*: the
  breaker opens on the restart, half-opens after its cooldown and
  re-closes on the first clean tick.
* **Graceful drain** — SIGTERM/SIGINT (wired by the server) parks
  in-flight deployments into a crash-safe daemon checkpoint (atomic
  write), flushes observability and annotates the live stream's ``end``
  record with the drain reason.
* **Warm restart** — :meth:`OrchestratorDaemon.restore` rebuilds the
  daemon from its checkpoint bit-identically: re-saving the restored
  daemon yields byte-equal checkpoint files.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import obs
from repro.cluster.engine import CapacityError, RemoteUnavailableError
from repro.cluster.fleet import ClusterFleet, FleetDecision, LeastLoadedPlacement
from repro.cluster.scenario import default_pool
from repro.faults.breaker import CircuitBreaker, CircuitState
from repro.faults.checkpoint import (
    _engine_from_dict,
    _engine_to_dict,
    _require,
)
from repro.cluster.failover import FleetHealthManager
from repro.faults.errors import CheckpointError
from repro.faults.plan import FLEET_KINDS, FaultPlan
from repro.hardware.pool import RemotePoolConfig
from repro.obs.fsio import atomic_write_text
from repro.obs.live.slo import SloEngine
from repro.orchestrator.policies import InterferenceThresholdPolicy
from repro.serve.safety import SafetyEnvelope, SafetyMonitor
from repro.workloads.base import MemoryMode, WorkloadKind

__all__ = [
    "DAEMON_CHECKPOINT_VERSION",
    "DaemonConfig",
    "OrchestratorDaemon",
    "load_daemon_checkpoint",
]

DAEMON_CHECKPOINT_VERSION = 1

#: Ledger statuses a deployment can still leave (finish matching).
_OPEN_STATUSES = ("running", "parked")


@dataclass(frozen=True)
class DaemonConfig:
    """Everything needed to rebuild the daemon's serving state."""

    n_nodes: int = 2
    dt: float = 1.0
    max_link_utilization: float = 0.7
    tick_interval_s: float = 0.01
    watchdog_timeout_s: float = 1.0
    request_timeout_s: float = 5.0
    breaker_cooldown_s: float = 30.0
    drain_grace_s: float = 0.0
    pool_regime: str | None = None
    pool_capacity_gb: float | None = None
    pool_bw_gbps: float | None = None
    seed: int = 0
    qos_p99_ms: dict = field(
        default_factory=lambda: {"redis": 4.0, "memcached": 3.0}
    )
    checkpoint_path: str | None = None

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        for name in ("dt", "tick_interval_s", "watchdog_timeout_s",
                     "request_timeout_s", "breaker_cooldown_s"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.drain_grace_s < 0:
            raise ValueError("drain_grace_s cannot be negative")

    def to_dict(self) -> dict:
        return {
            "n_nodes": self.n_nodes,
            "dt": self.dt,
            "max_link_utilization": self.max_link_utilization,
            "tick_interval_s": self.tick_interval_s,
            "watchdog_timeout_s": self.watchdog_timeout_s,
            "request_timeout_s": self.request_timeout_s,
            "breaker_cooldown_s": self.breaker_cooldown_s,
            "drain_grace_s": self.drain_grace_s,
            "pool_regime": self.pool_regime,
            "pool_capacity_gb": self.pool_capacity_gb,
            "pool_bw_gbps": self.pool_bw_gbps,
            "seed": self.seed,
            "qos_p99_ms": dict(self.qos_p99_ms),
            "checkpoint_path": self.checkpoint_path,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DaemonConfig":
        known = {
            "n_nodes", "dt", "max_link_utilization", "tick_interval_s",
            "watchdog_timeout_s", "request_timeout_s", "breaker_cooldown_s",
            "drain_grace_s", "pool_regime", "pool_capacity_gb",
            "pool_bw_gbps", "seed", "qos_p99_ms", "checkpoint_path",
        }
        unknown = set(data) - known
        if unknown:
            raise CheckpointError(
                f"daemon config has unknown fields {sorted(unknown)}"
            )
        return cls(**data)


def load_daemon_checkpoint(path) -> dict:
    """Read and structurally validate a daemon checkpoint file."""
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no daemon checkpoint at {path}")
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise CheckpointError(
            f"corrupt daemon checkpoint {path}: {error}"
        ) from None
    if not isinstance(data, dict) or (
        data.get("version") != DAEMON_CHECKPOINT_VERSION
    ):
        raise CheckpointError(
            f"unsupported daemon checkpoint version {data.get('version')!r} "
            f"(expected {DAEMON_CHECKPOINT_VERSION})"
        )
    missing = {"config", "now", "engines", "ledger", "counters"} - set(data)
    if missing:
        raise CheckpointError(
            f"daemon checkpoint missing fields {sorted(missing)}"
        )
    return data


class OrchestratorDaemon:
    """The serving loop's state machine (transport-agnostic).

    ``clock`` is the wall-clock source for the tick pacer and watchdog;
    tests inject a fake to drive both deterministically.
    """

    def __init__(
        self,
        config: DaemonConfig | None = None,
        envelope: SafetyEnvelope | None = None,
        plan: FaultPlan | None = None,
        clock=time.monotonic,
    ) -> None:
        self.config = config if config is not None else DaemonConfig()
        self.envelope = envelope if envelope is not None else SafetyEnvelope()
        self.plan = plan
        self.clock = clock
        pool = None
        if self.config.pool_regime is not None:
            pool = RemotePoolConfig(
                capacity_gb=self.config.pool_capacity_gb,
                aggregate_bw_gbps=self.config.pool_bw_gbps,
                regime=self.config.pool_regime,
            )
        from repro.hardware.config import TestbedConfig

        self.fleet = ClusterFleet(
            n_nodes=self.config.n_nodes,
            testbed_config=TestbedConfig(seed=self.config.seed),
            dt=self.config.dt,
            pool=pool,
        )
        self.scheduler = LeastLoadedPlacement(
            InterferenceThresholdPolicy(self.config.max_link_utilization)
        )
        #: Fleet failure-domain manager; armed only when the fault plan
        #: carries fleet-level kinds (node_crash / node_rejoin /
        #: pool_device_fail), so plain daemons stay bit-identical.
        self.health: FleetHealthManager | None = None
        if self.plan is not None and any(
            spec.kind in FLEET_KINDS for spec in self.plan.faults
        ):
            self.plan.validate(self.fleet.n_nodes)
            self.health = FleetHealthManager(
                self.plan, scheduler=self.scheduler
            )
            self.fleet.health = self.health
        self.breaker = CircuitBreaker(
            failure_threshold=1,
            cooldown_s=self.config.breaker_cooldown_s,
            name="daemon-engine",
            node="fleet",
        )
        # Always-on: SloEngine writes through obs.runtime, which is a
        # null registry while observability is off.
        self.slo = SloEngine(targets=dict(self.config.qos_p99_ms))
        self.monitor = SafetyMonitor(
            self.envelope, breaker=self.breaker, slo=self.slo
        )
        self.profiles = {p.name: p for p in default_pool()}
        #: Admission ledger: request id -> lifecycle entry.
        self.ledger: dict[str, dict] = {}
        #: (app name, round(decided_s, 6)) -> open request ids, the same
        #: join key the decision audit log uses.
        self._by_key: dict[tuple[str, float], list[str]] = {}
        self._next_id = 0
        self.counters = {
            "submitted": 0,
            "finished": 0,
            "parked": 0,
            "rejected": 0,
            "vetoed": 0,
            "downgraded": 0,
            "completed_early": 0,
            "double_finished": 0,
            "malformed": 0,
            "dropped_conns": 0,
            "watchdog_restarts": 0,
        }
        self.draining = False
        self.drain_reason: str | None = None
        self.paused = False
        #: Indices of wedged_tick plan windows already recovered from —
        #: the sim clock is frozen during a wedge, so without this the
        #: same window would re-wedge immediately after recovery.
        self._cleared_wedges: set[int] = set()
        #: Connection-drop dice; deliberately *not* checkpointed (drops
        #: model the transport, not the orchestrated state).
        seed = self.plan.seed if self.plan is not None else self.config.seed
        self._conn_rng = np.random.default_rng([seed, 0xDAE])
        self._last_tick_wall = self.clock()
        self._wire_engines()

    # -- wiring --------------------------------------------------------------
    def _wire_engines(self) -> None:
        """Chain the ledger/SLO finish hook onto every fleet engine.

        Called at construction and again after checkpoint restore adopts
        rebuilt engines (adoption replaces the engine objects, and with
        them any previously chained hooks).
        """
        for engine in self.fleet.engines:
            previous = engine.on_finish

            def hook(record, _prev=previous):
                if _prev is not None:
                    _prev(record)
                self._on_finish(record)

            engine.on_finish = hook

    def _on_finish(self, record) -> None:
        self.counters["finished"] += 1
        if record.kind is WorkloadKind.LATENCY_CRITICAL:
            self.slo.record(record.name, record.p99_ms, clock=self.fleet.now)
        decided = record.decided_s
        if decided is None:
            return
        key = (record.name, round(decided, 6))
        for req_id in self._by_key.get(key, []):
            entry = self.ledger.get(req_id)
            if entry is None:
                continue
            if entry["status"] in _OPEN_STATUSES:
                entry["status"] = "finished"
                entry["finish_clock"] = round(record.finish_time, 6)
                return
        # Every id under this key already finished: a second record for
        # the same decision would double-count a deployment.
        if key in self._by_key:
            self.counters["double_finished"] += 1

    # -- tick loop -----------------------------------------------------------
    def _wedge_active(self) -> int | None:
        """Index of the active, not-yet-recovered wedged_tick window."""
        if self.plan is None:
            return None
        for index, spec in enumerate(self.plan.faults):
            if (
                spec.kind == "wedged_tick"
                and spec.active(self.fleet.now)
                and index not in self._cleared_wedges
            ):
                return index
        return None

    def pump(self) -> bool:
        """Advance the simulation if a tick is due; returns whether it did.

        The server calls this between socket polls.  While paused or
        draining the heartbeat is reset (a deliberately idle loop is not
        a wedged one).  A wedged tick loop does *not* advance — the
        heartbeat ages until the watchdog fires and restarts the engine
        loop behind the breaker.
        """
        if self.paused or self.draining:
            self._last_tick_wall = self.clock()
            return False
        now_wall = self.clock()
        if now_wall - self._last_tick_wall < self.config.tick_interval_s:
            return False
        if self._wedge_active() is not None:
            if (
                now_wall - self._last_tick_wall
                >= self.config.watchdog_timeout_s
            ):
                self._recover_wedge()
                return True
            return False
        self._tick()
        return True

    def _tick(self) -> None:
        """One guarded fleet tick; a half-open breaker probes on it."""
        probing = (
            self.breaker.allow(self.fleet.now)
            and self.breaker.state is CircuitState.HALF_OPEN
        )
        try:
            self.fleet.tick()
        except Exception:
            self.breaker.record_failure(self.fleet.now)
            raise
        self.slo.advance(self.fleet.now)
        if probing:
            self.breaker.record_success(self.fleet.now)
        self._last_tick_wall = self.clock()

    def _recover_wedge(self) -> None:
        """Watchdog: restart the wedged engine loop behind the breaker."""
        index = self._wedge_active()
        if index is not None:
            self._cleared_wedges.add(index)
        self.counters["watchdog_restarts"] += 1
        self.breaker.record_failure(self.fleet.now)
        if obs.enabled():
            obs.metrics().counter(
                "daemon_watchdog_restarts_total",
                "Engine-loop restarts triggered by the tick watchdog",
            ).inc()
        live = obs.live_session()
        if live is not None:
            live.note_event(
                "watchdog",
                sim=round(self.fleet.now, 6),
                clock=round(self.fleet.now, 6),
                action="engine-restart",
                breaker=self.breaker.state.value,
            )
        self._last_tick_wall = self.clock()

    # -- connection faults ----------------------------------------------------
    def maybe_drop_connection(self) -> bool:
        """Whether the transport should drop the next request (fault plan)."""
        if self.plan is None:
            return False
        spec = self.plan.active(("conn_drop",), self.fleet.now)
        if spec is None:
            return False
        if self._conn_rng.random() >= spec.param("probability", 0.0):
            return False
        self.counters["dropped_conns"] += 1
        live = obs.live_session()
        if live is not None:
            live.note_event(
                "conn_drop", sim=round(self.fleet.now, 6),
                clock=round(self.fleet.now, 6),
            )
        return True

    # -- request handling ------------------------------------------------------
    def handle_line(self, line: str) -> dict:
        """Serve one newline-delimited JSON request; never raises."""
        try:
            data = json.loads(line)
        except json.JSONDecodeError as error:
            self.counters["malformed"] += 1
            return {"ok": False, "error": f"malformed JSON: {error}"}
        if not isinstance(data, dict):
            self.counters["malformed"] += 1
            return {"ok": False, "error": "request must be a JSON object"}
        op = data.get("op")
        handler = {
            "deploy": self._op_deploy,
            "complete": self._op_complete,
            "query": self._op_query,
            "drain": self._op_drain,
            "health": self._op_health,
            "pause": self._op_pause,
            "resume": self._op_resume,
            "tick": self._op_tick,
        }.get(op)
        if handler is None:
            self.counters["malformed"] += 1
            return {"ok": False, "error": f"unknown op {op!r}"}
        try:
            return handler(data)
        except Exception as error:  # noqa: BLE001 — the loop must survive
            return {
                "ok": False,
                "error": f"{type(error).__name__}: {error}",
            }

    def _new_entry(self, app: str, status: str, **fields) -> dict:
        req_id = f"d{self._next_id}"
        self._next_id += 1
        entry = {"id": req_id, "app": app, "status": status, **fields}
        self.ledger[req_id] = entry
        return entry

    def _op_deploy(self, data: dict) -> dict:
        if self.draining:
            return {"ok": False, "error": "daemon is draining"}
        app = data.get("app")
        profile = self.profiles.get(app)
        if profile is None:
            return {"ok": False, "error": f"unknown workload {app!r}"}
        duration = data.get("duration")
        if duration is not None and (
            not isinstance(duration, (int, float)) or duration <= 0
        ):
            return {"ok": False, "error": "duration must be positive"}
        decided = self.fleet.now
        try:
            decision = self.scheduler(profile, self.fleet)
        except CapacityError as error:
            self.counters["rejected"] += 1
            entry = self._new_entry(app, "rejected",
                                    decided_s=round(decided, 6))
            return {
                "ok": False, "id": entry["id"], "status": "rejected",
                "error": str(error),
            }
        engine = self.fleet.engines[decision.node_index]
        node = engine.node_label or f"n{decision.node_index}"
        verdict = self.monitor.review(
            profile, decision.mode, engine,
            fleet=self.fleet, clock=self.fleet.now,
        )
        if not verdict.admitted:
            decision, veto = self._apply_verdict(profile, decision, verdict)
            if veto is not None:
                return veto
            engine = self.fleet.engines[decision.node_index]
            node = engine.node_label or f"n{decision.node_index}"
        status = "running"
        deployment = None
        try:
            deployment = self.fleet.deploy(
                profile, decision, duration_s=duration, decided_s=decided
            )
        except RemoteUnavailableError:
            engine.queue_remote(profile, duration_s=duration,
                                decided_s=decided)
            status = "parked"
            self.counters["parked"] += 1
        self.counters["submitted"] += 1
        self.fleet.note_submitted()
        entry = self._new_entry(
            app, status,
            node=node, mode=decision.mode.value,
            decided_s=round(decided, 6),
            app_id=deployment.app_id if deployment is not None else None,
        )
        self._by_key.setdefault((app, round(decided, 6)), []).append(
            entry["id"]
        )
        return {
            "ok": True, "id": entry["id"], "status": status,
            "node": node, "mode": decision.mode.value,
        }

    def _apply_verdict(
        self, profile, decision: FleetDecision, verdict
    ) -> tuple[FleetDecision, dict | None]:
        """Resolve a non-admit verdict into a local fallback or a veto.

        Returns ``(decision, None)`` for a successful downgrade or
        ``(decision, response)`` when the request is vetoed outright.
        Both outcomes are audited as first-class decision causes.
        """
        constraint = verdict.constraint
        if verdict.action == "downgrade":
            for index in self.scheduler.node_order(self.fleet):
                engine = self.fleet.engines[index]
                if engine.fits(profile, MemoryMode.LOCAL):
                    self.counters["downgraded"] += 1
                    self._audit_safety(
                        profile, engine, "local",
                        f"safety-downgrade:{constraint}", constraint,
                    )
                    return FleetDecision(index, MemoryMode.LOCAL), None
        # Veto action, or a downgrade with no local headroom anywhere.
        self.counters["vetoed"] += 1
        engine = self.fleet.engines[0]
        node = verdict.detail.get("node", engine.node_label or "n0")
        self._audit_safety(
            profile, engine, "none", f"safety-veto:{constraint}", constraint
        )
        entry = self._new_entry(
            profile.name, "vetoed",
            node=node, constraint=constraint,
            decided_s=round(self.fleet.now, 6),
        )
        return decision, {
            "ok": False, "id": entry["id"], "status": "vetoed",
            "constraint": constraint,
            "detail": dict(verdict.detail),
        }

    def _audit_safety(
        self, profile, engine, chosen: str, reason: str, cause: str
    ) -> None:
        obs.audit().record(
            engine=engine,
            policy=self.scheduler.name,
            app_name=profile.name,
            kind=profile.kind.value,
            chosen_mode=chosen,
            reason=reason,
            cause=cause,
        )

    def _op_complete(self, data: dict) -> dict:
        req_id = data.get("id")
        entry = self.ledger.get(req_id)
        if entry is None:
            return {"ok": False, "error": f"unknown deployment id {req_id!r}"}
        if entry["status"] != "running":
            return {
                "ok": False,
                "error": f"deployment {req_id} is {entry['status']}, "
                "not running",
            }
        deployment = self._find_deployment(entry)
        if deployment is None:
            return {
                "ok": False,
                "error": f"deployment {req_id} not found on {entry['node']}",
            }
        # Force the *natural* finish lever for the workload class and
        # let the next tick retire it through the normal accounting path
        # (trace, on_finish, journey) — finishing it in place here would
        # bypass all three.
        if deployment.is_interference:
            deployment.duration_s = 1e-9
        elif deployment._request_budget is not None:
            deployment.served_ops = deployment._request_budget
        else:
            deployment.progress_s = deployment.profile.nominal_runtime_s
        self.counters["completed_early"] += 1
        return {"ok": True, "id": req_id, "status": "completing"}

    def _find_deployment(self, entry: dict):
        for engine in self.fleet.engines:
            if engine.node_label != entry.get("node"):
                continue
            for deployment in engine.deployments:
                if deployment.app_id == entry.get("app_id") and (
                    deployment.running
                ):
                    return deployment
        return None

    def _op_query(self, data: dict) -> dict:
        req_id = data.get("id")
        entry = self.ledger.get(req_id)
        if entry is None:
            return {"ok": False, "error": f"unknown deployment id {req_id!r}"}
        response = {"ok": True, **entry}
        if self.health is not None and entry.get("node"):
            response["node_health"] = self.health.status(entry["node"]).value
        return response

    def _op_drain(self, data: dict) -> dict:
        self.begin_drain(str(data.get("reason") or "client drain request"))
        return {"ok": True, "status": "draining"}

    def _op_health(self, data: dict) -> dict:
        running = sum(len(e.running) for e in self.fleet.engines)
        status = (
            "draining" if self.draining
            else "paused" if self.paused
            else "serving"
        )
        response = {
            "ok": True,
            "status": status,
            "clock": round(self.fleet.now, 6),
            "nodes": self.fleet.n_nodes,
            "running": running,
            "parked": self.fleet.queued_remote,
            "breaker": self.breaker.state.value,
            "counters": dict(self.counters),
            "safety": {
                "vetoes": dict(self.monitor.vetoes),
                "downgrades": dict(self.monitor.downgrades),
            },
        }
        if self.health is not None:
            summary = self.health.summary()
            response["node_health"] = {
                node: self.health.status(node).value
                for node in (
                    engine.node_label or f"n{index}"
                    for index, engine in enumerate(self.fleet.engines)
                )
            }
            response["failovers"] = summary["failovers"]
            response["failover_queue"] = summary["failover_queue"]
        return response

    def _op_pause(self, data: dict) -> dict:
        self.paused = True
        return {"ok": True, "status": "paused"}

    def _op_resume(self, data: dict) -> dict:
        self.paused = False
        return {"ok": True, "status": "serving"}

    def _op_tick(self, data: dict) -> dict:
        n = data.get("n", 1)
        if not isinstance(n, int) or not 1 <= n <= 100000:
            return {"ok": False, "error": "n must be an int in [1, 100000]"}
        for _ in range(n):
            self._tick()
        return {"ok": True, "clock": round(self.fleet.now, 6)}

    # -- lifecycle -------------------------------------------------------------
    def begin_drain(self, reason: str) -> None:
        if self.draining:
            return
        self.draining = True
        self.drain_reason = reason
        live = obs.live_session()
        if live is not None:
            live.note_event(
                "drain", reason=reason, sim=round(self.fleet.now, 6),
                clock=round(self.fleet.now, 6),
            )

    def finalize(self) -> Path | None:
        """Drain-time teardown: grace ticks, checkpoint, close the stream.

        In-flight deployments are *parked in the checkpoint*, not lost: a
        warm restart resumes them mid-flight bit-identically.
        """
        if self.config.drain_grace_s > 0:
            self.fleet.drain(max_seconds=self.config.drain_grace_s)
        path = None
        if self.config.checkpoint_path:
            path = self.save(self.config.checkpoint_path)
        live = obs.live_session()
        if live is not None:
            live.close(reason="daemon draining")
        return path

    # -- checkpointing ---------------------------------------------------------
    def save(self, path) -> Path:
        """Atomically write the daemon checkpoint (crash-safe)."""
        payload = {
            "version": DAEMON_CHECKPOINT_VERSION,
            "config": self.config.to_dict(),
            "envelope": self.envelope.to_dict(),
            "plan": self.plan.to_dict() if self.plan is not None else None,
            "now": self.fleet.now,
            "pool_throttled_ticks": self.fleet.pool_throttled_ticks,
            "engines": [_engine_to_dict(e) for e in self.fleet.engines],
            "breaker": self.breaker.state_dict(),
            "policy": self.scheduler.state_dict(),
            "safety": self.monitor.state_dict(),
            "ledger": self.ledger,
            "next_id": self._next_id,
            "counters": self.counters,
            "cleared_wedges": sorted(self._cleared_wedges),
            "fleet_submitted": self.fleet.submitted,
            "health": (
                self.health.state_dict() if self.health is not None else None
            ),
        }
        return atomic_write_text(path, json.dumps(payload) + "\n")

    @classmethod
    def restore(cls, path, clock=time.monotonic) -> "OrchestratorDaemon":
        """Warm-restart a daemon from its checkpoint, bit-identically."""
        data = load_daemon_checkpoint(path)
        config = DaemonConfig.from_dict(_require(data, "config", "daemon"))
        envelope = SafetyEnvelope.from_dict(data.get("envelope") or {})
        plan = (
            FaultPlan.from_dict(data["plan"])
            if data.get("plan") is not None
            else None
        )
        daemon = cls(config, envelope=envelope, plan=plan, clock=clock)
        engines = _require(data, "engines", "daemon")
        if len(engines) != daemon.fleet.n_nodes:
            raise CheckpointError(
                f"daemon checkpoint has {len(engines)} engines for a "
                f"{daemon.fleet.n_nodes}-node fleet"
            )
        for index, engine_data in enumerate(engines):
            testbed_config = daemon.fleet.engines[index].testbed.config
            engine = _engine_from_dict(
                engine_data, testbed_config, daemon.profiles
            )
            daemon.fleet.adopt_engine(index, engine)
        daemon.fleet._now = _require(data, "now", "daemon")
        daemon.fleet.pool_throttled_ticks = data.get("pool_throttled_ticks", 0)
        if data.get("breaker") is not None:
            daemon.breaker.load_state_dict(data["breaker"])
        daemon.scheduler.load_state_dict(data.get("policy"))
        if data.get("safety") is not None:
            daemon.monitor.load_state_dict(data["safety"])
        daemon.ledger = {
            key: dict(entry)
            for key, entry in _require(data, "ledger", "daemon").items()
        }
        daemon._next_id = _require(data, "next_id", "daemon")
        daemon.counters.update(_require(data, "counters", "daemon"))
        daemon._cleared_wedges = set(data.get("cleared_wedges", []))
        daemon.fleet.submitted = int(data.get("fleet_submitted", 0))
        if daemon.health is not None and data.get("health") is not None:
            daemon.health.load_state_dict(data["health"], daemon.profiles)
        for entry in daemon.ledger.values():
            if entry["status"] in _OPEN_STATUSES and (
                entry.get("decided_s") is not None
            ):
                daemon._by_key.setdefault(
                    (entry["app"], round(entry["decided_s"], 6)), []
                ).append(entry["id"])
        daemon._wire_engines()
        daemon._last_tick_wall = daemon.clock()
        return daemon
