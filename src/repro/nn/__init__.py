"""repro.nn — minimal numpy deep-learning library.

From-scratch replacement for the PyTorch subset the Adrias paper uses:
LSTM encoders, dense blocks (Linear + ReLU + BatchNorm + Dropout), MSE
training with Adam, LR scheduling, gradient clipping and early stopping.

All layers implement an explicit ``forward``/``backward`` pair (see
:class:`repro.nn.Module`); gradients are exact and covered by numerical
gradient checks in the test suite.
"""

from repro.nn.activations import Identity, LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.clipping import clip_grad_norm, clip_grad_value
from repro.nn.data import (
    DataLoader,
    MinMaxScaler,
    StandardScaler,
    TensorDataset,
    train_test_split,
)
from repro.nn.gru import GRU, StackedGRU
from repro.nn.linear import Linear
from repro.nn.losses import HuberLoss, Loss, MAELoss, MSELoss
from repro.nn.metrics import explained_variance, mae, mape, pearson, r2_score, rmse
from repro.nn.module import Module, Sequential
from repro.nn.normalization import BatchNorm1d, LayerNorm
from repro.nn.optim import SGD, Adam, Optimizer, RMSprop
from repro.nn.parameter import Parameter
from repro.nn.recurrent import LSTM, StackedLSTM
from repro.nn.regularization import Dropout
from repro.nn.schedulers import (
    CosineAnnealingLR,
    ExponentialLR,
    ReduceLROnPlateau,
    Scheduler,
    StepLR,
)
from repro.nn.resilience import (
    CheckpointManager,
    CheckpointWriteError,
    DivergenceError,
    DivergenceGuard,
    FitCheckpointError,
    FitState,
    RecoveryPolicy,
    TrainingDivergedError,
    capture_fit_state,
    restore_fit_state,
)
from repro.nn.serialization import (
    ModelFormatError,
    load_model,
    load_state,
    save_model,
    save_state,
)
from repro.nn.training import EarlyStopping, History, NonFiniteLossError, Trainer

__all__ = [
    "Adam",
    "BatchNorm1d",
    "CheckpointManager",
    "CheckpointWriteError",
    "GRU",
    "StackedGRU",
    "CosineAnnealingLR",
    "DataLoader",
    "DivergenceError",
    "DivergenceGuard",
    "Dropout",
    "EarlyStopping",
    "ExponentialLR",
    "FitCheckpointError",
    "FitState",
    "History",
    "HuberLoss",
    "Identity",
    "LSTM",
    "LayerNorm",
    "LeakyReLU",
    "Linear",
    "Loss",
    "MAELoss",
    "MSELoss",
    "MinMaxScaler",
    "ModelFormatError",
    "Module",
    "NonFiniteLossError",
    "Optimizer",
    "Parameter",
    "RMSprop",
    "ReLU",
    "RecoveryPolicy",
    "ReduceLROnPlateau",
    "SGD",
    "Scheduler",
    "Sequential",
    "Sigmoid",
    "StackedLSTM",
    "StandardScaler",
    "StepLR",
    "Tanh",
    "TensorDataset",
    "Trainer",
    "TrainingDivergedError",
    "capture_fit_state",
    "clip_grad_norm",
    "clip_grad_value",
    "explained_variance",
    "load_model",
    "load_state",
    "mae",
    "mape",
    "pearson",
    "r2_score",
    "restore_fit_state",
    "rmse",
    "save_model",
    "save_state",
    "train_test_split",
]
