"""FaultPlan/FaultSpec validation, serialization and seeded derivation."""

import pytest

from repro.faults.errors import FaultPlanError
from repro.faults.plan import (
    DAEMON_KINDS,
    FAULT_KINDS,
    FLEET_KINDS,
    TRAINER_KINDS,
    FaultPlan,
    FaultSpec,
)


def outage(start=100.0, duration=60.0):
    return FaultSpec(kind="link_outage", start_s=start, duration_s=duration)


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultSpec(kind="cosmic_ray", start_s=0.0, duration_s=1.0)

    def test_negative_start_rejected(self):
        with pytest.raises(FaultPlanError, match="start_s"):
            FaultSpec(kind="link_outage", start_s=-1.0, duration_s=1.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(FaultPlanError, match="duration_s"):
            FaultSpec(kind="link_outage", start_s=0.0, duration_s=0.0)

    def test_missing_required_param_rejected(self):
        with pytest.raises(FaultPlanError, match="requires parameter"):
            FaultSpec(kind="link_degrade", start_s=0.0, duration_s=1.0)

    def test_unknown_param_rejected(self):
        with pytest.raises(FaultPlanError, match="does not accept"):
            FaultSpec(
                kind="link_outage", start_s=0.0, duration_s=1.0,
                params={"probability": 0.5},
            )

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.5, "half"])
    def test_probability_range_enforced(self, bad):
        with pytest.raises(FaultPlanError, match="probability"):
            FaultSpec(
                kind="telemetry_dropout", start_s=0.0, duration_s=1.0,
                params={"probability": bad},
            )

    def test_capacity_factor_must_be_fraction(self):
        with pytest.raises(FaultPlanError, match="fraction"):
            FaultSpec(
                kind="link_degrade", start_s=0.0, duration_s=1.0,
                params={"capacity_factor": 0.0},
            )

    def test_latency_factor_must_stretch(self):
        with pytest.raises(FaultPlanError, match="stretch"):
            FaultSpec(
                kind="link_outage", start_s=0.0, duration_s=1.0,
                params={"latency_factor": 0.5},
            )

    def test_predictor_nan_value_vocabulary(self):
        with pytest.raises(FaultPlanError, match="'nan' or 'inf'"):
            FaultSpec(
                kind="predictor_nan", start_s=0.0, duration_s=1.0,
                params={"probability": 1.0, "value": "zero"},
            )

    def test_window_is_half_open(self):
        spec = outage(start=10.0, duration=5.0)
        assert not spec.active(9.99)
        assert spec.active(10.0)
        assert spec.active(14.99)
        assert not spec.active(15.0)


class TestPlanSerialization:
    def test_round_trip_preserves_plan(self):
        plan = FaultPlan.sample(seed=11)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_file_round_trip(self, tmp_path):
        plan = FaultPlan.sample(seed=2)
        path = tmp_path / "plan.json"
        plan.to_file(path)
        assert FaultPlan.from_file(path) == plan

    def test_unknown_plan_field_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fields"):
            FaultPlan.from_dict({"version": 1, "surprise": True})

    def test_wrong_version_rejected(self):
        with pytest.raises(FaultPlanError, match="version"):
            FaultPlan.from_dict({"version": 99, "faults": []})

    def test_invalid_json_rejected(self):
        with pytest.raises(FaultPlanError, match="invalid plan JSON"):
            FaultPlan.from_json("{not json")

    def test_non_integer_seed_rejected(self):
        with pytest.raises(FaultPlanError, match="seed"):
            FaultPlan(faults=(), seed=1.5)


class TestPlanQueries:
    def test_active_filters_by_kind(self):
        plan = FaultPlan(faults=(outage(start=0.0, duration=10.0),))
        assert plan.active(("link_outage",), 5.0) is not None
        assert plan.active(("telemetry_dropout",), 5.0) is None
        assert plan.active(("link_outage",), 20.0) is None

    def test_horizon_is_last_window_close(self):
        plan = FaultPlan(
            faults=(outage(start=0.0, duration=10.0), outage(start=50.0, duration=5.0))
        )
        assert plan.horizon_s == 55.0
        assert FaultPlan().horizon_s == 0.0

    def test_of_kind(self):
        plan = FaultPlan.sample(seed=0)
        assert all(s.kind == "link_outage" for s in plan.of_kind("link_outage"))
        assert len(plan.of_kind("link_outage")) == 1


class TestSampleDerivation:
    def test_same_seed_bit_identical(self):
        assert FaultPlan.sample(seed=5) == FaultPlan.sample(seed=5)

    def test_different_seeds_differ(self):
        assert FaultPlan.sample(seed=5) != FaultPlan.sample(seed=6)

    def test_covers_every_subsystem(self):
        # Engine-clock kinds only; trainer-, daemon- and fleet-scoped
        # kinds come from sample_trainer / sample_daemon /
        # sample_availability instead.
        plan = FaultPlan.sample(seed=0)
        kinds = {s.kind for s in plan.faults}
        expected = (
            set(FAULT_KINDS) - set(TRAINER_KINDS) - set(DAEMON_KINDS)
            - set(FLEET_KINDS)
        )
        assert kinds == expected

    def test_trainer_sample_covers_trainer_kinds(self):
        plan = FaultPlan.sample_trainer(seed=0)
        kinds = {s.kind for s in plan.faults}
        assert kinds == set(TRAINER_KINDS)
        assert FaultPlan.sample_trainer(seed=2) == FaultPlan.sample_trainer(seed=2)
        assert FaultPlan.sample_trainer(seed=2) != FaultPlan.sample_trainer(seed=3)

    def test_outage_is_sixty_seconds(self):
        (spec,) = FaultPlan.sample(seed=3).of_kind("link_outage")
        assert spec.duration_s == 60.0

    def test_predictor_phase_leaves_recovery_runway(self):
        # The breaker (cooldown 120 s) must be able to re-close before
        # the run ends: predictor faults stop well short of the horizon.
        for seed in range(5):
            plan = FaultPlan.sample(seed=seed, duration_s=900.0)
            last_end = max(
                s.end_s for s in plan.faults if s.kind.startswith("predictor")
            )
            assert last_end <= 900.0 - 150.0

    def test_fits_within_runway(self):
        plan = FaultPlan.sample(seed=4, duration_s=900.0)
        assert plan.horizon_s <= 900.0

    def test_short_runway_rejected(self):
        with pytest.raises(FaultPlanError, match="runway"):
            FaultPlan.sample(seed=0, duration_s=120.0)


class TestDaemonKinds:
    def test_conn_drop_requires_probability(self):
        with pytest.raises(FaultPlanError, match="requires parameter"):
            FaultSpec(kind="conn_drop", start_s=0.0, duration_s=10.0)

    def test_wedged_tick_takes_no_params(self):
        with pytest.raises(FaultPlanError, match="does not accept"):
            FaultSpec(
                kind="wedged_tick", start_s=0.0, duration_s=10.0,
                params={"probability": 0.5},
            )
        spec = FaultSpec(kind="wedged_tick", start_s=5.0, duration_s=3.0)
        assert spec.active(5.0) and not spec.active(8.0)

    def test_daemon_kind_grouping(self):
        assert set(DAEMON_KINDS) == {"conn_drop", "wedged_tick"}
        assert set(DAEMON_KINDS) <= set(FAULT_KINDS)

    def test_sample_daemon_covers_daemon_kinds(self):
        plan = FaultPlan.sample_daemon(seed=0)
        assert {s.kind for s in plan.faults} == set(DAEMON_KINDS)
        assert FaultPlan.sample_daemon(seed=2) == FaultPlan.sample_daemon(seed=2)
        assert FaultPlan.sample_daemon(seed=2) != FaultPlan.sample_daemon(seed=3)

    def test_sample_daemon_fits_within_runway(self):
        for seed in range(5):
            plan = FaultPlan.sample_daemon(seed=seed, duration_s=120.0)
            assert plan.horizon_s <= 120.0
            drop, wedge = plan.of_kind("conn_drop") + plan.of_kind("wedged_tick")
            # The drop window closes before the wedge opens: client
            # retries never race the watchdog restart.
            assert drop.end_s <= wedge.start_s

    def test_sample_daemon_short_runway_rejected(self):
        with pytest.raises(FaultPlanError, match="runway"):
            FaultPlan.sample_daemon(seed=0, duration_s=10.0)
