"""The configurable recurrent backbone of the system-state model."""

import numpy as np
import pytest

from repro.models import SystemStateModel, SystemStatePredictor
from repro.models.dataset import build_system_state_dataset


class TestCellSelection:
    def test_gru_backbone_builds_and_runs(self):
        from repro.nn import GRU

        model = SystemStateModel(cell="gru", lstm_hidden=8, block_hidden=16)
        grus = [m for m in model.modules() if isinstance(m, GRU)]
        assert len(grus) == 2
        x = np.random.default_rng(0).normal(size=(3, 10, 7))
        assert model.forward(x).shape == (3, 7)

    def test_unknown_cell_rejected(self):
        with pytest.raises(ValueError, match="lstm.*gru"):
            SystemStateModel(cell="rnn")

    def test_gru_predictor_trains(self, tiny_traces):
        dataset = build_system_state_dataset(tiny_traces, stride_s=30.0)
        predictor = SystemStatePredictor(cell="gru", seed=0)
        predictor.fit(dataset.windows, dataset.targets, epochs=8)
        scores = predictor.evaluate(dataset.windows, dataset.targets)
        assert scores["average"] > 0.2

    def test_gru_predictor_persistence(self, tiny_traces, tmp_path):
        dataset = build_system_state_dataset(tiny_traces, stride_s=30.0)
        predictor = SystemStatePredictor(cell="gru", seed=0)
        predictor.fit(dataset.windows, dataset.targets, epochs=3)
        path = tmp_path / "gru.npz"
        predictor.save(path)
        clone = SystemStatePredictor(cell="gru", seed=9)
        clone.load(path)
        assert np.allclose(
            predictor.predict(dataset.windows[:2]),
            clone.predict(dataset.windows[:2]),
        )
