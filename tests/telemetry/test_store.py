import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import METRIC_NAMES, PerfCounters
from repro.telemetry import MetricStore


def sample(value: float) -> PerfCounters:
    return PerfCounters.from_array(np.full(len(METRIC_NAMES), value))


class TestPush:
    def test_size_grows_until_capacity(self):
        store = MetricStore(capacity=3)
        for i in range(5):
            store.push(float(i), sample(i))
        assert len(store) == 3
        assert store.full

    def test_time_ordering_enforced(self):
        store = MetricStore()
        store.push(1.0, sample(1))
        with pytest.raises(ValueError):
            store.push(1.0, sample(2))

    def test_latest_time(self):
        store = MetricStore()
        store.push(1.0, sample(1))
        store.push(2.5, sample(2))
        assert store.latest_time == 2.5

    def test_latest_time_empty_raises(self):
        with pytest.raises(ValueError):
            MetricStore().latest_time


class TestLast:
    def test_returns_most_recent_in_order(self):
        store = MetricStore(capacity=10)
        for i in range(6):
            store.push(float(i), sample(i))
        window = store.last(3)
        assert np.allclose(window[:, 0], [3, 4, 5])

    def test_wraparound_preserves_order(self):
        store = MetricStore(capacity=4)
        for i in range(10):
            store.push(float(i), sample(i))
        window = store.last(4)
        assert np.allclose(window[:, 0], [6, 7, 8, 9])

    def test_zero_pads_when_underfilled(self):
        store = MetricStore(capacity=10)
        store.push(0.0 + 1, sample(7))
        window = store.last(4)
        assert np.allclose(window[:3, 0], 0.0)
        assert window[3, 0] == 7

    def test_window_larger_than_capacity_raises(self):
        with pytest.raises(ValueError):
            MetricStore(capacity=4).last(5)

    def test_nonpositive_window_raises(self):
        with pytest.raises(ValueError):
            MetricStore().last(0)

    @given(
        capacity=st.integers(min_value=1, max_value=20),
        pushes=st.integers(min_value=0, max_value=60),
    )
    @settings(max_examples=30, deadline=None)
    def test_last_always_matches_tail_of_pushed_sequence(self, capacity, pushes):
        store = MetricStore(capacity=capacity)
        for i in range(pushes):
            store.push(float(i + 1), sample(i))
        n = min(capacity, max(1, pushes))
        window = store.last(n)
        expected = np.arange(max(0, pushes - n), pushes, dtype=float)
        got = window[n - len(expected):, 0] if len(expected) else window[:0, 0]
        assert np.allclose(got, expected)

    @staticmethod
    def _last_reference(store: MetricStore, n: int) -> np.ndarray:
        """The pre-vectorization per-row copy loop, kept as the oracle."""
        take = min(n, len(store))
        rows = np.zeros((n, store._data.shape[1]))
        for offset in range(take):
            src = (store._head - take + offset) % store.capacity
            rows[n - take + offset] = store._data[src]
        return rows

    @given(
        capacity=st.integers(min_value=1, max_value=16),
        pushes=st.integers(min_value=0, max_value=48),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_vectorized_last_matches_reference_loop(self, capacity, pushes, data):
        store = MetricStore(capacity=capacity)
        for i in range(pushes):
            store.push(float(i + 1), sample(i * 1.5 - 3.0))
        n = data.draw(st.integers(min_value=1, max_value=capacity))
        assert np.array_equal(store.last(n), self._last_reference(store, n))

    def test_vectorized_last_matches_reference_across_wrap_boundary(self):
        # Exercise both the contiguous and the two-slice wrapped path.
        store = MetricStore(capacity=5)
        for i in range(8):  # head has wrapped: window straddles the seam
            store.push(float(i + 1), sample(10 * i))
        for n in range(1, 6):
            assert np.array_equal(store.last(n), self._last_reference(store, n))


class TestWindowMean:
    def test_mean_over_last_n(self):
        store = MetricStore()
        for i in range(4):
            store.push(float(i + 1), sample(i))
        assert store.window_mean(2)[0] == pytest.approx(2.5)

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            MetricStore().window_mean(3)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MetricStore(capacity=0)
