#!/usr/bin/env python
"""Client-driven soak of the orchestrator daemon under a tight envelope.

Boots ``repro serve`` as a real subprocess with a deliberately tight
safety envelope (remote-concurrency ceiling of 2) and a connection-drop
fault window covering the whole run, then fires a batch of deployments
at it through :class:`repro.serve.DaemonClient` — whose retries are what
make the induced drops invisible to the caller.  Asserts the headline
robustness claims end to end:

* every request is accounted for: admitted + vetoed + rejected adds up,
  nothing is lost to a dropped connection (drops happen *before* the
  daemon mutates state, so a retry is safe);
* the safety envelope actually bites: at least one remote placement is
  vetoed and audited;
* the fault plan actually bites: at least one connection is dropped;
* a client-requested drain shuts the daemon down with exit status 0 and
  a crash-safe checkpoint whose warm restore re-saves bit-identically.

Usage::

    python examples/serve_safety_soak.py                  # 50 deployments
    python examples/serve_safety_soak.py --deployments 20 # quicker
    python examples/serve_safety_soak.py --out out/soak   # artifact dir

Exit status 0 iff every assertion holds.  The ``--out`` directory keeps
the observability dump (stream + metrics + audit) for upload from CI.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.faults.plan import FaultPlan, FaultSpec  # noqa: E402
from repro.serve.client import DaemonClient  # noqa: E402
from repro.serve.daemon import OrchestratorDaemon  # noqa: E402
from repro.serve.safety import SafetyConstraint, SafetyEnvelope  # noqa: E402

ENV = {**os.environ, "PYTHONPATH": str(REPO / "src")}
APPS = ("redis", "memcached")


def spawn(out: Path, env_path: Path, plan_path: Path, ckpt: Path):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--safety", str(env_path), "--faults", str(plan_path),
         "--checkpoint", str(ckpt),
         "--obs-out", str(out / "obs"), "--obs-stream"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=ENV, cwd=REPO,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        print(f"  [serve] {line.rstrip()}")
        if line.startswith("serve: listening on "):
            return process, int(line.rsplit(":", 1)[1])
    process.kill()
    raise RuntimeError("daemon never reported a listening port")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--deployments", type=int, default=50)
    parser.add_argument("--out", type=Path, default=Path("out/serve-soak"))
    args = parser.parse_args()
    out = args.out
    out.mkdir(parents=True, exist_ok=True)

    env_path = SafetyEnvelope(
        (
            SafetyConstraint("breaker_closed"),
            SafetyConstraint("max_concurrent_remote", 2),
        ),
        description="soak envelope: remote ceiling low enough to trip",
    ).to_file(out / "envelope.json")
    plan_path = FaultPlan(
        faults=(
            FaultSpec("conn_drop", 0.0, 10_000_000.0,
                      {"probability": 0.25}),
        ),
        seed=7,
        description="soak plan: drop a quarter of all requests",
    ).to_file(out / "faults.json")
    ckpt = out / "daemon.ckpt"

    process, port = spawn(out, env_path, plan_path, ckpt)
    statuses: dict[str, int] = {}
    try:
        client = DaemonClient(host="127.0.0.1", port=port, retries=10)
        for index in range(args.deployments):
            response = client.deploy(APPS[index % len(APPS)])
            status = response.get("status", "error")
            statuses[status] = statuses.get(status, 0) + 1
        health = client.health()
        client.request({"op": "drain", "reason": "soak complete"})
    finally:
        if process.poll() is None and not process.stdout.closed:
            for line in process.stdout:
                print(f"  [serve] {line.rstrip()}")
        code = process.wait(timeout=30.0)

    print(f"statuses: {statuses}")
    counters = health["counters"]
    print(f"counters: {counters}")
    failures = []
    if code != 0:
        failures.append(f"daemon exited {code}, wanted 0")
    accounted = sum(statuses.values())
    if accounted != args.deployments:
        failures.append(
            f"{accounted}/{args.deployments} requests accounted for"
        )
    if counters["vetoed"] < 1:
        failures.append("safety envelope never vetoed a placement")
    if counters["dropped_conns"] < 1:
        failures.append("fault plan never dropped a connection")
    booked = (
        counters["submitted"] + counters["vetoed"] + counters["rejected"]
    )
    if booked != args.deployments:
        failures.append(
            f"ledger booked {booked} requests, client sent "
            f"{args.deployments} (lost or double-counted work)"
        )
    if health["safety"]["vetoes"].get("max_concurrent_remote", 0) < 1:
        failures.append("veto tally missing the concurrency constraint")
    if not ckpt.exists():
        failures.append("no drain checkpoint written")
    else:
        restored = OrchestratorDaemon.restore(ckpt)
        resaved = restored.save(out / "resaved.ckpt")
        if resaved.read_bytes() != ckpt.read_bytes():
            failures.append("warm restore is not bit-identical")
        else:
            print("warm restore: bit-identical checkpoint round-trip")
    stream = out / "obs" / "stream.jsonl"
    if not stream.exists():
        failures.append("no observability stream dumped")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"PASS: {counters['submitted']} admitted, "
        f"{counters['vetoed']} vetoed, {counters['rejected']} rejected, "
        f"{counters['dropped_conns']} conns dropped, clean drain"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
