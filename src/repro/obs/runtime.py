"""Global observability runtime: enable/disable, accessors, artifact dump.

The instrumented hot paths (engine tick, link resolve, trainer epochs,
predictor inference, policy decisions) all reach observability through
three module-level accessors — :func:`metrics`, :func:`tracer`,
:func:`audit` — which return no-op singletons until :func:`enable` is
called.  Disabled is the default, so simulation results and benchmark
numbers are bit-identical to an uninstrumented build: the instruments
never touch any RNG and the null objects absorb every call.

Typical usage::

    from repro import obs

    with obs.session() as handles:
        run_experiment()
        obs.dump("out/")          # metrics.json/.prom, trace.json,
                                  # decisions.jsonl

or, from the CLI, ``python -m repro run fig16 --obs-out out/``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.obs.audit import NULL_AUDIT, DecisionAuditLog, NullAuditLog
from repro.obs.fsio import atomic_write_text
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry, NullRegistry
from repro.obs.tracing import NULL_TRACER, NullTracer, SpanTracer

if TYPE_CHECKING:  # pragma: no cover - the live layer imports lazily
    from repro.obs.live.session import LiveSession

__all__ = [
    "ObsHandles",
    "enabled",
    "enable",
    "disable",
    "reset",
    "metrics",
    "tracer",
    "audit",
    "live_session",
    "enable_live",
    "wall_time",
    "session",
    "dump",
    "ARTIFACT_NAMES",
    "JOURNEY_ARTIFACT_NAMES",
]

#: Files written by :func:`dump`, in a stable order.
ARTIFACT_NAMES = (
    "metrics.json",
    "metrics.prom",
    "trace.json",
    "decisions.jsonl",
)

#: Extra artifacts written only when a fleet run recorded journeys.
JOURNEY_ARTIFACT_NAMES = (
    "journeys.jsonl",
    "journeys_trace.json",
)


def _active_journal():
    """The fleet journey journal, if the fleet obs layer was ever used.

    Guarded on ``sys.modules`` so single-node runs never import the
    fleet package just to discover there is nothing to dump.
    """
    import sys

    module = sys.modules.get("repro.obs.fleet.journey")
    if module is None:
        return None
    return module.active_journal()


@dataclass
class ObsHandles:
    """The three live collectors while a session is enabled."""

    metrics: MetricsRegistry
    tracer: SpanTracer
    audit: DecisionAuditLog


_enabled: bool = False
_metrics: MetricsRegistry | NullRegistry = NULL_REGISTRY
_tracer: SpanTracer | NullTracer = NULL_TRACER
_audit: DecisionAuditLog | NullAuditLog = NULL_AUDIT
_live: "LiveSession | None" = None


def enabled() -> bool:
    """Whether observability collection is currently on."""
    return _enabled


def metrics() -> MetricsRegistry | NullRegistry:
    return _metrics


def tracer() -> SpanTracer | NullTracer:
    return _tracer


def audit() -> DecisionAuditLog | NullAuditLog:
    return _audit


def live_session() -> "LiveSession | None":
    """The active live-streaming session, or ``None``.

    Integration points (engine construction, predictor forecasts,
    policy decisions) gate on this returning non-``None`` — a single
    attribute read on the disabled path.  (Named ``live_session`` rather
    than ``live`` so the accessor cannot be shadowed by the
    :mod:`repro.obs.live` subpackage binding on import.)
    """
    return _live


def enable_live(out_dir: str | Path, **kwargs) -> "LiveSession":
    """Start streaming telemetry to ``out_dir`` (idempotent).

    Implies :func:`enable` — the live layer reads the shared metrics
    registry and audit log.  Keyword arguments are forwarded to
    :class:`repro.obs.live.session.LiveSession` (SLO targets, drift
    thresholds, profiler cadence, ...).  The session is torn down by
    :func:`disable`.
    """
    global _live
    enable()
    if _live is None:
        from repro.obs.live.session import LiveSession

        _live = LiveSession(out_dir, **kwargs)
    return _live


def wall_time() -> float:
    """Monotonic wall time when enabled; constant 0.0 when disabled.

    Hot paths use ``start = obs.wall_time()`` so the disabled path skips
    the clock syscall entirely.
    """
    return time.perf_counter() if _enabled else 0.0


def enable() -> ObsHandles:
    """Switch on collection (idempotent); returns the live handles."""
    global _enabled, _metrics, _tracer, _audit
    if not _enabled:
        _metrics = MetricsRegistry()
        _tracer = SpanTracer()
        _audit = DecisionAuditLog()
        _enabled = True
    assert isinstance(_metrics, MetricsRegistry)
    assert isinstance(_tracer, SpanTracer)
    assert isinstance(_audit, DecisionAuditLog)
    return ObsHandles(metrics=_metrics, tracer=_tracer, audit=_audit)


def disable() -> None:
    """Switch collection off and drop the collectors.

    An active live session is closed first (final flush + ``end``
    record), so its stream is complete on disk.
    """
    global _enabled, _metrics, _tracer, _audit, _live
    if _live is not None:
        _live.close()
        _live = None
    _enabled = False
    _metrics = NULL_REGISTRY
    _tracer = NULL_TRACER
    _audit = NULL_AUDIT
    journal = _active_journal()
    if journal is not None:
        import repro.obs.fleet.journey as _journey

        _journey.reset_journal()


def reset() -> None:
    """Clear collected data without toggling the enabled state."""
    _metrics.reset()
    _tracer.reset()
    _audit.reset()
    journal = _active_journal()
    if journal is not None:
        journal.reset()


@contextmanager
def session() -> Iterator[ObsHandles]:
    """Enable observability for a ``with`` block, restoring state after.

    If a session is already active it is left untouched (nested sessions
    share the outer collectors).
    """
    was_enabled = _enabled
    handles = enable()
    try:
        yield handles
    finally:
        if not was_enabled:
            disable()


def dump(out_dir: str | Path) -> dict[str, Path]:
    """Write every artifact of the current session to ``out_dir``.

    Produces ``metrics.json`` (structured snapshot), ``metrics.prom``
    (Prometheus text exposition), ``trace.json`` (Chrome trace-event
    JSON, loadable in Perfetto) and ``decisions.jsonl`` (one decision
    per line, outcomes joined).  Returns ``{artifact name: path}``.

    Each artifact is written atomically (same-directory temp file +
    ``os.replace``), so a crash mid-dump leaves either the previous
    complete artifact or the new one — never a truncated file.  When a
    live session is active its stream is flushed first and its artifact
    paths are included in the returned mapping.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    if _live is not None:
        _live.flush()
    contents = {
        "metrics.json": _metrics.to_json(),
        "metrics.prom": _metrics.to_prometheus(),
        "trace.json": _tracer.to_json(),
        "decisions.jsonl": _audit.to_jsonl(),
    }
    journal = _active_journal()
    if journal is not None and len(journal):
        import json

        # Fleet runs only: journey JSONL + Chrome-trace spans (nodes as
        # trace threads).  Absent from single-node dumps by design.
        contents["journeys.jsonl"] = journal.to_jsonl()
        contents["journeys_trace.json"] = json.dumps(
            journal.to_chrome_trace(), indent=1
        )
    paths = {}
    for name in (*ARTIFACT_NAMES, *JOURNEY_ARTIFACT_NAMES):
        if name not in contents:
            continue
        path = out / name
        atomic_write_text(path, contents[name])
        paths[name] = path
    if _live is not None:
        paths.update(_live.artifact_paths())
    return paths
