"""Local DRAM bandwidth and capacity model.

Local DDR4 sustains ~120 Gbps (§IV-B), so with realistic co-location it
degrades gently — unlike the 2.5 Gbps remote channel which saturates
almost immediately (remark R5: "remote memory gets saturated much more
easily than local DRAM").
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryState", "LocalMemory"]


@dataclass(frozen=True)
class MemoryState:
    """Resolved local-DRAM state for one tick."""

    demanded_gbps: float
    delivered_gbps: float
    utilization: float      # demanded / bandwidth
    queuing_factor: float   # >= 1, access-time stretch from bus contention
    used_gb: float
    capacity_gb: float


class LocalMemory:
    """Bandwidth-contention model for the borrower node's DRAM.

    Below ``contention_floor`` utilization accesses are unaffected; above
    it, queueing stretches access time linearly up to full utilization
    and proportionally to over-subscription beyond that.
    """

    def __init__(
        self,
        bandwidth_gbps: float,
        capacity_gb: float,
        contention_floor: float = 0.6,
        queuing_slope: float = 1.5,
        max_queuing: float = 4.0,
    ) -> None:
        if bandwidth_gbps <= 0 or capacity_gb <= 0:
            raise ValueError("bandwidth and capacity must be positive")
        if not 0 <= contention_floor < 1:
            raise ValueError("contention_floor must be in [0, 1)")
        if queuing_slope <= 0:
            raise ValueError("queuing_slope must be positive")
        if max_queuing < 1:
            raise ValueError("max_queuing must be >= 1")
        self.bandwidth_gbps = bandwidth_gbps
        self.capacity_gb = capacity_gb
        self.contention_floor = contention_floor
        self.queuing_slope = queuing_slope
        #: Access-time stretch ceiling: tenants throttle once the bus is
        #: fully queued, so the stretch saturates in practice.
        self.max_queuing = max_queuing

    def resolve(self, demanded_gbps: float, used_gb: float = 0.0) -> MemoryState:
        if demanded_gbps < 0 or used_gb < 0:
            raise ValueError("demands cannot be negative")
        utilization = demanded_gbps / self.bandwidth_gbps
        delivered = min(demanded_gbps, self.bandwidth_gbps)
        if utilization <= self.contention_floor:
            queuing = 1.0
        else:
            queuing = min(
                self.max_queuing,
                1.0 + self.queuing_slope * (utilization - self.contention_floor),
            )
        return MemoryState(
            demanded_gbps=demanded_gbps,
            delivered_gbps=delivered,
            utilization=utilization,
            queuing_factor=queuing,
            used_gb=used_gb,
            capacity_gb=self.capacity_gb,
        )
