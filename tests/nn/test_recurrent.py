import numpy as np
import pytest

from repro.nn import LSTM, StackedLSTM
from repro.nn.activations import sigmoid
from tests.helpers import check_input_grad, check_param_grads


class TestLSTMForward:
    def test_output_shapes(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 6, 4))
        seq = LSTM(4, 5, return_sequences=True, rng=rng)
        last = LSTM(4, 5, return_sequences=False, rng=rng)
        assert seq.forward(x).shape == (3, 6, 5)
        assert last.forward(x).shape == (3, 5)

    def test_last_of_sequence_equals_last_state(self):
        rng = np.random.default_rng(1)
        lstm = LSTM(3, 4, return_sequences=True, rng=np.random.default_rng(2))
        lstm2 = LSTM(3, 4, return_sequences=False, rng=np.random.default_rng(2))
        x = rng.normal(size=(2, 5, 3))
        assert np.allclose(lstm.forward(x)[:, -1], lstm2.forward(x))

    def test_single_step_matches_manual_cell(self):
        rng = np.random.default_rng(3)
        lstm = LSTM(2, 3, return_sequences=False, rng=rng)
        x = rng.normal(size=(1, 1, 2))
        z = x[:, 0, :] @ lstm.w_x.value.T + lstm.bias.value
        h = 3
        i = sigmoid(z[:, :h])
        f = sigmoid(z[:, h:2 * h])
        g = np.tanh(z[:, 2 * h:3 * h])
        o = sigmoid(z[:, 3 * h:])
        expected = o * np.tanh(i * g)
        assert np.allclose(lstm.forward(x), expected)

    def test_forget_bias_initialized_to_one(self):
        lstm = LSTM(2, 4)
        assert np.allclose(lstm.bias.value[4:8], 1.0)
        assert np.allclose(lstm.bias.value[:4], 0.0)

    def test_hidden_bounded_by_tanh(self):
        rng = np.random.default_rng(4)
        lstm = LSTM(3, 8, rng=rng)
        x = 100.0 * rng.normal(size=(2, 10, 3))
        out = lstm.forward(x)
        assert np.all(np.abs(out) <= 1.0)
        assert np.all(np.isfinite(out))

    def test_input_validation(self):
        lstm = LSTM(3, 4)
        with pytest.raises(ValueError):
            lstm.forward(np.zeros((2, 5)))
        with pytest.raises(ValueError):
            lstm.forward(np.zeros((2, 5, 7)))
        with pytest.raises(ValueError):
            LSTM(0, 4)


class TestLSTMBackward:
    @pytest.mark.parametrize("return_sequences", [True, False])
    def test_param_grads_numerically(self, return_sequences):
        rng = np.random.default_rng(5)
        lstm = LSTM(3, 4, return_sequences=return_sequences, rng=rng)
        x = rng.normal(size=(2, 6, 3))
        shape = (2, 6, 4) if return_sequences else (2, 4)
        y = rng.normal(size=shape)
        check_param_grads(lstm, (x,), y, tol=1e-5)

    def test_input_grad_numerically(self):
        rng = np.random.default_rng(6)
        lstm = LSTM(3, 4, return_sequences=False, rng=rng)
        x = rng.normal(size=(2, 5, 3))
        y = rng.normal(size=(2, 4))
        check_input_grad(lstm, x, y, tol=1e-5)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            LSTM(2, 2).backward(np.zeros((1, 2)))


class TestStackedLSTM:
    def test_layer_wiring(self):
        stack = StackedLSTM(7, 16, num_layers=3, return_sequences=False)
        assert len(stack) == 3
        assert stack[0].input_size == 7
        assert stack[1].input_size == 16
        assert stack[0].return_sequences is True
        assert stack[2].return_sequences is False

    def test_forward_shape(self):
        rng = np.random.default_rng(7)
        stack = StackedLSTM(5, 8, num_layers=2, return_sequences=False, rng=rng)
        x = rng.normal(size=(4, 10, 5))
        assert stack.forward(x).shape == (4, 8)

    def test_param_grads_numerically(self):
        rng = np.random.default_rng(8)
        stack = StackedLSTM(2, 3, num_layers=2, return_sequences=False, rng=rng)
        x = rng.normal(size=(2, 4, 2))
        y = rng.normal(size=(2, 3))
        check_param_grads(stack, (x,), y, tol=1e-5, n_checks=3)

    def test_invalid_layer_count(self):
        with pytest.raises(ValueError):
            StackedLSTM(2, 3, num_layers=0)
