import numpy as np
import pytest

from repro.hardware import METRIC_NAMES, CounterSynthesizer, PerfCounters


class TestPerfCounters:
    def test_array_roundtrip(self):
        values = np.arange(7.0)
        counters = PerfCounters.from_array(values)
        assert np.allclose(counters.as_array(), values)

    def test_field_order_matches_metric_names(self):
        counters = PerfCounters.from_array(np.arange(7.0))
        for index, name in enumerate(METRIC_NAMES):
            assert getattr(counters, name) == index

    def test_wrong_length_raises(self):
        with pytest.raises(ValueError):
            PerfCounters.from_array(np.zeros(5))

    def test_zeros(self):
        assert np.allclose(PerfCounters.zeros().as_array(), 0.0)


class TestSynthesizer:
    @pytest.fixture
    def synth(self):
        return CounterSynthesizer(noise=0.0)

    def test_no_remote_traffic_means_no_flits(self, synth):
        counters = synth.synthesize(
            llc_access_gbps=5.0, miss_inflation=0.0,
            local_bw_gbps=10.0, remote_delivered_gbps=0.0,
            link_latency_cycles=350.0,
        )
        assert counters.rmt_tx_flits == 0.0
        assert counters.rmt_rx_flits == 0.0
        assert counters.llc_loads > 0

    def test_miss_rate_rises_with_inflation(self, synth):
        calm = synth.synthesize(5.0, 0.0, 10.0, 0.0, 350.0)
        contended = synth.synthesize(5.0, 1.0, 10.0, 0.0, 350.0)
        assert contended.llc_misses > calm.llc_misses
        assert contended.llc_loads == pytest.approx(calm.llc_loads)

    def test_miss_rate_capped_below_one(self, synth):
        counters = synth.synthesize(5.0, 100.0, 10.0, 0.0, 350.0)
        assert counters.llc_misses < counters.llc_loads

    def test_remote_traffic_reflected_in_local_counters(self, synth):
        """Remark R3: remote traffic is handled by local controllers."""
        without = synth.synthesize(5.0, 0.0, 10.0, 0.0, 350.0)
        with_remote = synth.synthesize(5.0, 0.0, 10.0, 2.5, 350.0)
        assert with_remote.mem_loads > without.mem_loads
        assert with_remote.mem_stores > without.mem_stores

    def test_flit_accounting(self, synth):
        counters = synth.synthesize(0.0, 0.0, 0.0, 2.5, 900.0)
        total_flits = counters.rmt_tx_flits + counters.rmt_rx_flits
        assert total_flits == pytest.approx(2.5e9 / 8 / 32)

    def test_latency_passthrough(self, synth):
        counters = synth.synthesize(1.0, 0.0, 1.0, 1.0, 777.0)
        assert counters.link_latency == pytest.approx(777.0)

    def test_noise_perturbs_but_stays_nonnegative(self):
        noisy = CounterSynthesizer(noise=0.2, seed=1)
        clean = CounterSynthesizer(noise=0.0)
        a = noisy.synthesize(5.0, 0.1, 10.0, 1.0, 400.0).as_array()
        b = clean.synthesize(5.0, 0.1, 10.0, 1.0, 400.0).as_array()
        assert not np.allclose(a, b)
        assert np.all(a >= 0)

    def test_noise_reproducible_by_seed(self):
        a = CounterSynthesizer(noise=0.1, seed=3).synthesize(5, 0, 10, 1, 400)
        b = CounterSynthesizer(noise=0.1, seed=3).synthesize(5, 0, 10, 1, 400)
        assert np.allclose(a.as_array(), b.as_array())

    def test_negative_traffic_raises(self, synth):
        with pytest.raises(ValueError):
            synth.synthesize(-1.0, 0.0, 0.0, 0.0, 350.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CounterSynthesizer(flit_bytes=0)
        with pytest.raises(ValueError):
            CounterSynthesizer(noise=1.0)
