import pytest

from repro.analysis import metric_performance_correlation
from repro.cluster import ScenarioConfig, run_scenario
from repro.hardware import METRIC_NAMES
from repro.workloads import WorkloadKind


@pytest.fixture(scope="module")
def traces():
    return [
        run_scenario(ScenarioConfig(duration_s=900.0, spawn_interval=(5, 25), seed=s))
        for s in range(3)
    ]


class TestCorrelation:
    def test_structure(self, traces):
        result = metric_performance_correlation(traces, WorkloadKind.BEST_EFFORT)
        assert set(result.prior) == set(METRIC_NAMES)
        assert set(result.during) == set(METRIC_NAMES)
        assert result.n_samples >= 3
        for r in list(result.prior.values()) + list(result.during.values()):
            assert -1.0 <= r <= 1.0

    def test_r8_runtime_beats_historical(self, traces):
        """Remark R8: during-execution metrics correlate more strongly.

        At small trace counts the aggregate means can tie, so assert the
        per-metric shape: the cache- and link-level events — the ones
        Fig. 6 highlights — must correlate more strongly at runtime.
        """
        result = metric_performance_correlation(traces, WorkloadKind.BEST_EFFORT)
        stronger = [
            name
            for name in result.prior
            if abs(result.during[name]) > abs(result.prior[name])
        ]
        assert len(stronger) >= 4
        for name in ("llc_loads", "llc_misses", "link_latency"):
            assert abs(result.during[name]) > abs(result.prior[name])

    def test_remote_only_filter(self, traces):
        remote = metric_performance_correlation(traces, remote_only=True)
        both = metric_performance_correlation(traces, remote_only=False)
        assert both.n_samples > remote.n_samples

    def test_too_few_samples_raise(self):
        with pytest.raises(ValueError):
            metric_performance_correlation([], WorkloadKind.BEST_EFFORT)

    def test_invalid_window(self, traces):
        with pytest.raises(ValueError):
            metric_performance_correlation(traces, prior_window_s=0.0)
