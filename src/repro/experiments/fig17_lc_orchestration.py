"""Experiment Fig. 17 — QoS-aware orchestration of LC applications.

Defines five QoS levels per LC application (from loose to strict,
derived from the Fig. 10 p99 distributions) and counts QoS violations
and offloads for Adrias vs the baselines.

Expected shape (§VI-B): Adrias introduces almost no violations at loose
QoS levels while offloading roughly a third of LC deployments; at
strict levels it converges to All-Local with a small violation excess;
Random/Round-Robin violate far more at every level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.analysis.reporting import format_table
from repro.experiments.common import (
    ExperimentScale,
    eval_scenario_configs,
    get_predictor,
    get_traces,
    scale_from_env,
)
from repro.orchestrator.evaluation import compare_policies, qos_violations
from repro.orchestrator.policies import (
    AdriasPolicy,
    AllLocalPolicy,
    RandomPolicy,
    RoundRobinPolicy,
)
from repro.workloads.base import WorkloadKind
from repro.workloads.registry import lc_profiles

__all__ = ["Fig17Result", "run", "derive_qos_levels"]

N_LEVELS = 5


def derive_qos_levels(
    scale: ExperimentScale, n_levels: int = N_LEVELS
) -> dict[str, list[float]]:
    """Five QoS levels per LC app from the observed p99 distribution.

    Level 0 (loosest) is the ~95th percentile of observed p99s, the
    strictest sits near the median — mirroring how the paper derives its
    QoS levels from Fig. 10.
    """
    samples: dict[str, list[float]] = {name: [] for name in lc_profiles()}
    for trace in get_traces(scale):
        for record in trace.records_of_kind(WorkloadKind.LATENCY_CRITICAL):
            samples[record.name].append(record.p99_ms)
    levels: dict[str, list[float]] = {}
    quantiles = np.linspace(95, 55, n_levels)
    for name, values in samples.items():
        if len(values) < 5:
            raise ValueError(f"too few {name} samples to derive QoS levels")
        levels[name] = [float(np.percentile(values, q)) for q in quantiles]
    return levels


@dataclass(frozen=True)
class Fig17Result:
    #: level index -> policy -> per-app {violations, offloads, total}
    by_level: dict[int, dict[str, dict[str, dict[str, int]]]]
    qos_levels: dict[str, list[float]]

    def violations(self, level: int, policy: str, app: str) -> int:
        return self.by_level[level][policy][app]["violations"]

    def offloads(self, level: int, policy: str, app: str) -> int:
        return self.by_level[level][policy][app]["offloads"]

    def total(self, level: int, policy: str, app: str) -> int:
        return self.by_level[level][policy][app]["total"]

    def format(self) -> str:
        rows = []
        for level, policies in self.by_level.items():
            for policy, apps in policies.items():
                for app, counts in apps.items():
                    rows.append(
                        (
                            level,
                            policy,
                            app,
                            f"{self.qos_levels[app][level]:.2f}",
                            counts["violations"],
                            counts["offloads"],
                            counts["total"],
                        )
                    )
        return format_table(
            ["QoS level", "policy", "app", "QoS p99 ms",
             "violations", "offloads", "total"],
            rows,
            title="Fig. 17 — LC QoS violations and offloads",
        )


def run(
    scale: ExperimentScale | None = None,
    levels: tuple[int, ...] = tuple(range(N_LEVELS)),
) -> Fig17Result:
    scale = scale if scale is not None else scale_from_env()
    predictor = get_predictor(scale)
    qos_levels = derive_qos_levels(scale)
    configs = eval_scenario_configs(scale)
    live = obs.live_session()

    # Baselines are QoS-independent: replay them once.  Stream their SLO
    # burn against the loosest level (the one the paper expects them to
    # violate least).
    if live is not None:
        live.slo.set_targets(
            {name: values[0] for name, values in qos_levels.items()}
        )
    baseline_policies = {
        "random": RandomPolicy(seed=scale.seed + 2),
        "round-robin": RoundRobinPolicy(),
        "all-local": AllLocalPolicy(),
    }
    baseline_results = compare_policies(baseline_policies, configs)

    by_level: dict[int, dict[str, dict[str, dict[str, int]]]] = {}
    for level in levels:
        qos = {name: values[level] for name, values in qos_levels.items()}
        if live is not None:
            live.slo.set_targets(qos)
        adrias = AdriasPolicy(predictor, beta=0.9, qos_p99_ms=qos)
        adrias_result = compare_policies({"adrias": adrias}, configs)["adrias"]
        level_summary: dict[str, dict[str, dict[str, int]]] = {}
        for policy_name, result in {**baseline_results, "adrias": adrias_result}.items():
            level_summary[policy_name] = qos_violations(result, qos)
        by_level[level] = level_summary
    return Fig17Result(by_level=by_level, qos_levels=qos_levels)
