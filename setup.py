"""Legacy setup shim.

The offline environment ships a setuptools too old for PEP 660 editable
installs; this file enables ``pip install -e . --no-build-isolation``
via the classic ``setup.py develop`` path. All metadata lives in
``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
