import pytest

from repro.workloads import (
    WorkloadKind,
    all_profiles,
    be_profiles,
    get_profile,
    interference_profiles,
    lc_profiles,
)


class TestRegistry:
    def test_pool_composition(self):
        """17 Spark + 2 LC + 4 iBench = 23 deployable workloads."""
        assert len(all_profiles()) == 23
        assert len(be_profiles()) == 17
        assert len(lc_profiles()) == 2
        assert len(interference_profiles()) == 4

    def test_names_unique(self):
        registry = all_profiles()
        assert len(registry) == len({p.name for p in registry.values()})

    def test_get_profile(self):
        assert get_profile("redis").name == "redis"
        assert get_profile("nweight").kind is WorkloadKind.BEST_EFFORT

    def test_get_profile_unknown(self):
        with pytest.raises(KeyError, match="available"):
            get_profile("postgres")

    def test_keyed_by_name(self):
        for name, profile in all_profiles().items():
            assert name == profile.name
