import numpy as np
import pytest

from repro.cluster import ScenarioConfig
from repro.orchestrator import (
    AllLocalPolicy,
    AllRemotePolicy,
    PolicyResult,
    RandomPolicy,
    burn_rate_summary,
    compare_policies,
    qos_violations,
)
from repro.workloads import WorkloadKind


@pytest.fixture(scope="module")
def results():
    configs = [
        ScenarioConfig(duration_s=400.0, spawn_interval=(8, 25), seed=50 + i)
        for i in range(2)
    ]
    policies = {
        "all-local": AllLocalPolicy(),
        "all-remote": AllRemotePolicy(),
        "random": RandomPolicy(seed=0),
    }
    return compare_policies(policies, configs)


class TestComparePolicies:
    def test_every_policy_sees_same_arrivals(self, results):
        names = {
            policy: sorted(
                r.name for t in result.traces for r in t.records
            )
            for policy, result in results.items()
        }
        assert names["all-local"] == names["all-remote"] == names["random"]

    def test_offload_fractions(self, results):
        assert results["all-local"].offload_fraction() == 0.0
        assert results["all-remote"].offload_fraction() == 1.0
        assert 0.0 < results["random"].offload_fraction() < 1.0

    def test_remote_generates_link_traffic(self, results):
        assert results["all-local"].total_link_traffic_gb() == 0.0
        assert results["all-remote"].total_link_traffic_gb() > 0.0

    def test_all_remote_slower_medians(self, results):
        """Remote placement degrades the susceptible benchmarks."""
        local = results["all-local"]
        remote = results["all-remote"]
        shared = set(local.benchmark_names(WorkloadKind.BEST_EFFORT)) & set(
            remote.benchmark_names(WorkloadKind.BEST_EFFORT)
        )
        worse = sum(
            1
            for name in shared
            if remote.median_performance(name) > local.median_performance(name)
        )
        assert worse >= len(shared) * 0.7

    def test_placement_counts_sum(self, results):
        result = results["random"]
        for name in result.benchmark_names(WorkloadKind.BEST_EFFORT):
            local_n, remote_n = result.placement_counts(name)
            assert local_n + remote_n == len(result.performances(name))

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            compare_policies({}, [ScenarioConfig()])
        with pytest.raises(ValueError):
            compare_policies({"a": AllLocalPolicy()}, [])


class TestPolicyResult:
    def test_median_of_missing_benchmark_is_nan(self):
        result = PolicyResult(policy_name="x")
        assert np.isnan(result.median_performance("nosuch"))

    def test_offload_fraction_empty(self):
        assert PolicyResult(policy_name="x").offload_fraction() == 0.0


class TestQosViolations:
    def test_counts(self, results):
        result = results["all-remote"]
        summary = qos_violations(result, {"redis": 1e9, "memcached": 1e-9})
        assert summary["redis"]["violations"] == 0
        mc = summary["memcached"]
        assert mc["violations"] == mc["total"]
        assert mc["offloads"] == mc["total"]  # all-remote offloads everything

    def test_invalid_qos(self, results):
        with pytest.raises(ValueError):
            qos_violations(results["random"], {"redis": 0.0})


class TestBurnRateSummary:
    def test_peaks_track_violation_density(self, results):
        result = results["all-remote"]
        # No violations -> zero burn in every window.
        clean = burn_rate_summary(
            result, {"redis": 1e9}, objective=0.9, windows=(60.0, 600.0)
        )["redis"]
        assert clean["violations"] == 0
        assert set(clean["peak_burn"]) == {"60", "600"}
        assert all(v == 0.0 for v in clean["peak_burn"].values())
        # Every deployment violates -> burn saturates at 1 / error budget.
        burnt = burn_rate_summary(
            result, {"redis": 1e-9}, objective=0.9, windows=(60.0, 600.0)
        )["redis"]
        assert burnt["violations"] == burnt["total"] > 0
        assert burnt["peak_burn"]["60"] == pytest.approx(1.0 / 0.1)

    def test_matches_qos_violation_counts(self, results):
        result = results["random"]
        qos = {"redis": 2.0, "memcached": 2.0}
        offline = qos_violations(result, qos)
        burn = burn_rate_summary(result, qos)
        for name in qos:
            assert burn[name]["violations"] == offline[name]["violations"]
            assert burn[name]["total"] == offline[name]["total"]

    def test_invalid_qos(self, results):
        with pytest.raises(ValueError):
            burn_rate_summary(results["random"], {"redis": -1.0})
