"""Subprocess SIGTERM drain soak: graceful exit, crash-safe warm restart.

Satellite regression for the daemon's headline robustness claims: a
SIGTERM'd ``repro serve`` exits 0, parks every in-flight deployment in
its checkpoint (nothing lost, nothing double-finished) and a warm
restart from that checkpoint is bit-identical.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve.client import DaemonClient
from repro.serve.daemon import OrchestratorDaemon, load_daemon_checkpoint

SRC = Path(__file__).resolve().parents[2] / "src"
START_TIMEOUT_S = 30.0
EXIT_TIMEOUT_S = 30.0


def spawn_daemon(tmp_path, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=tmp_path,
    )
    deadline = time.monotonic() + START_TIMEOUT_S
    lines = []
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        lines.append(line)
        if line.startswith("serve: listening on "):
            port = int(line.rsplit(":", 1)[1])
            return process, port
    process.kill()
    raise AssertionError(f"daemon never came up; output: {lines!r}")


def stop(process):
    process.send_signal(signal.SIGTERM)
    output = process.stdout.read()
    code = process.wait(timeout=EXIT_TIMEOUT_S)
    return code, output


@pytest.mark.slow
def test_sigterm_drain_parks_everything_and_restarts_warm(tmp_path):
    ckpt = tmp_path / "daemon.ckpt"
    process, port = spawn_daemon(tmp_path, "--checkpoint", str(ckpt))
    client = DaemonClient(host="127.0.0.1", port=port)
    try:
        ids = []
        for index in range(8):
            app = ("redis", "memcached")[index % 2]
            response = client.deploy(app, duration=3600.0)
            assert response["ok"] is True, response
            ids.append(response["id"])
        # Finish one through the natural path so the soak covers both
        # in-flight and completed entries in the checkpoint.
        assert client.complete(ids[0])["ok"] is True
        assert client.tick(3)["ok"] is True
        health = client.health()
        assert health["ok"] is True
        assert health["counters"]["submitted"] == 8
    finally:
        code, output = stop(process)
    assert code == 0, output
    assert "serve: drained" in output

    # -- nothing lost, nothing double-finished ------------------------------
    data = load_daemon_checkpoint(ckpt)
    statuses = [e["status"] for e in data["ledger"].values()]
    open_or_done = sum(
        statuses.count(s) for s in ("running", "parked", "finished")
    )
    assert open_or_done == data["counters"]["submitted"] == 8
    assert statuses.count("finished") == data["counters"]["finished"] == 1
    assert data["counters"]["double_finished"] == 0
    for req_id in ids[1:]:
        assert data["ledger"][req_id]["status"] in ("running", "parked")

    # -- warm restart is bit-identical --------------------------------------
    restored = OrchestratorDaemon.restore(ckpt)
    resaved = restored.save(tmp_path / "resaved.ckpt")
    assert resaved.read_bytes() == ckpt.read_bytes()

    # -- and the restarted daemon actually serves ---------------------------
    process, port = spawn_daemon(tmp_path, "--resume", str(ckpt))
    client = DaemonClient(host="127.0.0.1", port=port)
    try:
        health = client.health()
        assert health["counters"]["submitted"] == 8
        assert health["running"] + health["parked"] == 7
        response = client.deploy("redis")
        assert response["ok"] is True
    finally:
        code, output = stop(process)
    assert code == 0, output


@pytest.mark.slow
def test_sigint_also_drains_cleanly(tmp_path):
    process, port = spawn_daemon(tmp_path)
    client = DaemonClient(host="127.0.0.1", port=port)
    assert client.deploy("redis")["ok"] is True
    process.send_signal(signal.SIGINT)
    output = process.stdout.read()
    assert process.wait(timeout=EXIT_TIMEOUT_S) == 0, output
    assert "serve: drained" in output


@pytest.mark.slow
def test_malformed_socket_traffic_never_kills_the_daemon(tmp_path):
    import socket as socket_module

    process, port = spawn_daemon(tmp_path)
    try:
        for payload in (b"{nope\n", b"[]\n", b'{"op": "wat"}\n'):
            with socket_module.create_connection(
                ("127.0.0.1", port), timeout=5.0
            ) as sock:
                sock.sendall(payload)
                response = json.loads(sock.makefile().readline())
            assert response["ok"] is False
        client = DaemonClient(host="127.0.0.1", port=port)
        health = client.health()
        assert health["ok"] is True
        assert health["counters"]["malformed"] == 3
    finally:
        code, output = stop(process)
    assert code == 0, output
