"""Fleet-wide observability plane over the single-engine obs primitives.

Layered on :mod:`repro.obs` the way the rack fleet is layered on the
single-node engine:

* :mod:`repro.obs.fleet.journey` — cross-node deployment lifecycle
  tracing (queued → placement → admission → park/retry → finish),
  exportable as JSONL and Chrome-trace spans;
* :mod:`repro.obs.fleet.rollup` — node-label metric merging (counters /
  gauges / histograms) and worst-node / population-weighted SLO burn
  rollups;
* :mod:`repro.obs.fleet.report` — the per-node table behind
  ``repro obs report --fleet`` and ``repro obs watch --fleet``.

Node attribution itself lives at the sources: each
:class:`~repro.cluster.engine.ClusterEngine` in a fleet carries a
``node_label`` and writes its metric families with a ``node`` label
(single-node runs default to ``n0``), and the
:class:`~repro.cluster.fleet.ClusterFleet` emits pool-arbitration
telemetry.  Everything is bit-inert while observability is disabled.
"""

from repro.obs.fleet.journey import (
    DeploymentJourney,
    FleetJournal,
    JourneyHop,
    NodeJourney,
    active_journal,
    reset_journal,
    session_journal,
)
from repro.obs.fleet.report import (
    fleet_summary,
    format_fleet_report,
    render_fleet_frame,
)
from repro.obs.fleet.rollup import (
    fleet_burn_rollup,
    fleet_rollup,
    merge_node_series,
)

__all__ = [
    "DeploymentJourney",
    "FleetJournal",
    "JourneyHop",
    "NodeJourney",
    "active_journal",
    "reset_journal",
    "session_journal",
    "fleet_summary",
    "format_fleet_report",
    "render_fleet_frame",
    "fleet_burn_rollup",
    "fleet_rollup",
    "merge_node_series",
]
