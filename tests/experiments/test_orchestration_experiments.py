"""Smoke tests for the orchestration experiment drivers at micro scale.

Structural plumbing only — quantitative §VI-B claims are asserted by
the benchmark harness at real training scale.
"""

import pytest

import numpy as np

from repro.experiments import (
    ablations,
    availability,
    fig16_be_orchestration,
    fig17_lc_orchestration,
    traffic_reduction,
)
from repro.workloads import WorkloadKind
from tests.experiments.test_common import MICRO


class TestFig16:
    @pytest.fixture(scope="class")
    def result(self):
        return fig16_be_orchestration.run(scale=MICRO, betas=(1.0, 0.7))

    def test_policies_present(self, result):
        assert {"random", "round-robin", "all-local",
                "adrias-1", "adrias-0.7"} == set(result.results)

    def test_offload_bounds(self, result):
        for policy in result.results:
            assert 0.0 <= result.offload(policy) <= 1.0
        assert result.offload("all-local") == 0.0

    def test_median_drop_reference_is_zero(self, result):
        assert result.median_drop("all-local") == pytest.approx(0.0)

    def test_placement_counts_consistent(self, result):
        policy_result = result.results["random"]
        for name in policy_result.benchmark_names(WorkloadKind.BEST_EFFORT):
            local, remote = policy_result.placement_counts(name)
            assert local + remote >= 1

    def test_format(self, result):
        assert "Fig. 16" in result.format()


class TestFig17:
    @pytest.fixture(scope="class")
    def result(self):
        return fig17_lc_orchestration.run(scale=MICRO, levels=(0, 4))

    def test_levels_and_policies(self, result):
        assert set(result.by_level) == {0, 4}
        for level in result.by_level.values():
            assert {"random", "round-robin", "all-local", "adrias"} == set(level)

    def test_qos_levels_monotone(self, result):
        for thresholds in result.qos_levels.values():
            assert all(b <= a + 1e-9 for a, b in zip(thresholds, thresholds[1:]))

    def test_counts_consistent(self, result):
        for level in result.by_level.values():
            for apps in level.values():
                for counts in apps.values():
                    assert 0 <= counts["violations"] <= counts["total"]
                    assert 0 <= counts["offloads"] <= counts["total"]

    def test_all_local_never_offloads(self, result):
        for level in result.by_level.values():
            for counts in level["all-local"].values():
                assert counts["offloads"] == 0

    def test_format(self, result):
        assert "Fig. 17" in result.format()


class TestTraffic:
    def test_entries_and_reductions(self):
        result = traffic_reduction.run(scale=MICRO, betas=(0.8,))
        assert {"random", "round-robin", "adrias-0.8"} == set(result.entries)
        for entry in result.entries.values():
            assert entry.traffic_gb >= 0
            assert 0 <= entry.offload_fraction <= 1
        assert result.reduction_vs("adrias-0.8", "random") <= 1.0
        assert "traffic" in result.format().lower()


class TestAvailability:
    @pytest.fixture(scope="class")
    def result(self):
        return availability.run(scale=MICRO)

    def test_conditions_complete_work(self, result):
        assert result.healthy.completed > 0
        assert result.faulted.completed > 0
        assert result.n_nodes == availability.N_NODES

    def test_ledger_never_violated(self, result):
        assert result.healthy.conservation_violations == 0
        assert result.faulted.conservation_violations == 0
        assert result.healthy.conservation_checks > 0

    def test_nothing_silently_lost(self, result):
        assert result.residual_parked == 0
        displaced = result.drained + result.evicted
        if displaced:
            assert result.replayed == displaced
            assert result.recovered_fraction == pytest.approx(1.0)
            assert np.isfinite(result.recovery_time_mean_s)

    def test_deterministic_across_runs(self, result):
        again = availability.run(scale=MICRO)
        assert again.faulted == result.faulted
        assert again.healthy == result.healthy
        assert again.drained == result.drained

    def test_format(self, result):
        text = result.format()
        assert "Availability" in text
        assert "recovered fraction" in text


class TestAblationDrivers:
    def test_beta_sweep_structure(self):
        points = ablations.beta_sweep(scale=MICRO, betas=(1.0, 0.6))
        assert [p.beta for p in points] == [1.0, 0.6]
        assert all(0 <= p.offload_fraction <= 1 for p in points)

    def test_link_capacity_whatif(self):
        results = ablations.link_capacity_whatif(capacities_gbps=(2.5, 40.0))
        assert results[40.0] < results[2.5]
