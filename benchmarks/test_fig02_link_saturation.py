"""Bench Fig. 2 — link saturation sweep (remarks R1-R3).

Paper shape: delivered throughput caps at ~2.5 Gbps; channel latency
~350 cycles through 4 memBw trashers, ~900 from 8 onwards; local memory
counters rise with remote traffic.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import fig02_link_saturation


def test_fig02_link_saturation(benchmark, report):
    result = run_once(benchmark, fig02_link_saturation.run)
    report(result.format())

    points = {p.n_microbenchmarks: p for p in result.points}

    # R1 — bounded throughput at ~2.5 Gbps regardless of offered load.
    assert result.throughput_cap_gbps == pytest.approx(2.5, abs=0.01)
    assert points[32].delivered_gbps == pytest.approx(points[8].delivered_gbps,
                                                      rel=0.01)
    # R2 — two latency regimes with the knee between 4 and 8.
    assert points[1].latency_cycles == pytest.approx(350, abs=10)
    assert points[4].latency_cycles < 500
    assert points[8].latency_cycles > 850
    assert points[32].latency_cycles == pytest.approx(900, abs=20)
    # R3 — remote traffic inflates local-hierarchy counters.
    assert points[8].counters.mem_loads > points[1].counters.mem_loads
    assert points[8].counters.llc_loads > points[1].counters.llc_loads
    # Back-pressure grows with offered load past saturation.
    assert points[32].backpressure > points[16].backpressure > points[8].backpressure
