import numpy as np
import pytest

from repro.nn import BatchNorm1d, LayerNorm
from tests.helpers import check_input_grad, check_param_grads


class TestBatchNormForward:
    def test_training_normalizes_batch(self):
        rng = np.random.default_rng(0)
        bn = BatchNorm1d(4)
        x = rng.normal(loc=5.0, scale=3.0, size=(64, 4))
        out = bn.forward(x)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-8)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-3)

    def test_running_stats_converge(self):
        rng = np.random.default_rng(1)
        bn = BatchNorm1d(2, momentum=0.5)
        for _ in range(50):
            bn.forward(rng.normal(loc=2.0, scale=1.5, size=(128, 2)))
        assert np.allclose(bn.running_mean, 2.0, atol=0.3)
        assert np.allclose(np.sqrt(bn.running_var), 1.5, atol=0.3)

    def test_eval_uses_running_stats(self):
        rng = np.random.default_rng(2)
        bn = BatchNorm1d(3)
        for _ in range(20):
            bn.forward(rng.normal(size=(64, 3)))
        bn.eval()
        x = rng.normal(size=(1, 3))
        out1 = bn.forward(x)
        out2 = bn.forward(x)
        assert np.allclose(out1, out2)  # deterministic single-sample inference

    def test_single_sample_training_falls_back(self):
        bn = BatchNorm1d(3)
        out = bn.forward(np.ones((1, 3)))
        assert np.all(np.isfinite(out))

    def test_shape_validation(self):
        bn = BatchNorm1d(3)
        with pytest.raises(ValueError):
            bn.forward(np.zeros((2, 4)))
        with pytest.raises(ValueError):
            bn.forward(np.zeros((2, 3, 1)))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            BatchNorm1d(0)
        with pytest.raises(ValueError):
            BatchNorm1d(3, momentum=0.0)


class TestBatchNormBackward:
    def test_param_grads_numerically(self):
        rng = np.random.default_rng(3)
        bn = BatchNorm1d(3)
        x = rng.normal(size=(8, 3))
        y = rng.normal(size=(8, 3))
        check_param_grads(bn, (x,), y, tol=1e-4)

    def test_input_grad_numerically(self):
        rng = np.random.default_rng(4)
        bn = BatchNorm1d(3)
        x = rng.normal(size=(8, 3))
        y = rng.normal(size=(8, 3))
        check_input_grad(bn, x, y, tol=1e-4)

    def test_eval_mode_input_grad(self):
        rng = np.random.default_rng(5)
        bn = BatchNorm1d(3)
        bn.forward(rng.normal(size=(32, 3)))  # populate running stats
        bn.eval()
        x = rng.normal(size=(4, 3))
        y = rng.normal(size=(4, 3))
        check_input_grad(bn, x, y, tol=1e-4)


class TestLayerNorm:
    def test_normalizes_last_axis(self):
        rng = np.random.default_rng(6)
        ln = LayerNorm(8)
        x = rng.normal(loc=3.0, scale=2.0, size=(4, 8))
        out = ln.forward(x)
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-8)

    def test_3d_input(self):
        rng = np.random.default_rng(7)
        ln = LayerNorm(4)
        x = rng.normal(size=(2, 5, 4))
        assert ln.forward(x).shape == (2, 5, 4)

    def test_grads_numerically(self):
        rng = np.random.default_rng(8)
        ln = LayerNorm(5)
        x = rng.normal(size=(6, 5))
        y = rng.normal(size=(6, 5))
        check_param_grads(ln, (x,), y, tol=1e-4)
        check_input_grad(ln, x, y, tol=1e-4)

    def test_state_dict_includes_running_buffers(self):
        bn = BatchNorm1d(3)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state
        bn2 = BatchNorm1d(3)
        bn.forward(np.random.default_rng(9).normal(size=(16, 3)))
        bn2.load_state_dict(bn.state_dict())
        assert np.allclose(bn2.running_mean, bn.running_mean)
