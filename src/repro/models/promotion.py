"""Gated model promotion for the Fig. 15 retraining loop.

:func:`retrain` alone swaps a freshly-fit performance model in
unconditionally — if the new corpus is skewed, or the candidate fit
diverged and recovered into a mediocre optimum, the serving Predictor
silently gets *worse*.  :func:`gated_retrain` closes that hole:

1. split a seeded held-out slice off the retraining corpus;
2. score the incumbent model on it;
3. fit a candidate on the remaining samples (under the resilient
   training runtime — divergence recovery and trainer-fault chaos plug
   straight in);
4. promote the candidate only if its held-out R² does not regress more
   than :attr:`GateConfig.tolerance` below the incumbent's; otherwise
   keep the incumbent and record the rejection.

Retrain attempts also run against a wall-clock budget (organic via
:attr:`GateConfig.timeout_s`, injected via the ``retrain_timeout``
fault kind); an over-budget candidate is abandoned exactly like a
regressing one.  Every decision is returned as a
:class:`PromotionDecision` and mirrored to obs metrics/trace/live
events, so the recovery arc of a faulted retrain is auditable end to
end.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.cluster.trace import Trace
from repro.faults.errors import RetrainTimeout
from repro.models.dataset import build_performance_dataset
from repro.models.performance import PerformancePredictor
from repro.models.predictor import Predictor
from repro.nn.resilience import RecoveryPolicy, TrainingDivergedError
from repro.workloads.base import WorkloadKind

__all__ = ["GateConfig", "PromotionDecision", "gated_retrain"]


@dataclass(frozen=True)
class GateConfig:
    """Promotion-gate knobs.

    ``tolerance`` is the maximum held-out R² regression a candidate may
    show versus the incumbent and still be promoted (candidates that
    *improve* always pass).  ``timeout_s`` is an optional wall-clock
    budget per retrain attempt; ``None`` means unbounded (injected
    ``retrain_timeout`` faults still apply).
    """

    tolerance: float = 0.02
    holdout_fraction: float = 0.2
    min_holdout: int = 4
    timeout_s: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        if not 0.0 < self.holdout_fraction < 1.0:
            raise ValueError("holdout_fraction must be in (0, 1)")
        if self.min_holdout < 2:
            raise ValueError("min_holdout must be >= 2")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")


@dataclass(frozen=True)
class PromotionDecision:
    """Audit record for one per-kind promotion attempt."""

    kind: str
    promoted: bool
    #: "promoted", "no_incumbent", "regression", "timeout" or "diverged".
    reason: str
    candidate_r2: float | None = None
    incumbent_r2: float | None = None
    elapsed_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "promoted": self.promoted,
            "reason": self.reason,
            "candidate_r2": self.candidate_r2,
            "incumbent_r2": self.incumbent_r2,
            "elapsed_s": self.elapsed_s,
        }


def _holdout_split(n: int, gate: GateConfig) -> tuple[np.ndarray, np.ndarray]:
    """Seeded (train_idx, holdout_idx) permutation split."""
    n_hold = max(gate.min_holdout, int(round(n * gate.holdout_fraction)))
    if n - n_hold < gate.min_holdout:
        raise ValueError(
            f"corpus of {n} samples is too small for a "
            f"{gate.holdout_fraction:.0%} holdout with min_holdout="
            f"{gate.min_holdout}"
        )
    order = np.random.default_rng([gate.seed, n]).permutation(n)
    return order[n_hold:], order[:n_hold]


def _score(model: PerformancePredictor | None, data, future) -> float | None:
    if model is None:
        return None
    r2 = model.evaluate(
        data.state, data.signature, data.mode, future, data.targets
    )["r2"]
    return float(r2) if np.isfinite(r2) else None


def _observe(decision: PromotionDecision) -> None:
    if obs.enabled():
        obs.metrics().counter(
            "model_promotions_total",
            "Gated retrain outcomes by workload kind",
            labels=("kind", "outcome"),
        ).labels(kind=decision.kind, outcome=decision.reason).inc()
        obs.tracer().instant(
            "model_promotion", category="models.promotion",
            **decision.to_dict(),
        )
    live = obs.live_session()
    if live is not None:
        live.note_event("promotion", **decision.to_dict())


def gated_retrain(
    predictor: Predictor,
    traces: list[Trace],
    *,
    kinds: tuple[WorkloadKind, ...] = (
        WorkloadKind.BEST_EFFORT,
        WorkloadKind.LATENCY_CRITICAL,
    ),
    epochs: int = 50,
    seed: int = 0,
    gate: GateConfig | None = None,
    chaos=None,
    recovery: RecoveryPolicy | None = None,
) -> tuple[Predictor, list[PromotionDecision]]:
    """Retrain the performance models with gated promotion.

    Drop-in replacement for :func:`repro.models.retraining.retrain` that
    returns ``(predictor, decisions)``: the predictor reuses the
    incumbent model for every kind whose candidate was rejected, and
    ``decisions`` records why.  ``chaos`` is an optional
    :class:`repro.faults.training.TrainingChaos` driving trainer-side
    fault windows; ``recovery`` (default: a stock
    :class:`RecoveryPolicy`) arms divergence recovery on candidate fits.
    """
    if predictor.system_state is None:
        raise ValueError("predictor has no trained system-state model")
    gate = gate if gate is not None else GateConfig()
    recovery = recovery if recovery is not None else RecoveryPolicy()
    incumbents: dict[WorkloadKind, PerformancePredictor | None] = {
        WorkloadKind.BEST_EFFORT: predictor.be_performance,
        WorkloadKind.LATENCY_CRITICAL: predictor.lc_performance,
    }
    models = dict(incumbents)
    decisions: list[PromotionDecision] = []
    for kind in kinds:
        if kind is WorkloadKind.INTERFERENCE:
            raise ValueError("interference workloads have no performance model")
        data = build_performance_dataset(
            traces, predictor.signatures, kind, predictor.config
        )
        train_idx, hold_idx = _holdout_split(len(data), gate)
        train, holdout = data.subset(train_idx), data.subset(hold_idx)
        hold_future = predictor.system_state.predict(holdout.state)
        incumbent_r2 = _score(incumbents[kind], holdout, hold_future)

        budget_s = gate.timeout_s
        if chaos is not None:
            injected = chaos.retrain_budget_s()
            if injected is not None:
                budget_s = (
                    injected if budget_s is None else min(budget_s, injected)
                )
        started = time.monotonic()
        candidate_r2 = None
        try:
            candidate = PerformancePredictor(
                feature_config=predictor.config, seed=seed
            )
            candidate.fit(
                train.state, train.signature, train.mode,
                predictor.system_state.predict(train.state), train.targets,
                epochs=epochs, chaos=chaos, recovery=recovery,
            )
            elapsed = time.monotonic() - started
            if budget_s is not None and elapsed > budget_s:
                raise RetrainTimeout(elapsed_s=elapsed, budget_s=budget_s)
            candidate_r2 = _score(candidate, holdout, hold_future)
        except RetrainTimeout as timeout:
            decision = PromotionDecision(
                kind=kind.name.lower(), promoted=False, reason="timeout",
                incumbent_r2=incumbent_r2, elapsed_s=timeout.elapsed_s,
            )
        except TrainingDivergedError:
            decision = PromotionDecision(
                kind=kind.name.lower(), promoted=False, reason="diverged",
                incumbent_r2=incumbent_r2,
                elapsed_s=time.monotonic() - started,
            )
        else:
            elapsed = time.monotonic() - started
            if incumbent_r2 is None:
                promoted, reason = True, "no_incumbent"
            elif (
                candidate_r2 is not None
                and candidate_r2 >= incumbent_r2 - gate.tolerance
            ):
                promoted, reason = True, "promoted"
            else:
                promoted, reason = False, "regression"
            decision = PromotionDecision(
                kind=kind.name.lower(), promoted=promoted, reason=reason,
                candidate_r2=candidate_r2, incumbent_r2=incumbent_r2,
                elapsed_s=elapsed,
            )
            if promoted:
                models[kind] = candidate
        if chaos is not None:
            chaos.note_retrain(timed_out=decision.reason == "timeout")
        _observe(decision)
        decisions.append(decision)
    promoted_predictor = Predictor(
        system_state=predictor.system_state,
        be_performance=models[WorkloadKind.BEST_EFFORT],
        lc_performance=models[WorkloadKind.LATENCY_CRITICAL],
        signatures=predictor.signatures,
        feature_config=predictor.config,
    )
    return promoted_predictor, decisions
