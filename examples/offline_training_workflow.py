"""Collect-once / train-many: the production offline workflow.

The paper's offline phase (§V-B1) simulates an expensive trace corpus
once and then iterates on models.  This example shows the persistence
APIs that make that workflow practical:

1. simulate a small scenario corpus and **save the traces** to disk;
2. reload them, build datasets and train the system-state model;
3. **save the trained predictor**, reload it into a fresh process-like
   object and verify the predictions survive the round trip.

Usage:  python examples/offline_training_workflow.py [workdir]
"""

import pathlib
import sys
import tempfile

import numpy as np

from repro.cluster import ScenarioConfig, Trace, run_scenario
from repro.models import SystemStatePredictor, build_system_state_dataset


def main() -> None:
    workdir = pathlib.Path(
        sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="adrias-")
    )
    workdir.mkdir(parents=True, exist_ok=True)

    # 1. Collect and persist traces (do this once; it is the slow part).
    print(f"collecting traces into {workdir} ...")
    trace_paths = []
    for seed, high in enumerate((20, 40, 60)):
        trace = run_scenario(
            ScenarioConfig(duration_s=1200.0, spawn_interval=(5, high), seed=seed)
        )
        path = workdir / f"scenario_{seed}.npz"
        trace.save(path)
        trace_paths.append(path)
        print(f"  {path.name}: {len(trace)} ticks, {len(trace.records)} records")

    # 2. Reload and train (iterate on this step as much as you like).
    traces = [Trace.load(path) for path in trace_paths]
    dataset = build_system_state_dataset(traces, stride_s=15.0)
    print(f"\ntraining on {len(dataset)} windows ...")
    predictor = SystemStatePredictor(seed=0)
    predictor.fit(dataset.windows, dataset.targets, epochs=30)
    scores = predictor.evaluate(dataset.windows, dataset.targets)
    print(f"train-set average R2: {scores['average']:.3f}")

    # 3. Persist the model and prove the round trip.
    model_path = workdir / "system_state.npz"
    predictor.save(model_path)
    clone = SystemStatePredictor(seed=123)
    clone.load(model_path)
    sample = dataset.windows[:3]
    assert np.allclose(predictor.predict(sample), clone.predict(sample))
    print(f"model saved to {model_path} and verified after reload")


if __name__ == "__main__":
    main()
