"""End-to-end learning tasks: the substrate must actually learn.

Small synthetic problems with known solutions, each solvable in a few
seconds of CPU training.  These catch subtle gradient or optimizer bugs
that unit-level checks miss.
"""

import numpy as np

from repro.nn import (
    LSTM,
    Adam,
    DataLoader,
    Linear,
    MSELoss,
    Sequential,
    StackedLSTM,
    Tanh,
    TensorDataset,
    Trainer,
)


class TestSequenceRegression:
    def test_lstm_learns_running_sum(self):
        """Predict the mean of a scalar sequence — pure memory task."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(256, 8, 1))
        y = x.mean(axis=1)
        model = Sequential(
            LSTM(1, 12, return_sequences=False, rng=rng),
            Linear(12, 1, rng=rng),
        )
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01), MSELoss())
        loader = DataLoader(TensorDataset(x, y), batch_size=32, shuffle=True,
                            rng=rng)
        history = trainer.fit(loader, epochs=40)
        assert history.train_loss[-1] < 0.01

    def test_lstm_learns_last_element(self):
        """Copy the final timestep — tests gating, not accumulation."""
        rng = np.random.default_rng(1)
        x = rng.normal(size=(256, 6, 2))
        y = x[:, -1, :]
        model = Sequential(
            StackedLSTM(2, 16, num_layers=2, return_sequences=False, rng=rng),
            Linear(16, 2, rng=rng),
        )
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01), MSELoss())
        loader = DataLoader(TensorDataset(x, y), batch_size=32, shuffle=True,
                            rng=rng)
        history = trainer.fit(loader, epochs=50)
        assert history.train_loss[-1] < 0.05

    def test_order_sensitivity(self):
        """An LSTM must distinguish a sequence from its reverse."""
        rng = np.random.default_rng(2)
        lstm = LSTM(1, 8, return_sequences=False, rng=rng)
        x = rng.normal(size=(1, 10, 1))
        forward_out = lstm.forward(x)
        backward_out = lstm.forward(x[:, ::-1, :])
        assert not np.allclose(forward_out, backward_out)


class TestNonlinearRegression:
    def test_mlp_learns_xor_like_surface(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(-1, 1, size=(512, 2))
        y = (x[:, 0] * x[:, 1]).reshape(-1, 1)  # multiplicative interaction
        model = Sequential(
            Linear(2, 24, rng=rng), Tanh(),
            Linear(24, 24, rng=rng), Tanh(),
            Linear(24, 1, rng=rng),
        )
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01), MSELoss())
        loader = DataLoader(TensorDataset(x, y), batch_size=64, shuffle=True,
                            rng=rng)
        history = trainer.fit(loader, epochs=60)
        assert history.train_loss[-1] < 0.005

    def test_linear_model_cannot_solve_it(self):
        """Sanity counter-test: the interaction needs the hidden layer."""
        rng = np.random.default_rng(4)
        x = rng.uniform(-1, 1, size=(512, 2))
        y = (x[:, 0] * x[:, 1]).reshape(-1, 1)
        model = Sequential(Linear(2, 1, rng=rng))
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01), MSELoss())
        loader = DataLoader(TensorDataset(x, y), batch_size=64, shuffle=True,
                            rng=rng)
        history = trainer.fit(loader, epochs=40)
        variance = float(np.var(y))
        assert history.train_loss[-1] > 0.5 * variance
