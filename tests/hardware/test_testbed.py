import numpy as np
import pytest

from repro.hardware import (
    NodeConfig,
    ResourceDemand,
    Testbed,
    TestbedConfig,
)


@pytest.fixture
def testbed():
    return Testbed(TestbedConfig(counter_noise=0.0))


class TestResourceDemand:
    def test_addition(self):
        a = ResourceDemand(cpu_threads=2, llc_mb=1, remote_bw_gbps=0.5)
        b = ResourceDemand(cpu_threads=3, local_bw_gbps=4)
        total = a + b
        assert total.cpu_threads == 5
        assert total.llc_mb == 1
        assert total.local_bw_gbps == 4
        assert total.remote_bw_gbps == 0.5

    def test_total_of_empty_list(self):
        total = ResourceDemand.total([])
        assert total.cpu_threads == 0

    def test_negative_field_raises(self):
        with pytest.raises(ValueError):
            ResourceDemand(cpu_threads=-1)


class TestResolve:
    def test_empty_system_is_calm(self, testbed):
        pressure = testbed.resolve([])
        assert pressure.cpu_utilization == 0.0
        assert pressure.llc.miss_inflation == 0.0
        assert pressure.link.offered_gbps == 0.0
        assert pressure.cpu_oversubscription == 0.0

    def test_cpu_utilization(self, testbed):
        demands = [ResourceDemand(cpu_threads=32.0), ResourceDemand(cpu_threads=48.0)]
        pressure = testbed.resolve(demands)
        assert pressure.cpu_utilization == pytest.approx(80 / 64)
        assert pressure.cpu_oversubscription == pytest.approx(16 / 64)

    def test_total_demand_recorded(self, testbed):
        demands = [ResourceDemand(remote_bw_gbps=1.0, llc_access_gbps=2.0)] * 3
        pressure = testbed.resolve(demands)
        assert pressure.total_demand.remote_bw_gbps == pytest.approx(3.0)
        assert pressure.total_demand.llc_access_gbps == pytest.approx(6.0)

    def test_local_capacity_guard(self, testbed):
        with pytest.raises(MemoryError):
            testbed.resolve([ResourceDemand(local_gb=2000.0)])

    def test_remote_capacity_guard(self, testbed):
        with pytest.raises(MemoryError):
            testbed.resolve([ResourceDemand(remote_gb=600.0)])

    def test_custom_node_config(self):
        testbed = Testbed(TestbedConfig(node=NodeConfig(logical_cores=8)))
        pressure = testbed.resolve([ResourceDemand(cpu_threads=8.0)])
        assert pressure.cpu_utilization == pytest.approx(1.0)


class TestCounters:
    def test_counters_reflect_pressure(self, testbed):
        busy = testbed.resolve(
            [ResourceDemand(llc_access_gbps=8.0, local_bw_gbps=40.0,
                            remote_bw_gbps=2.0)]
        )
        idle = testbed.resolve([])
        busy_counters = testbed.sample_counters(busy).as_array()
        idle_counters = testbed.sample_counters(idle).as_array()
        assert np.all(busy_counters[:6] > idle_counters[:6])

    def test_noise_config_respected(self):
        noisy = Testbed(TestbedConfig(counter_noise=0.1, seed=1))
        demand = [ResourceDemand(llc_access_gbps=5.0, local_bw_gbps=10.0)]
        p = noisy.resolve(demand)
        a = noisy.sample_counters(p).as_array()
        b = noisy.sample_counters(p).as_array()
        assert not np.allclose(a, b)  # fresh noise draw per sample


class TestNodeConfigValidation:
    def test_rejects_bad_latency_ordering(self):
        with pytest.raises(ValueError):
            NodeConfig(dram_latency_ns=900.0, remote_latency_ns=80.0)

    def test_rejects_nonpositive_resources(self):
        with pytest.raises(ValueError):
            NodeConfig(logical_cores=0)
        with pytest.raises(ValueError):
            NodeConfig(llc_mb=0.0)

    def test_testbed_config_noise_bounds(self):
        with pytest.raises(ValueError):
            TestbedConfig(counter_noise=1.5)
