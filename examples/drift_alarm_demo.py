#!/usr/bin/env python
"""Demo: online drift detection catching a degraded Predictor mid-run.

Drives one randomized scenario under an :class:`AdriasPolicy` whose
predictor is a *scripted* stand-in (isolated-baseline estimates — no
training needed), with live observability streaming to an output
directory.  Halfway through, the predictor is silently degraded (its
estimates are multiplied by a constant factor), as if the workload mix
had drifted away from the training distribution.

The live session joins every decision's prediction against the realized
outcome; the Page–Hinkley detector sees the relative-error jump and
fires a ``drift`` event into ``stream.jsonl`` within a bounded number of
joined decisions.  Watch it afterwards with::

    PYTHONPATH=src python examples/drift_alarm_demo.py --out out/demo
    python -m repro obs watch out/demo/stream.jsonl --once
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import obs
from repro.cluster.scenario import ScenarioConfig, run_scenario
from repro.models.features import FeatureConfig
from repro.orchestrator.policies import AdriasPolicy
from repro.workloads.base import MemoryMode, WorkloadKind


class ScriptedPredictor:
    """Duck-typed Predictor stand-in returning isolated baselines.

    Implements exactly the surface :class:`AdriasPolicy` touches
    (``has_signature`` / ``attach`` / ``config`` / ``predict_both_modes``)
    so the demo needs no trained models.  Multiplying ``degradation``
    models a predictor that has drifted off the workload distribution:
    estimates scale away from reality while staying self-consistent, so
    the policy keeps functioning and only the prediction error exposes
    the problem.
    """

    def __init__(self) -> None:
        self.config = FeatureConfig()
        self.degradation = 1.0

    def has_signature(self, profile) -> bool:
        return True

    def attach(self, engine) -> None:
        pass

    def predict_both_modes(self, profile, history) -> dict:
        if profile.kind is WorkloadKind.LATENCY_CRITICAL:
            local = profile.base_p99_ms
            remote = profile.base_p99_ms * profile.remote_slowdown
        else:
            local = profile.isolated_runtime(MemoryMode.LOCAL)
            remote = profile.isolated_runtime(MemoryMode.REMOTE)
        return {
            MemoryMode.LOCAL: local * self.degradation,
            MemoryMode.REMOTE: remote * self.degradation,
        }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", default="out/drift-demo",
                        help="live-session output directory")
    parser.add_argument("--duration", type=float, default=1800.0,
                        help="scenario length in simulated seconds")
    parser.add_argument("--degrade-at", type=float, default=None,
                        help="sim time at which the predictor degrades "
                             "(default: duration / 2)")
    parser.add_argument("--factor", type=float, default=4.0,
                        help="degradation factor applied to estimates")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    degrade_at = (
        args.degrade_at if args.degrade_at is not None else args.duration / 2
    )

    scripted = ScriptedPredictor()
    policy = AdriasPolicy(scripted, beta=0.8, default_qos_ms=6.0)

    def scheduler(profile, engine):
        if engine.now >= degrade_at and scripted.degradation == 1.0:
            scripted.degradation = args.factor
            print(f"[demo] predictor degraded x{args.factor:g} "
                  f"at sim t={engine.now:.0f}s")
        return policy(profile, engine)

    live = obs.enable_live(args.out, flush_every=32)
    # A relaxed arrival rate keeps contention mild, so the scripted
    # isolated-baseline estimates are *good* before the degradation —
    # the error jump is then unambiguous.
    config = ScenarioConfig(
        duration_s=args.duration, spawn_interval=(25.0, 45.0), seed=args.seed
    )
    run_scenario(config, scheduler=scheduler)
    paths = obs.dump(args.out)
    alarms = list(live.drift.alarms)
    obs.disable()  # closes the stream (end record)

    print(f"[demo] scenario finished; artifacts in {Path(args.out)}")
    for name in sorted(paths):
        print(f"  {paths[name]}")
    if not alarms:
        print("[demo] no drift alarm fired (unexpected)")
        return 1
    for alarm in alarms:
        lag = alarm.sim_time - degrade_at
        print(f"[demo] drift alarm: stream={alarm.stream} "
              f"sim t={alarm.sim_time:.0f}s (+{lag:.0f}s after degradation) "
              f"score={alarm.score:.2f} ewma|rel err|={alarm.ewma_abs_error:.2f}")
    first = min(a.sim_time for a in alarms)
    print(json.dumps({
        "degrade_at_s": degrade_at,
        "first_alarm_sim_s": first,
        "detection_lag_s": first - degrade_at,
        "alarms": len(alarms),
    }))
    return 0


if __name__ == "__main__":
    sys.exit(main())
