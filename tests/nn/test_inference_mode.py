"""Inference-mode fast path: train(False) semantics, cache-free LSTM.

The Predictor serves online decisions through eval-mode forwards; these
tests pin down the contract the fast path relies on: numerically
identical outputs (atol=1e-12), no BPTT cache allocation, and a loud
error if someone tries to backprop through an inference forward.
"""

import numpy as np
import pytest

from repro.nn import LSTM, Linear, ReLU, Sequential, StackedLSTM


class TestModuleModeSwitch:
    def test_train_false_equals_eval(self):
        model = Sequential(Linear(4, 8), ReLU(), Linear(8, 2))
        model.train(False)
        assert all(not m.training for m in model.modules())
        assert model.inference
        model.train()
        assert all(m.training for m in model.modules())
        assert not model.inference


class TestLSTMInference:
    @pytest.mark.parametrize("return_sequences", [True, False])
    def test_matches_training_forward(self, return_sequences):
        lstm = LSTM(5, 7, return_sequences=return_sequences,
                    rng=np.random.default_rng(1))
        x = np.random.default_rng(0).normal(size=(3, 11, 5))
        reference = lstm.forward(x)
        lstm.eval()
        fast = lstm.forward(x)
        assert fast.shape == reference.shape
        assert np.allclose(fast, reference, atol=1e-12, rtol=0.0)

    def test_inference_forward_clears_cache(self):
        lstm = LSTM(3, 4, rng=np.random.default_rng(2))
        x = np.random.default_rng(3).normal(size=(2, 6, 3))
        lstm.forward(x)
        assert lstm._cache is not None  # training forward builds BPTT cache
        lstm.eval()
        lstm.forward(x)
        assert lstm._cache is None  # a shared model pins no O(T·N·H) memory

    def test_backward_after_inference_raises(self):
        lstm = LSTM(3, 4, return_sequences=False, rng=np.random.default_rng(2))
        x = np.random.default_rng(3).normal(size=(2, 6, 3))
        lstm.eval()
        out = lstm.forward(x)
        with pytest.raises(RuntimeError, match="inference"):
            lstm.backward(np.ones_like(out))

    def test_train_restores_bptt(self):
        lstm = LSTM(3, 4, return_sequences=False, rng=np.random.default_rng(2))
        x = np.random.default_rng(3).normal(size=(2, 6, 3))
        lstm.eval()
        lstm.forward(x)
        lstm.train()
        out = lstm.forward(x)
        grad_in = lstm.backward(np.ones_like(out))
        assert grad_in.shape == x.shape

    def test_backward_before_any_forward_still_clear(self):
        lstm = LSTM(3, 4, rng=np.random.default_rng(2))
        with pytest.raises(RuntimeError, match="before forward"):
            lstm.backward(np.ones((2, 6, 4)))

    @pytest.mark.parametrize("return_sequences", [True, False])
    def test_stacked_lstm_matches(self, return_sequences):
        stack = StackedLSTM(4, 6, num_layers=2,
                            return_sequences=return_sequences,
                            rng=np.random.default_rng(4))
        x = np.random.default_rng(5).normal(size=(2, 9, 4))
        reference = stack.forward(x)
        stack.eval()
        fast = stack.forward(x)
        assert np.allclose(fast, reference, atol=1e-12, rtol=0.0)

    def test_batched_rows_match_single_rows(self):
        # The Predictor batches local/remote as N=2; each row must equal
        # the corresponding single-sample forward.
        stack = StackedLSTM(4, 6, return_sequences=False,
                            rng=np.random.default_rng(6)).eval()
        x = np.random.default_rng(7).normal(size=(2, 9, 4))
        batched = stack.forward(x)
        for row in range(2):
            single = stack.forward(x[row : row + 1])
            assert np.allclose(batched[row], single[0], atol=1e-12, rtol=0.0)


class TestLinearInference:
    def test_eval_skips_input_cache(self):
        layer = Linear(3, 2)
        layer.eval()
        layer.forward(np.ones((4, 3)))
        assert layer._input is None
        with pytest.raises(RuntimeError, match="inference"):
            layer.backward(np.ones((4, 2)))

    def test_eval_output_matches_train(self):
        layer = Linear(3, 2, rng=np.random.default_rng(8))
        x = np.random.default_rng(9).normal(size=(4, 3))
        reference = layer.forward(x)
        layer.eval()
        assert np.allclose(layer.forward(x), reference, atol=0.0, rtol=0.0)
