"""Experiment Fig. 3 — Spark local vs remote runtime in isolation.

Expected shape (remark R4): ~20-25% average remote degradation, highly
non-uniform — nweight/lr suffer ~2x while gmm/pca lose <10%.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.characterization import isolation_comparison
from repro.analysis.reporting import format_table
from repro.workloads.spark import SPARK_BENCHMARKS

__all__ = ["Fig3Result", "run"]


@dataclass(frozen=True)
class Fig3Result:
    results: dict[str, dict[str, float]]

    @property
    def mean_degradation(self) -> float:
        return float(np.mean([r["ratio"] for r in self.results.values()])) - 1.0

    def ratio(self, name: str) -> float:
        return self.results[name]["ratio"]

    def format(self) -> str:
        rows = [
            (
                name,
                f"{r['local']:.1f}",
                f"{r['remote']:.1f}",
                f"{r['ratio']:.2f}x",
            )
            for name, r in sorted(
                self.results.items(), key=lambda kv: -kv[1]["ratio"]
            )
        ]
        rows.append(("MEAN", "", "", f"{self.mean_degradation * 100:.1f}%"))
        return format_table(
            ["benchmark", "local s", "remote s", "remote/local"],
            rows,
            title="Fig. 3 — Spark isolated runtime, local vs remote memory",
        )


def run() -> Fig3Result:
    return Fig3Result(results=isolation_comparison(list(SPARK_BENCHMARKS.values())))
