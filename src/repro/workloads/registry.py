"""Unified workload registry.

One lookup point for every deployable workload: the 17 Spark benchmarks
(BE), Redis and Memcached (LC) and the four iBench interference kinds.
The scenario generator draws from this pool (§V-B1).
"""

from __future__ import annotations

from repro.workloads.base import WorkloadKind, WorkloadProfile
from repro.workloads.ibench import IBENCH
from repro.workloads.memcached import MEMCACHED
from repro.workloads.redis import REDIS
from repro.workloads.spark import SPARK_BENCHMARKS

__all__ = [
    "all_profiles",
    "get_profile",
    "profiles_of_kind",
    "be_profiles",
    "lc_profiles",
    "interference_profiles",
]


def all_profiles() -> dict[str, WorkloadProfile]:
    """Every registered workload keyed by profile name."""
    registry: dict[str, WorkloadProfile] = {}
    registry.update(SPARK_BENCHMARKS)
    registry[REDIS.name] = REDIS
    registry[MEMCACHED.name] = MEMCACHED
    for profile in IBENCH.values():
        registry[profile.name] = profile
    return registry


def get_profile(name: str) -> WorkloadProfile:
    registry = all_profiles()
    try:
        return registry[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(registry)}"
        ) from None


def profiles_of_kind(kind: WorkloadKind) -> dict[str, WorkloadProfile]:
    return {
        name: profile
        for name, profile in all_profiles().items()
        if profile.kind is kind
    }


def be_profiles() -> dict[str, WorkloadProfile]:
    """The Spark best-effort pool."""
    return profiles_of_kind(WorkloadKind.BEST_EFFORT)


def lc_profiles() -> dict[str, WorkloadProfile]:
    """The latency-critical pool (Redis, Memcached)."""
    return profiles_of_kind(WorkloadKind.LATENCY_CRITICAL)


def interference_profiles() -> dict[str, WorkloadProfile]:
    """The iBench interference pool."""
    return profiles_of_kind(WorkloadKind.INTERFERENCE)
