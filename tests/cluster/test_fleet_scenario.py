"""Fleet scenario runner: determinism, faults, checkpoint round-trip."""

import json

import pytest

from repro.cluster.fleet import FleetDecision, LeastLoadedPlacement
from repro.cluster.fleet_scenario import (
    FleetScenarioConfig,
    load_fleet_checkpoint,
    resume_fleet_scenario,
    run_fleet_scenario,
)
from repro.cluster.scenario import ScenarioConfig
from repro.faults.errors import CheckpointError
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.runtime import active_plan
from repro.hardware.pool import RemotePoolConfig
from repro.orchestrator.policies import (
    InterferenceThresholdPolicy,
    RandomPolicy,
)
from repro.workloads.base import MemoryMode
from tests.helpers import assert_traces_identical

SCENARIO = ScenarioConfig(duration_s=400.0, spawn_interval=(15.0, 30.0), seed=3)


def fleet_config(n_nodes=3, regime="pooled"):
    return FleetScenarioConfig(
        scenario=SCENARIO,
        n_nodes=n_nodes,
        pool=RemotePoolConfig(regime=regime),
    )


def scheduler():
    return LeastLoadedPlacement(InterferenceThresholdPolicy())


def assert_fleets_identical(a, b):
    assert a.now == b.now
    assert a.pool_throttled_ticks == b.pool_throttled_ticks
    assert a.n_nodes == b.n_nodes
    for ea, eb in zip(a.engines, b.engines):
        assert_traces_identical(ea.trace, eb.trace)


class TestRunner:
    def test_round_robin_baseline_uses_every_node(self):
        fleet = run_fleet_scenario(fleet_config())
        assert fleet.now >= SCENARIO.duration_s
        assert fleet.queued_remote == 0
        per_node = [len(engine.trace.records) for engine in fleet.engines]
        assert sum(per_node) > 0
        assert all(count > 0 for count in per_node)

    def test_scheduled_run_places_across_nodes(self):
        fleet = run_fleet_scenario(fleet_config(), scheduler=scheduler())
        records = fleet.records()
        assert records
        # decided_s is threaded: every scheduled record carries one.
        assert all(record.decided_s is not None for record in records)

    def test_single_fleet_clock(self):
        fleet = run_fleet_scenario(fleet_config(n_nodes=2))
        assert all(
            engine.now == pytest.approx(fleet.now) for engine in fleet.engines
        )

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            FleetScenarioConfig(scenario=SCENARIO, n_nodes=0)


class TestDeterminism:
    def test_seeded_runs_bit_identical(self):
        a = run_fleet_scenario(fleet_config(), scheduler=scheduler())
        b = run_fleet_scenario(fleet_config(), scheduler=scheduler())
        assert_fleets_identical(a, b)

    def test_seeded_round_robin_bit_identical(self):
        a = run_fleet_scenario(fleet_config(regime="shared-segment"))
        b = run_fleet_scenario(fleet_config(regime="shared-segment"))
        assert_fleets_identical(a, b)

    def test_nodes_have_distinct_noise_streams(self):
        fleet = run_fleet_scenario(fleet_config(n_nodes=2))
        a, b = (engine.trace for engine in fleet.engines)
        rows_differ = any(
            not (ra == rb).all()
            for ra, rb in zip(a._counter_rows, b._counter_rows)
        )
        assert rows_differ  # per-node seeds: no mirrored counter noise


class TestUnderFaults:
    def outage_plan(self):
        return FaultPlan(
            faults=(
                FaultSpec(kind="link_outage", start_s=30.0, duration_s=60.0),
                FaultSpec(
                    kind="telemetry_corrupt", start_s=120.0, duration_s=60.0,
                    params={"probability": 0.4},
                ),
            ),
            seed=21,
        )

    def test_fleet_survives_rack_outage(self):
        with active_plan(self.outage_plan()):
            fleet = run_fleet_scenario(fleet_config(), scheduler=scheduler())
        assert fleet.records()
        assert fleet.queued_remote == 0  # every parked arrival drained
        assert all(not engine.remote_blocked for engine in fleet.engines)

    def test_outage_parks_pinned_remote_arrivals(self):
        class PinnedRemote:
            """Always node 0, always remote — no outage fallback."""

            def __call__(self, profile, fleet):
                return FleetDecision(0, MemoryMode.REMOTE)

        with active_plan(self.outage_plan()):
            fleet = run_fleet_scenario(
                fleet_config(), scheduler=PinnedRemote()
            )
        records = fleet.records()
        assert records
        assert all(r.mode is MemoryMode.REMOTE for r in records)
        assert fleet.queued_remote == 0
        # Outage-window arrivals were parked and retried, so they start
        # strictly after their decision instant.
        delayed = [
            r for r in records
            if r.decided_s is not None and r.arrival_time > r.decided_s
        ]
        assert delayed

    def test_faulted_runs_stay_deterministic(self):
        with active_plan(self.outage_plan()):
            a = run_fleet_scenario(fleet_config(), scheduler=scheduler())
        with active_plan(self.outage_plan()):
            b = run_fleet_scenario(fleet_config(), scheduler=scheduler())
        assert_fleets_identical(a, b)


class TestCheckpoint:
    def test_resume_matches_uninterrupted_run(self, tmp_path):
        ckpt = tmp_path / "fleet.ckpt.json"
        full = run_fleet_scenario(
            fleet_config(),
            scheduler=LeastLoadedPlacement(RandomPolicy(seed=5)),
            checkpoint_path=ckpt,
            checkpoint_every_s=120.0,
        )
        assert ckpt.exists()
        resumed = resume_fleet_scenario(
            ckpt, scheduler=LeastLoadedPlacement(RandomPolicy(seed=5))
        )
        assert_fleets_identical(full, resumed)

    def test_resume_under_faults_matches(self, tmp_path):
        ckpt = tmp_path / "fleet.ckpt.json"
        plan = FaultPlan(
            faults=(
                FaultSpec(kind="link_outage", start_s=150.0, duration_s=60.0),
            ),
            seed=21,
        )
        with active_plan(plan):
            full = run_fleet_scenario(
                fleet_config(),
                scheduler=scheduler(),
                checkpoint_path=ckpt,
                checkpoint_every_s=100.0,
            )
        data = load_fleet_checkpoint(ckpt)
        assert data["injectors"] is not None
        assert len(data["injectors"]) == 3
        resumed = resume_fleet_scenario(ckpt, scheduler=scheduler())
        assert_fleets_identical(full, resumed)

    def test_checkpoint_preserves_pool_regime(self, tmp_path):
        ckpt = tmp_path / "fleet.ckpt.json"
        run_fleet_scenario(
            fleet_config(regime="shared-segment"),
            scheduler=scheduler(),
            checkpoint_path=ckpt,
            checkpoint_every_s=100.0,
        )
        data = load_fleet_checkpoint(ckpt)
        assert data["pool"]["regime"] == "shared-segment"
        resumed = resume_fleet_scenario(ckpt, scheduler=scheduler())
        assert resumed.pool is not None
        assert resumed.pool.config.regime.value == "shared-segment"

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no fleet checkpoint"):
            load_fleet_checkpoint(tmp_path / "nope.json")

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "v99.json"
        path.write_text(json.dumps({"version": 99}))
        with pytest.raises(CheckpointError, match="version"):
            load_fleet_checkpoint(path)

    def test_missing_fields_raise(self, tmp_path):
        path = tmp_path / "partial.json"
        path.write_text(json.dumps({"version": 1, "scenario": {}}))
        with pytest.raises(CheckpointError, match="missing fields"):
            load_fleet_checkpoint(path)


class TestStaleFleetPayloads:
    """Stale nested payloads fail with CheckpointError on the fleet path."""

    @pytest.fixture()
    def ckpt(self, tmp_path):
        path = tmp_path / "fleet.ckpt.json"
        run_fleet_scenario(
            fleet_config(),
            scheduler=scheduler(),
            checkpoint_path=path,
            checkpoint_every_s=120.0,
        )
        return path, json.loads(path.read_text())

    def mutate(self, ckpt, strip):
        path, data = ckpt
        strip(data)
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointError, match="missing\\s+field"):
            resume_fleet_scenario(path, scheduler=scheduler())

    def test_engine_field_missing(self, ckpt):
        self.mutate(ckpt, lambda d: d["engines"][0].pop("counter_rng"))

    def test_trace_field_missing(self, ckpt):
        self.mutate(ckpt, lambda d: d["engines"][1]["trace"].pop("rows"))

    def test_record_field_missing(self, ckpt):
        path, data = ckpt
        records = next(
            e["trace"]["records"] for e in data["engines"]
            if e["trace"]["records"]
        )
        records[0].pop("runtime_s")
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointError, match="runtime_s"):
            resume_fleet_scenario(path, scheduler=scheduler())


class TestDrain:
    def test_drain_runs_the_rack_to_idle(self):
        from repro.cluster.fleet import ClusterFleet
        from repro.cluster.scenario import default_pool

        fleet = ClusterFleet(n_nodes=2)
        profile = default_pool()[0]
        fleet.deploy(
            profile, FleetDecision(0, MemoryMode.LOCAL), duration_s=30.0
        )
        fleet.deploy(
            profile, FleetDecision(1, MemoryMode.REMOTE), duration_s=50.0
        )
        assert fleet.drain(max_seconds=500.0) is True
        assert all(not e.running for e in fleet.engines)
        assert len(fleet.records()) == 2

    def test_missed_deadline_reports_false_not_raises(self):
        from repro.cluster.fleet import ClusterFleet
        from repro.cluster.scenario import default_pool

        fleet = ClusterFleet(n_nodes=1)
        fleet.deploy(
            default_pool()[0],
            FleetDecision(0, MemoryMode.LOCAL),
            duration_s=1000.0,
        )
        assert fleet.drain(max_seconds=5.0) is False
        assert fleet.engines[0].running  # still in flight, not dropped
        assert fleet.now == pytest.approx(5.0)
