"""End-to-end orchestration: train Adrias, then beat the naive schedulers.

Reproduces the §VI-B workflow at a reduced scale (a couple of minutes):

1. offline phase — simulate randomized trace-collection scenarios,
   capture application signatures and train the stacked LSTM models;
2. online phase — replay held-out arrival sequences under Random,
   Round-Robin, All-Local and Adrias (two β settings);
3. report offload fractions, median-performance changes and link
   traffic per policy (Fig. 16 / §VI-B).

Usage:  python examples/orchestrate_cluster.py [--scenarios N]
"""

import argparse

import numpy as np

from repro.analysis import format_table
from repro.cluster import ScenarioConfig
from repro.orchestrator import (
    AdriasPolicy,
    AllLocalPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    TrainingBudget,
    compare_policies,
    train_predictor,
)
from repro.workloads import WorkloadKind


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenarios", type=int, default=8,
                        help="training scenarios to simulate")
    parser.add_argument("--duration", type=float, default=1500.0,
                        help="training scenario duration in seconds")
    args = parser.parse_args()

    print("== offline phase: trace collection + model training ==")
    budget = TrainingBudget(
        n_scenarios=args.scenarios,
        scenario_duration_s=args.duration,
        epochs_system=40,
        epochs_performance=50,
    )
    predictor = train_predictor(budget)
    print(f"trained on {args.scenarios} scenarios "
          f"({len(predictor.signatures)} signatures captured)\n")

    print("== online phase: policy replay on held-out scenarios ==")
    policies = {
        "random": RandomPolicy(seed=1),
        "round-robin": RoundRobinPolicy(),
        "all-local": AllLocalPolicy(),
        "adrias-0.9": AdriasPolicy(predictor, beta=0.9, default_qos_ms=6.0),
        "adrias-0.75": AdriasPolicy(predictor, beta=0.75, default_qos_ms=6.0),
    }
    configs = [
        ScenarioConfig(duration_s=1200.0, spawn_interval=(5, 40), seed=900 + i)
        for i in range(3)
    ]
    results = compare_policies(policies, configs)

    base = results["all-local"]
    base_medians = {
        name: base.median_performance(name)
        for name in base.benchmark_names(WorkloadKind.BEST_EFFORT)
    }
    rows = []
    for name, result in results.items():
        drops = [
            result.median_performance(b) / m - 1.0
            for b, m in base_medians.items()
            if m > 0 and not np.isnan(result.median_performance(b))
        ]
        rows.append(
            (
                name,
                f"{result.offload_fraction(WorkloadKind.BEST_EFFORT) * 100:.1f}%",
                f"{np.mean(drops) * 100:+.1f}%",
                f"{result.total_link_traffic_gb():.1f}",
            )
        )
    print(format_table(
        ["policy", "BE offload", "median change vs all-local", "link GB"],
        rows,
        title="Scheduling comparison (cf. Fig. 16)",
    ))
    print("\nExpected shape: naive schedulers degrade medians the most; "
          "Adrias offloads a tunable fraction at a far smaller cost.")


if __name__ == "__main__":
    main()
