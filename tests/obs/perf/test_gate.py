"""Regression gate: metric extraction, floor math, baseline files."""

import json
from pathlib import Path

import pytest

from repro.obs.perf.gate import (
    GateCheck,
    compare_reports,
    extract_metrics,
    load_report,
)

BASELINES = Path(__file__).resolve().parents[3] / "benchmarks" / "baselines"


def engine_report(idle=50_000.0, congested=8_000.0, d1=200.0, d64=300.0):
    return {
        "kind": "engine",
        "scales": {
            "idle": {"ticks_per_sec": idle},
            "congested": {"ticks_per_sec": congested},
        },
        "decisions": {
            "1": {"decisions_per_sec": d1},
            "64": {"decisions_per_sec": d64},
        },
    }


def predictor_report(speedup=2.5, fast_s=0.02, candidates=8, lstm=1.2):
    return {
        "kind": "predictor",
        "candidates": candidates,
        "tick": {"speedup": speedup, "fast_s": fast_s},
        "lstm": {"speedup": lstm},
    }


class TestExtraction:
    def test_engine_metrics(self):
        metrics = extract_metrics(engine_report())
        assert metrics["ticks_per_sec[idle]"] == 50_000.0
        assert metrics["decisions_per_sec[64]"] == 300.0

    def test_predictor_metrics(self):
        metrics = extract_metrics(predictor_report())
        assert metrics["tick_speedup"] == 2.5
        assert metrics["tick_candidates_per_sec"] == pytest.approx(8 / 0.02)
        assert metrics["lstm_inference_speedup"] == 1.2

    def test_unrecognized_report_raises(self):
        with pytest.raises(ValueError, match="unrecognized"):
            extract_metrics({"something": "else"})


class TestFloorMath:
    def test_floor_combines_tolerance_and_headroom(self):
        result = compare_reports(
            engine_report(), engine_report(), tolerance=0.2, headroom=4.0
        )
        check = next(c for c in result.checks if c.name == "ticks_per_sec[idle]")
        assert check.floor == pytest.approx(50_000.0 * 0.8 / 4.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            compare_reports(engine_report(), engine_report(), tolerance=1.0)
        with pytest.raises(ValueError):
            compare_reports(engine_report(), engine_report(), headroom=0.5)

    def test_check_ratio_and_ok(self):
        check = GateCheck(name="m", baseline=100.0, current=90.0, floor=80.0)
        assert check.ratio == pytest.approx(0.9)
        assert check.ok
        assert not GateCheck(name="m", baseline=100.0, current=79.0, floor=80.0).ok


class TestVerdicts:
    def test_identical_reports_pass(self):
        result = compare_reports(engine_report(), engine_report())
        assert result.ok and bool(result)
        assert result.format().endswith("PASS")

    def test_faster_than_baseline_passes(self):
        current = engine_report(idle=90_000.0, congested=20_000.0,
                                d1=400.0, d64=700.0)
        assert compare_reports(engine_report(), current).ok

    def test_regression_beyond_tolerance_fails(self):
        current = engine_report(congested=8_000.0 * 0.5)
        result = compare_reports(engine_report(), current, tolerance=0.2)
        assert not result.ok
        assert [c.name for c in result.failures] == ["ticks_per_sec[congested]"]
        assert "REGRESSED" in result.format()
        assert result.format().splitlines()[-1].startswith("FAIL")

    def test_regression_within_tolerance_passes(self):
        current = engine_report(congested=8_000.0 * 0.85)
        assert compare_reports(engine_report(), current, tolerance=0.2).ok

    def test_headroom_absorbs_slow_runner(self):
        halved = engine_report(idle=25_000.0, congested=4_000.0,
                               d1=100.0, d64=150.0)
        assert not compare_reports(engine_report(), halved, tolerance=0.2).ok
        assert compare_reports(
            engine_report(), halved, tolerance=0.2, headroom=3.0
        ).ok

    def test_only_shared_metrics_compared(self):
        smoke = engine_report()
        del smoke["decisions"]["64"]
        del smoke["scales"]["idle"]
        result = compare_reports(engine_report(), smoke)
        assert {c.name for c in result.checks} == {
            "ticks_per_sec[congested]", "decisions_per_sec[1]",
        }

    def test_no_shared_metrics_is_a_failure(self):
        result = compare_reports(engine_report(), predictor_report())
        assert not result.ok
        assert "no comparable metrics" in result.format()


class TestReportFiles:
    def test_load_report_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="bench_engine"):
            load_report(tmp_path / "nope.json")

    def test_load_report_round_trips(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text(json.dumps(engine_report()))
        assert load_report(path) == engine_report()

    @pytest.mark.parametrize(
        "name", ["BENCH_engine.json", "BENCH_predictor.json"]
    )
    def test_committed_baselines_pass_against_themselves(self, name):
        baseline = load_report(BASELINES / name)
        result = compare_reports(baseline, baseline)
        assert result.checks, f"{name} produced no gateable metrics"
        assert result.ok
