"""Fleet-aware live stream: records, SLO rollups, determinism, purity."""

from repro import obs
from repro.cluster.fleet import LeastLoadedPlacement
from repro.cluster.fleet_scenario import FleetScenarioConfig, run_fleet_scenario
from repro.cluster.scenario import ScenarioConfig
from repro.hardware.pool import RemotePoolConfig
from repro.obs.live.watch import read_stream
from repro.orchestrator.policies import InterferenceThresholdPolicy
from tests.cluster.test_fleet_scenario import assert_fleets_identical

SCENARIO = ScenarioConfig(duration_s=400.0, spawn_interval=(15.0, 30.0), seed=3)

#: Impossible LC targets so every classified completion violates —
#: burn rates are then deterministic and strictly positive.
QOS = {"redis": 0.1, "memcached": 0.1}


def fleet_config(n_nodes=3):
    return FleetScenarioConfig(
        scenario=SCENARIO, n_nodes=n_nodes, pool=RemotePoolConfig(),
    )


def scheduler():
    return LeastLoadedPlacement(InterferenceThresholdPolicy())


def stream_fleet(tmp_path, name="live", **live_kwargs):
    live_kwargs.setdefault("flush_every", 1)
    live_kwargs.setdefault("profile", False)
    live_kwargs.setdefault("qos_p99_ms", QOS)
    live = obs.enable_live(tmp_path / name, **live_kwargs)
    fleet = run_fleet_scenario(fleet_config(), scheduler=scheduler())
    path = live.exporter.path
    obs.disable()
    records, skipped = read_stream(path)
    assert skipped == 0
    return fleet, records


class TestFleetStreamRecords:
    def test_ticks_carry_node_labels(self, tmp_path):
        fleet, records = stream_fleet(tmp_path)
        ticks = [r for r in records if r["t"] == "tick"]
        assert ticks
        assert {t["node"] for t in ticks} == {"n0", "n1", "n2"}

    def test_one_finish_record_per_completion(self, tmp_path):
        fleet, records = stream_fleet(tmp_path)
        finishes = [r for r in records if r["t"] == "finish"]
        per_node = {
            engine.node_label: len(engine.trace.records)
            for engine in fleet.engines
        }
        assert len(finishes) == sum(per_node.values()) > 0
        for node, expected in per_node.items():
            got = [f for f in finishes if f["node"] == node]
            assert len(got) == expected
        # Every record names its app, kind, mode and the session clock.
        for record in finishes:
            assert {"app", "kind", "mode", "clock"} <= set(record)

    def test_lc_finishes_are_scored(self, tmp_path):
        _, records = stream_fleet(tmp_path)
        lc = [
            r for r in records
            if r["t"] == "finish" and r["kind"] == "lc"
            and r["app"] in QOS and r["p99_ms"] is not None
        ]
        assert lc
        assert all(r["violated"] is True for r in lc)

    def test_meta_lists_qos_apps(self, tmp_path):
        _, records = stream_fleet(tmp_path)
        assert records[0]["t"] == "meta"
        assert records[0]["qos_apps"] == sorted(QOS)

    def test_tick_records_carry_fleet_burn_rollup(self, tmp_path):
        _, records = stream_fleet(tmp_path)
        rollups = [
            r["fleet_slo"] for r in records
            if r["t"] == "tick" and "fleet_slo" in r
        ]
        assert rollups  # appears once per-node SLO state exists
        last = rollups[-1]
        assert set(last) == {"worst", "weighted", "violations", "total"}
        assert last["violations"] == last["total"] > 0
        windows = set(last["worst"])
        assert windows == set(last["weighted"])
        for window, entry in last["worst"].items():
            assert entry["burn"] >= last["weighted"][window] >= 0.0

    def test_end_record_carries_fleet_rollup(self, tmp_path):
        _, records = stream_fleet(tmp_path)
        end = records[-1]
        assert end["t"] == "end"
        assert end["fleet_slo"]["total"] > 0


class TestFleetSloMetrics:
    def test_node_and_fleet_burn_gauges_exported(self, tmp_path):
        live = obs.enable_live(
            tmp_path / "live", flush_every=1, profile=False, qos_p99_ms=QOS
        )
        run_fleet_scenario(fleet_config(), scheduler=scheduler())
        registry = obs.metrics()
        node_burn = registry.get("slo_node_burn_rate")
        fleet_burn = registry.get("slo_fleet_burn_rate")
        assert node_burn is not None and fleet_burn is not None
        node_labels = {
            s["labels"]["node"] for s in node_burn.snapshot()["series"]
        }
        assert node_labels <= {"n0", "n1", "n2"} and node_labels
        aggs = {
            s["labels"]["agg"] for s in fleet_burn.snapshot()["series"]
        }
        assert aggs == {"worst", "weighted"}
        violations = registry.get("slo_node_violations_total").snapshot()
        assert sum(s["value"] for s in violations["series"]) > 0
        assert live.exporter.path.exists()


class TestFleetStreamDeterminism:
    @staticmethod
    def canonical(records):
        volatile = {"wall", "created_unix"}
        return [
            {k: v for k, v in record.items() if k not in volatile}
            for record in records
        ]

    def test_two_seeded_runs_stream_identically(self, tmp_path):
        _, first = stream_fleet(tmp_path, name="a")
        _, second = stream_fleet(tmp_path, name="b")
        assert self.canonical(first) == self.canonical(second)

    def test_streamed_run_matches_unobserved_run(self, tmp_path):
        observed, _ = stream_fleet(tmp_path)
        plain = run_fleet_scenario(fleet_config(), scheduler=scheduler())
        assert_fleets_identical(observed, plain)

    def test_disabled_fleet_run_after_obs_is_identical(self, tmp_path):
        baseline = run_fleet_scenario(fleet_config(), scheduler=scheduler())
        stream_fleet(tmp_path)  # enables and disables a full session
        after = run_fleet_scenario(fleet_config(), scheduler=scheduler())
        assert_fleets_identical(baseline, after)
