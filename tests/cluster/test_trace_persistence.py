"""Trace save/load round trips."""

import numpy as np
import pytest

from repro.cluster import ScenarioConfig, Trace, run_scenario


@pytest.fixture(scope="module")
def trace():
    return run_scenario(
        ScenarioConfig(duration_s=300.0, spawn_interval=(10, 25), seed=9)
    )


class TestTracePersistence:
    def test_roundtrip_metrics_and_records(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        trace.save(path)
        restored = Trace.load(path)

        assert restored.dt == trace.dt
        assert restored.times == trace.times
        assert np.allclose(restored.metrics, trace.metrics)
        assert restored.concurrency == trace.concurrency
        assert len(restored.records) == len(trace.records)
        for a, b in zip(trace.records, restored.records):
            for field in a.__dataclass_fields__:
                va, vb = getattr(a, field), getattr(b, field)
                if isinstance(va, float) and np.isnan(va):
                    assert np.isnan(vb)  # BE records carry NaN p99s
                else:
                    assert va == vb, field

    def test_restored_trace_supports_windows(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        trace.save(path)
        restored = Trace.load(path)
        assert np.allclose(
            restored.window(120.0, 60.0), trace.window(120.0, 60.0)
        )
        assert np.allclose(
            restored.horizon_mean(60.0, 60.0), trace.horizon_mean(60.0, 60.0)
        )

    def test_restored_trace_feeds_datasets(self, trace, tmp_path):
        from repro.models import build_system_state_dataset

        path = tmp_path / "trace.npz"
        trace.save(path)
        restored = Trace.load(path)
        original_ds = build_system_state_dataset([trace], stride_s=30.0)
        restored_ds = build_system_state_dataset([restored], stride_s=30.0)
        assert np.allclose(original_ds.windows, restored_ds.windows)
        assert np.allclose(original_ds.targets, restored_ds.targets)
