"""SLO burn-rate engine: classification, windows, multi-window alerts."""

import pytest

from repro import obs
from repro.obs.live.slo import SloEngine, peak_burn_rate


class TestPeakBurnRate:
    def test_all_good_is_zero(self):
        events = [(float(t), False) for t in range(10)]
        assert peak_burn_rate(events, window_s=5.0, objective=0.99) == 0.0

    def test_all_bad_is_inverse_budget(self):
        events = [(float(t), True) for t in range(10)]
        # bad fraction 1.0 over an error budget of 0.01 -> burn 100.
        assert peak_burn_rate(events, 5.0, objective=0.99) == pytest.approx(100.0)

    def test_peak_is_worst_window_not_average(self):
        # A burst of violations inside an otherwise clean stream.
        events = [(float(t), 10 <= t < 13) for t in range(40)]
        peak = peak_burn_rate(events, window_s=3.0, objective=0.9)
        assert peak == pytest.approx(1.0 / 0.1)

    def test_empty_stream_is_zero(self):
        assert peak_burn_rate([], 5.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            peak_burn_rate([], 0.0)
        with pytest.raises(ValueError):
            peak_burn_rate([], 5.0, objective=1.0)


class TestSloEngine:
    def engine(self, **kwargs):
        kwargs.setdefault("targets", {"redis": 2.0})
        kwargs.setdefault("objective", 0.9)
        kwargs.setdefault("windows", (10.0, 40.0))
        kwargs.setdefault("alert_burn", 2.0)
        kwargs.setdefault("min_events", 3)
        return SloEngine(**kwargs)

    def test_record_without_target_returns_none(self):
        slo = self.engine()
        assert slo.record("unknown-app", 99.0, clock=1.0) is None

    def test_record_classifies_against_target(self):
        slo = self.engine()
        assert slo.record("redis", 1.5, clock=1.0) is False
        assert slo.record("redis", 2.5, clock=2.0) is True

    def test_violation_counter_increments_when_enabled(self):
        obs.enable()
        slo = self.engine()
        slo.record("redis", 5.0, clock=1.0)
        slo.record("redis", 5.0, clock=2.0)
        counter = obs.metrics().get("slo_violations_total")
        assert counter.labels(app="redis").snapshot() == 2.0

    def test_burn_rates_per_window(self):
        slo = self.engine()
        # 2 bad of 4 inside 10 s; all 4 inside 40 s.
        for clock, bad in ((1.0, True), (3.0, True), (5.0, False), (7.0, False)):
            slo.record("redis", 5.0 if bad else 1.0, clock=clock)
        rates = slo.burn_rates("redis", clock=8.0)
        assert rates[10.0] == pytest.approx(0.5 / 0.1)
        assert rates[40.0] == pytest.approx(0.5 / 0.1)

    def test_alert_requires_every_window_burning(self):
        slo = self.engine(windows=(5.0, 100.0), min_events=1)
        # One old violation burns the long window but not the short one.
        slo.record("redis", 5.0, clock=1.0)
        assert slo.advance(clock=50.0) == []

    def test_alert_fires_and_is_edge_triggered(self):
        obs.enable()
        slo = self.engine()
        for clock in (1.0, 2.0, 3.0):
            slo.record("redis", 5.0, clock=clock)
        fired = slo.advance(clock=4.0)
        assert [a["app"] for a in fired] == ["redis"]
        # Still burning: no duplicate alert.
        assert slo.advance(clock=5.0) == []
        # Burn recovers (events age out of every window), then violates
        # again -> re-alert.
        assert slo.advance(clock=200.0) == []
        for clock in (201.0, 202.0, 203.0):
            slo.record("redis", 5.0, clock=clock)
        assert [a["app"] for a in slo.advance(clock=204.0)] == ["redis"]
        assert obs.metrics().get("slo_alerts_total").labels(
            app="redis"
        ).snapshot() == 2.0

    def test_min_events_suppresses_sparse_alerts(self):
        slo = self.engine(min_events=5)
        for clock in (1.0, 2.0, 3.0):
            slo.record("redis", 5.0, clock=clock)
        assert slo.advance(clock=4.0) == []

    def test_snapshot_shape(self):
        slo = self.engine()
        slo.record("redis", 5.0, clock=1.0)
        snap = slo.snapshot(clock=2.0)
        assert snap["redis"]["violations"] == 1
        assert snap["redis"]["total"] == 1
        assert snap["redis"]["alerting"] is False
        assert set(snap["redis"]["burn"]) == {"10", "40"}

    def test_target_validation(self):
        with pytest.raises(ValueError, match="positive"):
            SloEngine(targets={"redis": 0.0})
        with pytest.raises(ValueError):
            SloEngine(objective=1.0)
        with pytest.raises(ValueError):
            SloEngine(windows=())
        with pytest.raises(ValueError):
            SloEngine(alert_burn=0.0)
