import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import explained_variance, mae, mape, pearson, r2_score, rmse


SAMPLES = st.lists(
    st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    min_size=3, max_size=50,
).map(np.array)


class TestR2:
    def test_perfect_fit_is_one(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == 1.0

    def test_mean_predictor_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_worse_than_mean_is_negative(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.array([3.0, 1.0, -2.0])) < 0

    def test_constant_target_convention(self):
        y = np.full(4, 5.0)
        assert r2_score(y, y) == 1.0
        assert r2_score(y, y + 1) == 0.0

    @given(y=SAMPLES)
    @settings(max_examples=30, deadline=None)
    def test_never_exceeds_one(self, y):
        rng = np.random.default_rng(0)
        pred = y + rng.normal(size=y.shape)
        assert r2_score(y, pred) <= 1.0


class TestErrors:
    def test_mae_known(self):
        assert mae([0.0, 0.0], [1.0, -3.0]) == pytest.approx(2.0)

    def test_rmse_known(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_rmse_at_least_mae(self):
        rng = np.random.default_rng(1)
        y = rng.normal(size=20)
        p = rng.normal(size=20)
        assert rmse(y, p) >= mae(y, p) - 1e-12

    def test_mape_known(self):
        assert mape([2.0, 4.0], [1.0, 2.0]) == pytest.approx(0.5)


class TestPearson:
    def test_perfect_linear(self):
        x = np.arange(10.0)
        assert pearson(x, 3 * x + 1) == pytest.approx(1.0)
        assert pearson(x, -2 * x) == pytest.approx(-1.0)

    def test_constant_series_returns_zero(self):
        assert pearson(np.ones(5), np.arange(5.0)) == 0.0

    @given(x=SAMPLES)
    @settings(max_examples=30, deadline=None)
    def test_bounded_and_symmetric(self, x):
        rng = np.random.default_rng(2)
        y = rng.normal(size=x.shape)
        r = pearson(x, y)
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9
        assert r == pytest.approx(pearson(y, x))

    def test_shift_scale_invariance(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=30)
        y = rng.normal(size=30)
        assert pearson(x, y) == pytest.approx(pearson(2 * x + 5, y))


class TestExplainedVariance:
    def test_perfect(self):
        y = np.arange(5.0)
        assert explained_variance(y, y) == pytest.approx(1.0)

    def test_biased_but_correlated(self):
        # Constant offset does not reduce explained variance (unlike R2).
        y = np.arange(5.0)
        assert explained_variance(y, y + 10) == pytest.approx(1.0)
        assert r2_score(y, y + 10) < 0


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            r2_score(np.zeros(3), np.zeros(4))

    def test_empty(self):
        with pytest.raises(ValueError):
            mae(np.zeros(0), np.zeros(0))
