"""Dropout regularization."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout: scale by ``1/(1-p)`` at train time, no-op at eval.

    The mask generator is owned by the layer so two models built with
    different seeds draw independent masks while each remains
    reproducible.
    """

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask
