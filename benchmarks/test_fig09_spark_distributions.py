"""Bench Fig. 9 — Spark performance distributions over scenarios.

Paper shape: remote distributions shifted towards higher runtimes;
certain benchmarks (gmm) show overlapping local/remote distributions
while others (nweight) are clearly separated.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig09_10_distributions
from repro.workloads import WorkloadKind


def test_fig09_spark_distributions(benchmark, report, scale, strict):
    result = run_once(
        benchmark, fig09_10_distributions.run,
        WorkloadKind.BEST_EFFORT, scale=scale,
    )
    report(result.format())

    dists = result.distributions
    assert len(dists) >= 12  # most of the 17 must have samples in both modes

    # Remote medians shift up for the majority of benchmarks.  At quick
    # scale (few scenarios) the mode signal is confounded with which
    # congestion phase each sample landed in, so only the majority
    # direction is asserted; the per-benchmark claims need real scale.
    shifts = [d.median_shift for d in dists.values()]
    assert np.mean([s > 0 for s in shifts]) >= (0.75 if strict else 0.6)

    if strict:
        # gmm overlaps between modes; nweight is clearly separated.
        assert dists["gmm"].overlapping
        assert dists["nweight"].median_shift > 0.3
