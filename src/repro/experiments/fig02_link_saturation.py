"""Experiment Fig. 2 — limits of HW memory disaggregation.

Spawns 1-32 memory-bandwidth trashers against remote memory and reports
link throughput, channel latency and local-hierarchy counters.  Expected
shape (remarks R1-R3): delivered throughput caps at ~2.5 Gbps; latency
holds ~350 cycles through 4 trashers and plateaus near 900 cycles from 8
onwards; local memory counters rise with remote traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.characterization import SaturationPoint, link_saturation_sweep
from repro.analysis.reporting import format_table

__all__ = ["Fig2Result", "run"]

COUNTS: tuple[int, ...] = (1, 2, 4, 8, 16, 32)


@dataclass(frozen=True)
class Fig2Result:
    points: list[SaturationPoint]

    @property
    def throughput_cap_gbps(self) -> float:
        return max(p.delivered_gbps for p in self.points)

    @property
    def base_latency_cycles(self) -> float:
        return self.points[0].latency_cycles

    @property
    def saturated_latency_cycles(self) -> float:
        return self.points[-1].latency_cycles

    def format(self) -> str:
        rows = [
            (
                p.n_microbenchmarks,
                f"{p.offered_gbps:.2f}",
                f"{p.delivered_gbps:.2f}",
                f"{p.latency_cycles:.0f}",
                f"{p.backpressure:.2f}",
                f"{p.counters.mem_loads:.3e}",
                f"{p.counters.rmt_tx_flits:.3e}",
            )
            for p in self.points
        ]
        return format_table(
            ["#memBw", "offered Gbps", "delivered Gbps", "latency cyc",
             "backpressure", "MEM_ld/s", "RMT_tx flits/s"],
            rows,
            title="Fig. 2 — ThymesisFlow link saturation sweep",
        )


def run(counts: tuple[int, ...] = COUNTS) -> Fig2Result:
    return Fig2Result(points=link_saturation_sweep(counts))
