"""Workload abstractions: profiles, demand generation and slowdown model.

A workload is described by a static :class:`WorkloadProfile` capturing

* the resources it *demands* (cores, cache working sets, memory
  bandwidth and footprint), which drive contention for everyone else;
* how *sensitive* it is to pressure on each shared resource
  (:class:`SensitivityVector`), which drives its own slowdown;
* its isolated remote-memory behaviour: the ``remote_slowdown`` ratio of
  Fig. 3 and the ``stacking`` coefficient of remark R7 (applications
  such as nweight/sort/kmeans whose remote performance degrades even
  under cpu/L2-only interference).

The slowdown model is multiplicative over additive per-resource
contributions — the standard analytic interference formulation — and is
calibrated against the paper's characterization in
``tests/workloads/test_calibration.py``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.hardware.testbed import ResourceDemand, SystemPressure

__all__ = [
    "WorkloadKind",
    "MemoryMode",
    "SensitivityVector",
    "WorkloadProfile",
]


class WorkloadKind(enum.Enum):
    """Cloud workload classes of §IV-A."""

    BEST_EFFORT = "be"
    LATENCY_CRITICAL = "lc"
    INTERFERENCE = "ibench"


class MemoryMode(enum.Enum):
    """Memory allocation modes the Orchestrator decides between."""

    LOCAL = "local"
    REMOTE = "remote"

    @property
    def other(self) -> "MemoryMode":
        return MemoryMode.REMOTE if self is MemoryMode.LOCAL else MemoryMode.LOCAL


@dataclass(frozen=True)
class SensitivityVector:
    """Susceptibility to contention on each shared resource.

    Each entry scales the corresponding pressure term into a fractional
    slowdown; 0 means immune, 1 means the pressure term translates 1:1
    into relative slowdown.
    """

    cpu: float = 0.0
    l2: float = 0.0
    llc: float = 0.0
    membw: float = 0.0
    #: Sensitivity to ThymesisFlow back-pressure/latency when in remote
    #: mode.  In-memory databases (pointer chasing, low spatial
    #: locality) have low llc but high membw/link sensitivity (R6).
    link: float = 1.0

    def __post_init__(self) -> None:
        for name in ("cpu", "l2", "llc", "membw", "link"):
            if getattr(self, name) < 0:
                raise ValueError(f"sensitivity {name} cannot be negative")


@dataclass(frozen=True)
class WorkloadProfile:
    """Static description of a deployable workload."""

    name: str
    kind: WorkloadKind
    #: Isolated local-memory runtime in seconds (BE) or serving duration
    #: (LC / iBench).
    nominal_runtime_s: float
    #: Isolated remote/local runtime ratio (Fig. 3): nweight ~2x,
    #: gmm/pca < 1.1x.
    remote_slowdown: float = 1.0
    #: Remark R7 coefficient: amplification of cpu/L2 interference when
    #: running from remote memory.  Zero for most applications.
    stacking: float = 0.0
    #: Demand vector components.
    cpu_threads: float = 1.0
    l2_mb: float = 0.5
    llc_mb: float = 1.0
    llc_access_gbps: float = 1.0
    #: Memory bandwidth demand when local (Gbps at full speed).
    mem_bw_gbps: float = 1.0
    #: Steady-state offered load on the ThymesisFlow link when remote
    #: (Gbps); much smaller than local bandwidth because only
    #: LLC-missing traffic traverses the link.
    remote_bw_gbps: float = 0.3
    #: Resident memory footprint in GB.
    footprint_gb: float = 4.0
    sensitivity: SensitivityVector = field(default_factory=SensitivityVector)
    #: Weight of the link latency ratio in the remote penalty.
    latency_weight: float = 0.15
    #: Weight of the link back-pressure stretch in the remote penalty.
    backpressure_weight: float = 0.6

    def __post_init__(self) -> None:
        if self.nominal_runtime_s <= 0:
            raise ValueError("nominal_runtime_s must be positive")
        if self.remote_slowdown < 1.0:
            raise ValueError("remote_slowdown must be >= 1 (remote is never faster in isolation)")
        if self.stacking < 0:
            raise ValueError("stacking cannot be negative")
        for name in (
            "cpu_threads",
            "l2_mb",
            "llc_mb",
            "llc_access_gbps",
            "mem_bw_gbps",
            "remote_bw_gbps",
            "footprint_gb",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")

    # -- demand --------------------------------------------------------
    def demand(self, mode: MemoryMode) -> ResourceDemand:
        """Resource demand exerted on the testbed in the given mode.

        In remote mode the memory traffic moves to the link (the local
        controllers still reflect it via the counter model, per R3), and
        the footprint occupies lender memory instead of local DRAM.
        """
        if mode is MemoryMode.LOCAL:
            return ResourceDemand(
                cpu_threads=self.cpu_threads,
                l2_mb=self.l2_mb,
                llc_mb=self.llc_mb,
                llc_access_gbps=self.llc_access_gbps,
                local_bw_gbps=self.mem_bw_gbps,
                local_gb=self.footprint_gb,
            )
        return ResourceDemand(
            cpu_threads=self.cpu_threads,
            l2_mb=self.l2_mb,
            llc_mb=self.llc_mb,
            llc_access_gbps=self.llc_access_gbps,
            remote_bw_gbps=self.remote_bw_gbps,
            remote_gb=self.footprint_gb,
        )

    # -- slowdown ------------------------------------------------------
    def slowdown(self, pressure: SystemPressure, mode: MemoryMode) -> float:
        """Instantaneous slowdown factor (>= 1) under the given pressure.

        Local mode::

            1 + s_cpu·over + s_l2·infl + s_llc·infl + s_mem·(queue-1)

        Remote mode::

            remote_slowdown · (1 + (1+stacking)·(s_cpu·over + s_l2·infl)
                                 + s_llc·infl + link_penalty)

        where ``link_penalty`` combines back-pressure stretch and the
        latency ratio of the channel.  The stacking term reproduces R7;
        the back-pressure term reproduces R5 (the performance chasm once
        the channel saturates).
        """
        sens = self.sensitivity
        c_cpu = sens.cpu * pressure.cpu_oversubscription
        c_l2 = sens.l2 * pressure.l2.miss_inflation
        c_llc = sens.llc * pressure.llc.miss_inflation

        if mode is MemoryMode.LOCAL:
            c_mem = sens.membw * (pressure.memory.queuing_factor - 1.0)
            return 1.0 + c_cpu + c_l2 + c_llc + c_mem

        amplify = 1.0 + self.stacking
        link = pressure.link
        link_penalty = sens.link * (
            self.backpressure_weight * (link.backpressure - 1.0)
            + self.latency_weight * link.latency_ratio
        )
        # LLC misses on remote mode hit the slow link rather than DRAM,
        # so cache contention also costs more there (part of R5/R6).
        remote_llc = c_llc * (1.0 + 0.5 * min(1.0, link.utilization))
        return self.remote_slowdown * (
            1.0 + amplify * (c_cpu + c_l2) + remote_llc + link_penalty
        )

    # -- convenience -----------------------------------------------------
    def isolated_runtime(self, mode: MemoryMode) -> float:
        """Runtime with no co-located tenants (Fig. 3 operating point)."""
        if mode is MemoryMode.LOCAL:
            return self.nominal_runtime_s
        return self.nominal_runtime_s * self.remote_slowdown

    def with_overrides(self, **kwargs) -> "WorkloadProfile":
        """Copy with selected fields replaced (for what-if studies)."""
        return replace(self, **kwargs)
