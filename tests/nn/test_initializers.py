import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import initializers


RNG = st.integers(min_value=0, max_value=2**32 - 1)
DIM = st.integers(min_value=1, max_value=20)


class TestXavier:
    @given(seed=RNG, rows=DIM, cols=DIM)
    @settings(max_examples=25, deadline=None)
    def test_uniform_within_limit(self, seed, rows, cols):
        rng = np.random.default_rng(seed)
        w = initializers.xavier_uniform((rows, cols), rng)
        limit = np.sqrt(6.0 / (rows + cols))
        assert w.shape == (rows, cols)
        assert np.all(np.abs(w) <= limit)

    def test_normal_std_scales_with_fan(self):
        rng = np.random.default_rng(0)
        w = initializers.xavier_normal((500, 500), rng)
        assert abs(w.std() - np.sqrt(2.0 / 1000)) < 0.01


class TestHe:
    def test_uniform_within_limit(self):
        rng = np.random.default_rng(1)
        w = initializers.he_uniform((64, 32), rng)
        assert np.all(np.abs(w) <= np.sqrt(6.0 / 32))

    def test_normal_std(self):
        rng = np.random.default_rng(2)
        w = initializers.he_normal((2000, 100), rng)
        assert abs(w.std() - np.sqrt(2.0 / 100)) < 0.01


class TestOrthogonal:
    @given(seed=RNG, rows=DIM, cols=DIM)
    @settings(max_examples=25, deadline=None)
    def test_rows_or_columns_orthonormal(self, seed, rows, cols):
        rng = np.random.default_rng(seed)
        w = initializers.orthogonal((rows, cols), rng)
        assert w.shape == (rows, cols)
        if rows <= cols:
            gram = w @ w.T
        else:
            gram = w.T @ w
        assert np.allclose(gram, np.eye(min(rows, cols)), atol=1e-10)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            initializers.orthogonal((3,), np.random.default_rng(0))


class TestMisc:
    def test_zeros(self):
        assert np.all(initializers.zeros((3, 2)) == 0)

    def test_uniform_bounds(self):
        rng = np.random.default_rng(3)
        w = initializers.uniform((100,), rng, low=-0.5, high=0.25)
        assert np.all(w >= -0.5) and np.all(w <= 0.25)

    def test_empty_shape_raises(self):
        with pytest.raises(ValueError):
            initializers.xavier_uniform((), np.random.default_rng(0))

    def test_1d_fans(self):
        rng = np.random.default_rng(4)
        w = initializers.xavier_uniform((10,), rng)
        assert np.all(np.abs(w) <= np.sqrt(6.0 / 20))
