"""Bench Fig. 14 — LC performance-model accuracy.

Paper numbers: R² 0.874 for the LC model; per-benchmark MAEs a modest
fraction of the median p99.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig14_lc_accuracy


def test_fig14_lc_accuracy(benchmark, report, scale, strict):
    result = run_once(benchmark, fig14_lc_accuracy.run, scale=scale)
    report(result.format())

    assert result.metrics["mae"] > 0
    assert np.all(np.isfinite(result.predicted))
    assert np.all(result.predicted > 0)
    if strict:
        # Paper: R2 0.874.  The simulated LC corpus is harder: servers
        # run 270-320 s while Ŝ only covers a 120 s horizon, and the
        # closed-loop tail amplification makes targets heavy-tailed.
        # The oracle {exec,exec} model reaches ~0.77 here (see
        # EXPERIMENTS.md), bounding what any horizon-limited input can
        # achieve; the practical configuration must clear a 0.40 floor
        # and track the target ordering.
        assert result.metrics["r2"] >= 0.40

        from repro.nn.metrics import pearson

        assert pearson(result.actual, result.predicted) > 0.65
