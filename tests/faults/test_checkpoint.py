"""Checkpoint/resume: the resumed trace is bit-identical to uninterrupted."""

import json

import pytest

from repro.cluster.scenario import ScenarioConfig, run_scenario
from repro.faults.checkpoint import (
    load_checkpoint,
    resume_scenario,
    save_checkpoint,
)
from repro.faults.errors import CheckpointError
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.runtime import active_plan
from repro.orchestrator.policies import RandomPolicy
from tests.helpers import assert_traces_identical

CONFIG = ScenarioConfig(duration_s=400.0, spawn_interval=(15.0, 30.0), seed=3)


def faulty_plan():
    return FaultPlan(
        faults=(
            FaultSpec(
                kind="telemetry_corrupt", start_s=40.0, duration_s=60.0,
                params={"probability": 0.4},
            ),
            FaultSpec(kind="link_outage", start_s=150.0, duration_s=60.0),
        ),
        seed=21,
    )


class TestRoundTrip:
    def test_resume_matches_uninterrupted_run(self, tmp_path):
        ckpt = tmp_path / "ckpt.json"
        full = run_scenario(
            CONFIG,
            scheduler=RandomPolicy(seed=5),
            checkpoint_path=ckpt,
            checkpoint_every_s=120.0,
        )
        assert ckpt.exists()
        resumed = resume_scenario(ckpt, scheduler=RandomPolicy(seed=5))
        assert_traces_identical(full, resumed)

    def test_resume_under_faults_matches(self, tmp_path):
        ckpt = tmp_path / "ckpt.json"
        with active_plan(faulty_plan()):
            full = run_scenario(
                CONFIG,
                scheduler=RandomPolicy(seed=5),
                checkpoint_path=ckpt,
                checkpoint_every_s=100.0,
            )
        # The checkpoint embeds the fault plan; no armed plan is needed
        # (or consulted) on the resume path.
        resumed = resume_scenario(ckpt, scheduler=RandomPolicy(seed=5))
        assert_traces_identical(full, resumed)

    def test_checkpoint_restores_injector_and_policy_state(self, tmp_path):
        ckpt = tmp_path / "ckpt.json"
        with active_plan(faulty_plan()):
            run_scenario(
                CONFIG,
                scheduler=RandomPolicy(seed=5),
                checkpoint_path=ckpt,
                checkpoint_every_s=100.0,
            )
        data = load_checkpoint(ckpt)
        assert data["injector"] is not None
        assert data["injector"]["plan"]["seed"] == 21
        assert data["policy"] is not None
        assert "rng_state" in data["policy"]
        assert data["arrivals_done"] > 0


class TestValidation:
    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(tmp_path / "nope.json")

    def test_corrupt_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{truncated")
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(path)

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "v99.json"
        path.write_text(json.dumps({"version": 99}))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_missing_fields_raise(self, tmp_path):
        path = tmp_path / "partial.json"
        path.write_text(json.dumps({"version": 1, "scenario": {}}))
        with pytest.raises(CheckpointError, match="missing fields"):
            load_checkpoint(path)

    def test_unknown_workload_raises(self, tmp_path):
        ckpt = tmp_path / "ckpt.json"
        run_scenario(
            CONFIG,
            scheduler=RandomPolicy(seed=5),
            checkpoint_path=ckpt,
            checkpoint_every_s=120.0,
        )
        with pytest.raises(CheckpointError, match="unknown workload"):
            resume_scenario(ckpt, scheduler=RandomPolicy(seed=5), pool=[])


class TestStalePayloads:
    """Old/hand-edited payloads raise CheckpointError, not KeyError."""

    @pytest.fixture()
    def ckpt(self, tmp_path):
        from repro.cluster.engine import ClusterEngine
        from repro.cluster.scenario import default_pool
        from repro.hardware import Testbed, TestbedConfig
        from repro.workloads.base import MemoryMode, WorkloadKind

        pool = default_pool()
        engine = ClusterEngine(testbed=Testbed(TestbedConfig(seed=CONFIG.seed)))
        ibench = next(
            p for p in pool if p.kind is WorkloadKind.INTERFERENCE
        )
        engine.deploy(ibench, MemoryMode.LOCAL, duration_s=5.0)
        engine.run_for(10.0)  # -> one finished record
        engine.deploy(ibench, MemoryMode.LOCAL, duration_s=1000.0)
        path = save_checkpoint(
            tmp_path / "stale.json",
            config=CONFIG,
            engine=engine,
            arrivals_done=0,
        )
        data = json.loads(path.read_text())
        assert data["engine"]["deployments"], "fixture needs a live deployment"
        assert data["engine"]["trace"]["records"], "fixture needs a record"
        return path, data

    def mutate(self, ckpt, strip):
        path, data = ckpt
        strip(data)
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointError, match="missing\\s+field"):
            resume_scenario(path, scheduler=RandomPolicy(seed=5))

    def test_scenario_field_missing(self, ckpt):
        self.mutate(ckpt, lambda d: d["scenario"].pop("seed"))

    def test_engine_field_missing(self, ckpt):
        self.mutate(ckpt, lambda d: d["engine"].pop("counter_rng"))

    def test_deployment_field_missing(self, ckpt):
        self.mutate(
            ckpt, lambda d: d["engine"]["deployments"][0].pop("app_id")
        )

    def test_record_field_missing(self, ckpt):
        self.mutate(
            ckpt,
            lambda d: d["engine"]["trace"]["records"][0].pop("finish_time"),
        )

    def test_trace_field_missing(self, ckpt):
        self.mutate(ckpt, lambda d: d["engine"]["trace"].pop("times"))


class TestManualSave:
    def test_save_mid_run_and_resume(self, tmp_path):
        """save_checkpoint is usable outside the scenario loop too."""
        from repro.cluster.engine import ClusterEngine
        from repro.hardware import Testbed, TestbedConfig

        engine = ClusterEngine(testbed=Testbed(TestbedConfig(seed=CONFIG.seed)))
        engine.run_for(10.0)
        path = save_checkpoint(
            tmp_path / "manual.json",
            config=CONFIG,
            engine=engine,
            arrivals_done=0,
        )
        data = load_checkpoint(path)
        assert data["engine"]["now"] == 10.0
        assert data["injector"] is None
        assert data["policy"] is None
