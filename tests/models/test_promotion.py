"""Gated model promotion tests (Fig. 15 retraining loop hardening)."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro import obs
from repro.faults import FaultPlan, TrainingChaos
from repro.models import (
    GateConfig,
    PerformancePredictor,
    Predictor,
    PromotionDecision,
    SystemStatePredictor,
    build_performance_dataset,
    build_system_state_dataset,
    gated_retrain,
    retrain_on_drift,
)
from repro.models.promotion import _holdout_split
from repro.nn import RecoveryPolicy
from repro.workloads import WorkloadKind

BE = WorkloadKind.BEST_EFFORT
LC = WorkloadKind.LATENCY_CRITICAL


@pytest.fixture(scope="module")
def trained_predictor(tiny_traces, signatures, feature_config):
    """Predictor with a strong BE incumbent and an empty LC slot."""
    ss_data = build_system_state_dataset(
        tiny_traces, feature_config, stride_s=20.0
    )
    system_state = SystemStatePredictor(feature_config=feature_config, seed=0)
    system_state.fit(ss_data.windows, ss_data.targets, epochs=15)
    be_data = build_performance_dataset(
        tiny_traces, signatures, BE, feature_config
    )
    be = PerformancePredictor(feature_config=feature_config, seed=1)
    be.fit(
        be_data.state, be_data.signature, be_data.mode,
        system_state.predict(be_data.state), be_data.targets, epochs=25,
    )
    return Predictor(
        system_state=system_state, be_performance=be,
        signatures=signatures, feature_config=feature_config,
    )


class TestGateConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            GateConfig(tolerance=-0.1)
        with pytest.raises(ValueError):
            GateConfig(holdout_fraction=1.0)
        with pytest.raises(ValueError):
            GateConfig(min_holdout=1)
        with pytest.raises(ValueError):
            GateConfig(timeout_s=0.0)

    def test_holdout_split_is_seeded_and_disjoint(self):
        train1, hold1 = _holdout_split(40, GateConfig(seed=3))
        train2, hold2 = _holdout_split(40, GateConfig(seed=3))
        assert np.array_equal(train1, train2)
        assert np.array_equal(hold1, hold2)
        assert set(train1).isdisjoint(hold1)
        assert len(train1) + len(hold1) == 40
        _, other = _holdout_split(40, GateConfig(seed=4))
        assert not np.array_equal(hold1, other)

    def test_tiny_corpus_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            _holdout_split(5, GateConfig())


class TestGatedRetrain:
    def test_no_incumbent_always_promotes(self, trained_predictor, tiny_traces):
        updated, decisions = gated_retrain(
            trained_predictor, tiny_traces, kinds=(LC,), epochs=5,
        )
        (decision,) = decisions
        assert decision.kind == "latency_critical"
        assert decision.promoted and decision.reason == "no_incumbent"
        assert decision.incumbent_r2 is None
        assert updated.lc_performance is not None
        assert updated.be_performance is trained_predictor.be_performance

    def test_regressing_candidate_is_rejected(
        self, trained_predictor, tiny_traces
    ):
        # 1 epoch cannot beat the 25-epoch incumbent within tolerance.
        updated, decisions = gated_retrain(
            trained_predictor, tiny_traces, kinds=(BE,), epochs=1,
            gate=GateConfig(tolerance=0.0),
        )
        (decision,) = decisions
        assert not decision.promoted and decision.reason == "regression"
        assert decision.candidate_r2 is not None
        assert decision.candidate_r2 < decision.incumbent_r2
        # The serving predictor keeps the incumbent model.
        assert updated.be_performance is trained_predictor.be_performance

    def test_huge_tolerance_promotes(self, trained_predictor, tiny_traces):
        updated, decisions = gated_retrain(
            trained_predictor, tiny_traces, kinds=(BE,), epochs=1,
            gate=GateConfig(tolerance=1e9),
        )
        (decision,) = decisions
        assert decision.promoted and decision.reason == "promoted"
        assert updated.be_performance is not trained_predictor.be_performance

    def test_timeout_abandons_candidate(self, trained_predictor, tiny_traces):
        updated, decisions = gated_retrain(
            trained_predictor, tiny_traces, kinds=(BE,), epochs=2,
            gate=GateConfig(timeout_s=1e-9),
        )
        (decision,) = decisions
        assert not decision.promoted and decision.reason == "timeout"
        assert decision.elapsed_s > 0
        assert updated.be_performance is trained_predictor.be_performance

    def test_injected_retrain_timeout_fault(
        self, trained_predictor, tiny_traces
    ):
        plan = FaultPlan.sample_trainer(seed=0, epochs=8)
        # Strip the other trainer faults so only the timeout window fires.
        timeout_only = FaultPlan(
            seed=plan.seed,
            faults=plan.of_kind("retrain_timeout"),
        )
        chaos = TrainingChaos(timeout_only)
        # The sampled window covers retrain-attempt index 1, so the first
        # kind retrains normally and the second one hits the timeout.
        _, decisions = gated_retrain(
            trained_predictor, tiny_traces, kinds=(BE, LC), epochs=2,
            chaos=chaos,
        )
        assert decisions[0].reason != "timeout"
        assert decisions[1].reason == "timeout"
        assert chaos.injected["retrain_timeouts"] == 1

    def test_interference_kind_rejected(self, trained_predictor, tiny_traces):
        with pytest.raises(ValueError):
            gated_retrain(
                trained_predictor, tiny_traces,
                kinds=(WorkloadKind.INTERFERENCE,),
            )

    def test_requires_system_state(self, signatures, feature_config, tiny_traces):
        bare = Predictor(
            system_state=None, signatures=signatures,
            feature_config=feature_config,
        )
        with pytest.raises(ValueError, match="system-state"):
            gated_retrain(bare, tiny_traces)

    def test_decisions_are_observable(self, trained_predictor, tiny_traces):
        obs.enable()
        try:
            gated_retrain(
                trained_predictor, tiny_traces, kinds=(BE,), epochs=1,
                gate=GateConfig(tolerance=1e9),
            )
            counter = obs.metrics().get("model_promotions_total")
            value = counter.labels(
                kind="best_effort", outcome="promoted"
            ).snapshot()
            assert value == 1.0
            instants = [
                e for e in obs.tracer().events
                if e["name"] == "model_promotion"
            ]
            assert instants and instants[0]["args"]["promoted"] is True
        finally:
            obs.disable()

    def test_decision_to_dict_round_trips(self):
        decision = PromotionDecision(
            kind="best_effort", promoted=False, reason="regression",
            candidate_r2=0.4, incumbent_r2=0.8, elapsed_s=1.5,
        )
        assert decision.to_dict()["reason"] == "regression"
        assert decision.to_dict()["candidate_r2"] == 0.4


class TestDriftGateWiring:
    def test_gated_path_used_when_gate_given(self, monkeypatch):
        policy = SimpleNamespace(predictor=object())
        fresh = object()
        calls = []

        def fake_gated(predictor, traces, *, kinds, epochs, seed, gate, chaos,
                       recovery=None):
            calls.append((predictor, gate, chaos))
            return fresh, [
                PromotionDecision(kind="be", promoted=True, reason="promoted")
            ]

        monkeypatch.setattr(
            "repro.models.promotion.gated_retrain", fake_gated
        )
        gate = GateConfig(tolerance=0.5)
        callback = retrain_on_drift(
            policy, ["corpus"], kinds=(BE,), epochs=3, gate=gate,
        )
        stale = policy.predictor
        callback(SimpleNamespace(stream="be"))
        assert policy.predictor is fresh
        assert calls == [(stale, gate, None)]

    def test_ungated_path_unchanged(self, monkeypatch):
        policy = SimpleNamespace(predictor=object())
        fresh = object()
        monkeypatch.setattr(
            "repro.models.retraining.retrain",
            lambda *a, **k: fresh,
        )
        callback = retrain_on_drift(policy, ["corpus"], kinds=(BE,))
        callback(SimpleNamespace(stream="be"))
        assert policy.predictor is fresh


class TestRecoveryDuringRetrain:
    def test_nan_grad_fault_recovers_and_still_gates(
        self, trained_predictor, tiny_traces
    ):
        plan = FaultPlan.sample_trainer(seed=1, epochs=8)
        nan_only = FaultPlan(seed=plan.seed, faults=plan.of_kind("nan_grad"))
        chaos = TrainingChaos(nan_only)
        _, decisions = gated_retrain(
            trained_predictor, tiny_traces, kinds=(BE,), epochs=8,
            gate=GateConfig(tolerance=1e9), chaos=chaos,
            recovery=RecoveryPolicy(),
        )
        assert chaos.injected["nan_grad_epochs"], "fault never fired"
        # Recovery let the fit finish; the gate then ruled on the result.
        assert decisions[0].reason in ("promoted", "regression")
