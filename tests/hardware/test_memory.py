import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import LocalMemory


@pytest.fixture
def dram():
    return LocalMemory(bandwidth_gbps=120.0, capacity_gb=1200.0)


class TestLocalMemory:
    def test_light_load_unaffected(self, dram):
        state = dram.resolve(30.0)
        assert state.queuing_factor == 1.0
        assert state.delivered_gbps == pytest.approx(30.0)

    def test_queuing_past_floor(self, dram):
        # floor 0.6 -> at 90/120 = 0.75 util, queue = 1 + 1.5*0.15
        state = dram.resolve(90.0)
        assert state.queuing_factor == pytest.approx(1.225)

    def test_delivered_capped_at_bandwidth(self, dram):
        state = dram.resolve(500.0)
        assert state.delivered_gbps == pytest.approx(120.0)

    def test_local_dram_much_harder_to_saturate_than_link(self, dram):
        """Remark R5: 16 memBw trashers (~96 Gbps) stay below local
        saturation while 8 (~3.6 Gbps offered) saturate the 2.5 Gbps link."""
        state = dram.resolve(16 * 6.0)
        assert state.utilization < 1.0
        assert state.queuing_factor < 1.5

    @given(demand=st.floats(min_value=0, max_value=1000, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_queuing_monotone(self, demand):
        dram = LocalMemory(120.0, 1200.0)
        assert (
            dram.resolve(demand + 1.0).queuing_factor
            >= dram.resolve(demand).queuing_factor
        )

    def test_negative_inputs_raise(self, dram):
        with pytest.raises(ValueError):
            dram.resolve(-1.0)
        with pytest.raises(ValueError):
            dram.resolve(1.0, used_gb=-1.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            LocalMemory(0.0, 10.0)
        with pytest.raises(ValueError):
            LocalMemory(10.0, 10.0, contention_floor=1.0)
