"""Learning-rate schedulers layered on top of :mod:`repro.nn.optim`."""

from __future__ import annotations

import math

from repro.nn.optim import Optimizer

__all__ = ["Scheduler", "StepLR", "ExponentialLR", "CosineAnnealingLR", "ReduceLROnPlateau"]


class Scheduler:
    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self, metric: float | None = None) -> None:
        self.epoch += 1
        self.optimizer.lr = self._lr_at(self.epoch, metric)

    def _lr_at(self, epoch: int, metric: float | None) -> float:
        raise NotImplementedError

    # -- checkpointing -------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe progress state (epoch, base LR and current LR).

        ``base_lr`` is part of the state because divergence recovery
        rescales it (see :mod:`repro.nn.resilience`); the optimizer's
        current LR rides along so restoring mid-schedule reproduces the
        exact next update.
        """
        return {
            "epoch": self.epoch,
            "base_lr": self.base_lr,
            "lr": self.optimizer.lr,
        }

    def load_state_dict(self, state: dict) -> None:
        self.epoch = int(state["epoch"])
        self.base_lr = float(state["base_lr"])
        self.optimizer.lr = float(state["lr"])


class StepLR(Scheduler):
    """Multiply the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.step_size = step_size
        self.gamma = gamma

    def _lr_at(self, epoch: int, metric: float | None) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class ExponentialLR(Scheduler):
    def __init__(self, optimizer: Optimizer, gamma: float = 0.95) -> None:
        super().__init__(optimizer)
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.gamma = gamma

    def _lr_at(self, epoch: int, metric: float | None) -> float:
        return self.base_lr * self.gamma**epoch


class CosineAnnealingLR(Scheduler):
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.t_max = t_max
        self.eta_min = eta_min

    def _lr_at(self, epoch: int, metric: float | None) -> float:
        frac = min(epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1 + math.cos(math.pi * frac)
        )


class ReduceLROnPlateau(Scheduler):
    """Halve (by ``factor``) the LR when the monitored metric stalls."""

    def __init__(
        self,
        optimizer: Optimizer,
        factor: float = 0.5,
        patience: int = 5,
        min_lr: float = 1e-6,
    ) -> None:
        super().__init__(optimizer)
        if not 0 < factor < 1:
            raise ValueError("factor must be in (0, 1)")
        if patience < 0:
            raise ValueError("patience must be non-negative")
        self.factor = factor
        self.patience = patience
        self.min_lr = min_lr
        self._best = math.inf
        self._bad_epochs = 0

    def step(self, metric: float | None = None) -> None:
        if metric is None:
            raise ValueError("ReduceLROnPlateau requires a metric")
        self.epoch += 1
        if metric < self._best - 1e-12:
            self._best = metric
            self._bad_epochs = 0
        else:
            self._bad_epochs += 1
            if self._bad_epochs > self.patience:
                self.optimizer.lr = max(self.optimizer.lr * self.factor, self.min_lr)
                self._bad_epochs = 0

    def _lr_at(self, epoch: int, metric: float | None) -> float:  # pragma: no cover
        return self.optimizer.lr

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["best"] = self._best
        state["bad_epochs"] = self._bad_epochs
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._best = float(state["best"])
        self._bad_epochs = int(state["bad_epochs"])
