import numpy as np
import pytest

from repro.nn import (
    Adam,
    DataLoader,
    EarlyStopping,
    Linear,
    MSELoss,
    ReLU,
    Sequential,
    TensorDataset,
    Trainer,
)


def regression_problem(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 4))
    w = np.array([1.0, -2.0, 0.5, 3.0])
    y = (x @ w + 0.1 * rng.normal(size=n)).reshape(-1, 1)
    return TensorDataset(x, y)


def make_trainer(seed=0, lr=0.01):
    rng = np.random.default_rng(seed)
    model = Sequential(Linear(4, 16, rng=rng), ReLU(), Linear(16, 1, rng=rng))
    return Trainer(model, Adam(model.parameters(), lr=lr), MSELoss())


class TestTrainer:
    def test_loss_decreases(self):
        ds = regression_problem()
        trainer = make_trainer()
        loader = DataLoader(ds, batch_size=32, shuffle=True,
                            rng=np.random.default_rng(1))
        history = trainer.fit(loader, epochs=25)
        assert history.train_loss[-1] < history.train_loss[0] * 0.2

    def test_validation_tracked(self):
        ds = regression_problem()
        trainer = make_trainer()
        loader = DataLoader(ds, batch_size=32)
        history = trainer.fit(loader, val_loader=loader, epochs=3)
        assert len(history.val_loss) == 3
        assert history.best_val_loss == min(history.val_loss)

    def test_evaluate_does_not_touch_params(self):
        ds = regression_problem()
        trainer = make_trainer()
        loader = DataLoader(ds, batch_size=32)
        before = trainer.model.state_dict()
        trainer.evaluate(loader)
        after = trainer.model.state_dict()
        assert all(np.allclose(before[k], after[k]) for k in before)

    @pytest.mark.filterwarnings("ignore:overflow encountered")
    def test_nonfinite_loss_raises(self):
        ds = TensorDataset(np.full((8, 4), 1e200), np.zeros((8, 1)))
        trainer = make_trainer()
        with pytest.raises(FloatingPointError):
            trainer.train_epoch(DataLoader(ds, batch_size=8))

    def test_invalid_epochs(self):
        trainer = make_trainer()
        with pytest.raises(ValueError):
            trainer.fit(DataLoader(regression_problem(), batch_size=8), epochs=0)

    def test_multi_input_forward_fn(self):
        rng = np.random.default_rng(2)
        x1 = rng.normal(size=(50, 2))
        x2 = rng.normal(size=(50, 2))
        y = (x1.sum(axis=1) + x2.sum(axis=1)).reshape(-1, 1)
        model = Linear(4, 1, rng=rng)
        trainer = Trainer(
            model,
            Adam(model.parameters(), lr=0.05),
            MSELoss(),
            forward_fn=lambda m, a, b: m.forward(np.concatenate([a, b], axis=1)),
        )
        ds = TensorDataset(x1, x2, y)
        history = trainer.fit(DataLoader(ds, batch_size=16, shuffle=True), epochs=30)
        assert history.train_loss[-1] < 0.05


class TestEarlyStopping:
    def test_stops_after_patience(self):
        ds = regression_problem(n=64)
        trainer = make_trainer(lr=1e-6)  # too small to improve
        loader = DataLoader(ds, batch_size=32)
        history = trainer.fit(
            loader, val_loader=loader, epochs=100,
            early_stopping=EarlyStopping(patience=3, min_delta=1.0),
        )
        assert history.epochs <= 5

    def test_restores_best_state(self):
        model = Linear(2, 1)
        stopper = EarlyStopping(patience=2)
        stopper.update(1.0, model)
        best = model.state_dict()
        model.weight.value[...] = 999.0
        stopper.update(2.0, model)
        stopper.update(3.0, model)
        stopper.restore_best(model)
        assert np.allclose(model.state_dict()["weight"], best["weight"])

    def test_invalid_patience(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)


class TestEarlyStoppingStateDict:
    def test_round_trip_preserves_best_and_counter(self):
        model = Linear(2, 1)
        stopper = EarlyStopping(patience=3)
        stopper.update(1.0, model)
        stopper.update(2.0, model)  # bad epoch 1
        state = stopper.state_dict()

        other = EarlyStopping(patience=3)
        other.load_state_dict(state)
        assert other.best == 1.0
        assert other.bad_epochs == 1
        for key, value in stopper.best_state.items():
            assert np.array_equal(other.best_state[key], value)

    def test_restored_stopper_stops_on_schedule(self):
        model = Linear(2, 1)
        stopper = EarlyStopping(patience=2)
        stopper.update(1.0, model)
        stopper.update(2.0, model)
        other = EarlyStopping(patience=2)
        other.load_state_dict(stopper.state_dict())
        assert other.update(3.0, model)  # bad epoch 2 of 2

    def test_state_dict_arrays_are_copies(self):
        model = Linear(2, 1)
        stopper = EarlyStopping(patience=2)
        stopper.update(1.0, model)
        state = stopper.state_dict()
        state["best_state"]["weight"][...] = 123.0
        assert not np.allclose(stopper.best_state["weight"], 123.0)
