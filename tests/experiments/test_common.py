import pytest

from repro.experiments.common import (
    DEFAULT,
    ExperimentScale,
    PAPER,
    QUICK,
    eval_scenario_configs,
    get_signatures,
    get_traces,
    scale_from_env,
)


#: Micro scale used only by the test suite: small enough that cached
#: traces build in a couple of seconds.
MICRO = ExperimentScale(
    name="micro",
    n_scenarios=2,
    scenario_duration_s=600.0,
    epochs_system=5,
    epochs_performance=5,
    n_eval_scenarios=1,
    eval_duration_s=400.0,
)


class TestScales:
    def test_paper_matches_section_vb1(self):
        """The paper simulates 72 one-hour scenarios."""
        assert PAPER.n_scenarios == 72
        assert PAPER.scenario_duration_s == 3600.0

    def test_ordering(self):
        assert QUICK.n_scenarios < DEFAULT.n_scenarios < PAPER.n_scenarios

    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("ADRIAS_SCALE", "paper")
        assert scale_from_env() is PAPER
        monkeypatch.delenv("ADRIAS_SCALE")
        assert scale_from_env() is QUICK
        monkeypatch.setenv("ADRIAS_SCALE", "bogus")
        with pytest.raises(ValueError):
            scale_from_env()

    def test_budget_mapping(self):
        budget = QUICK.budget()
        assert budget.n_scenarios == QUICK.n_scenarios
        assert budget.epochs_system == QUICK.epochs_system


class TestCaching:
    def test_traces_cached_per_scale(self):
        a = get_traces(MICRO)
        b = get_traces(MICRO)
        assert a is b
        assert len(a) == MICRO.n_scenarios

    def test_signatures_cached(self):
        a = get_signatures()
        b = get_signatures()
        assert a is b
        assert len(a) == 19  # 17 Spark + 2 LC

    def test_eval_configs_disjoint_from_training_seeds(self):
        train_seeds = {c.seed for c in MICRO.budget().scenario_configs()}
        eval_seeds = {c.seed for c in eval_scenario_configs(MICRO)}
        assert train_seeds.isdisjoint(eval_seeds)
