"""End-to-end: ``--obs-out`` on a real experiment and ``repro obs``."""

import json

import pytest

from repro import obs
from repro.__main__ import main
from repro.cluster.scenario import ScenarioConfig, run_scenario
from repro.obs.report import load_artifacts, summarize_dir
from repro.orchestrator.policies import RandomPolicy


class TestObsOutFlag:
    def test_run_with_obs_out_dumps_artifacts(self, tmp_path, capsys):
        out = tmp_path / "dump"
        assert main(["run", "fig02", "--obs-out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "observability artifacts" in stdout
        for name in obs.ARTIFACT_NAMES:
            assert (out / name).exists(), name
        # The experiment itself still printed its table.
        assert "Fig. 2" in stdout
        metrics = json.loads((out / "metrics.json").read_text())
        names = {f["name"] for f in metrics["metrics"]}
        assert "link_resolves_total" in names
        trace = json.loads((out / "trace.json").read_text())
        assert isinstance(trace["traceEvents"], list)
        assert not obs.enabled()  # flag must not leak into the process

    def test_run_without_flag_stays_disabled(self, capsys):
        assert main(["run", "fig02"]) == 0
        assert not obs.enabled()


class TestObsSubcommand:
    @pytest.fixture()
    def dump_dir(self, tmp_path):
        with obs.session():
            run_scenario(
                ScenarioConfig(duration_s=150.0, seed=6),
                scheduler=RandomPolicy(seed=3),
            )
            obs.dump(tmp_path / "dump")
        return tmp_path / "dump"

    def test_summarize_dump(self, dump_dir, capsys):
        assert main(["obs", str(dump_dir)]) == 0
        out = capsys.readouterr().out
        assert "Metrics" in out
        assert "Decision audit" in out
        assert "random" in out

    def test_missing_directory_errors(self, tmp_path, capsys):
        assert main(["obs", str(tmp_path / "nope")]) == 2
        assert "not an observability dump" in capsys.readouterr().err

    def test_load_artifacts_requires_some_artifact(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(FileNotFoundError):
            load_artifacts(empty)

    def test_summary_counts_match_jsonl(self, dump_dir):
        decisions = [
            json.loads(line)
            for line in (dump_dir / "decisions.jsonl").read_text().splitlines()
        ]
        assert decisions, "replay produced no decisions"
        assert all(d["outcome"] is not None for d in decisions)
        report = summarize_dir(dump_dir)
        decision_lines = [
            line for line in report.splitlines()
            if line.startswith("decisions ")
        ]
        assert decision_lines and decision_lines[0].endswith(str(len(decisions)))
