"""repro.workloads — cloud workload models of §IV-A.

Best-effort Spark/HiBench analytics, latency-critical Redis/Memcached
with a memtier-style closed-loop load generator, and iBench resource
trashers.  Profiles carry demand vectors, interference sensitivities and
the per-benchmark remote-memory calibration of the characterization
(Figs. 3-5, remarks R4-R7).
"""

from repro.workloads.base import (
    MemoryMode,
    SensitivityVector,
    WorkloadKind,
    WorkloadProfile,
)
from repro.workloads.ibench import IBENCH, IBENCH_KINDS, ibench_profile
from repro.workloads.loadgen import LatencySample, LoadGenConfig, TailLatencyModel
from repro.workloads.memcached import MEMCACHED
from repro.workloads.redis import LCProfile, REDIS
from repro.workloads.registry import (
    all_profiles,
    be_profiles,
    get_profile,
    interference_profiles,
    lc_profiles,
    profiles_of_kind,
)
from repro.workloads.spark import SPARK_BENCHMARKS, spark_names, spark_profile

__all__ = [
    "IBENCH",
    "IBENCH_KINDS",
    "LCProfile",
    "LatencySample",
    "LoadGenConfig",
    "MEMCACHED",
    "MemoryMode",
    "REDIS",
    "SPARK_BENCHMARKS",
    "SensitivityVector",
    "TailLatencyModel",
    "WorkloadKind",
    "WorkloadProfile",
    "all_profiles",
    "be_profiles",
    "get_profile",
    "ibench_profile",
    "interference_profiles",
    "lc_profiles",
    "profiles_of_kind",
    "spark_names",
    "spark_profile",
]
