"""Safety-envelope schema validation and monitor verdicts."""

import json

import pytest

from repro import obs
from repro.cluster.engine import ClusterEngine
from repro.cluster.fleet import ClusterFleet
from repro.faults.breaker import CircuitBreaker
from repro.hardware.pool import RemotePoolConfig
from repro.obs.live.slo import SloEngine
from repro.orchestrator.policies import InterferenceThresholdPolicy
from repro.serve.safety import (
    SafetyConfigError,
    SafetyConstraint,
    SafetyEnvelope,
    SafetyMonitor,
)
from repro.workloads import MemoryMode
from repro.workloads.registry import be_profiles, lc_profiles


def profile_be():
    return list(be_profiles().values())[0]


def profile_lc():
    return lc_profiles()["redis"]


class TestConstraintValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SafetyConfigError, match="unknown safety"):
            SafetyConstraint("max_cpu_heat", 0.5)

    def test_unknown_action_rejected(self):
        with pytest.raises(SafetyConfigError, match="action"):
            SafetyConstraint("max_link_utilization", 0.5, action="explode")

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.5])
    def test_fraction_limits_enforced(self, bad):
        with pytest.raises(SafetyConfigError):
            SafetyConstraint("max_link_utilization", bad)

    def test_burn_limit_must_be_positive(self):
        with pytest.raises(SafetyConfigError):
            SafetyConstraint("max_qos_burn_rate", 0.0)

    @pytest.mark.parametrize("bad", [0, 0.5, 2.5])
    def test_concurrency_limit_must_be_whole(self, bad):
        with pytest.raises(SafetyConfigError):
            SafetyConstraint("max_concurrent_remote", bad)

    def test_breaker_gate_takes_no_limit(self):
        with pytest.raises(SafetyConfigError, match="no limit"):
            SafetyConstraint("breaker_closed", 1.0)

    def test_limit_required_for_utilization(self):
        with pytest.raises(SafetyConfigError, match="requires a limit"):
            SafetyConstraint("max_link_utilization")


class TestEnvelopeSerialization:
    def test_round_trip(self):
        envelope = SafetyEnvelope.sample()
        again = SafetyEnvelope.from_dict(envelope.to_dict())
        assert again == envelope

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "env.json"
        SafetyEnvelope.sample().to_file(path)
        assert SafetyEnvelope.from_file(path) == SafetyEnvelope.sample()

    def test_wrong_version_rejected(self):
        with pytest.raises(SafetyConfigError, match="version"):
            SafetyEnvelope.from_dict({"version": 99, "constraints": []})

    def test_unknown_constraint_field_rejected(self):
        with pytest.raises(SafetyConfigError, match="unknown fields"):
            SafetyEnvelope.from_dict(
                {"constraints": [{"kind": "breaker_closed", "wat": 1}]}
            )

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "env.json"
        path.write_text("{nope")
        with pytest.raises(SafetyConfigError, match="corrupt"):
            SafetyEnvelope.from_file(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SafetyConfigError, match="no safety envelope"):
            SafetyEnvelope.from_file(tmp_path / "nope.json")


class TestMonitorVerdicts:
    def test_local_candidates_always_admit(self):
        monitor = SafetyMonitor(
            SafetyEnvelope((SafetyConstraint("max_concurrent_remote", 1),))
        )
        verdict = monitor.review(
            profile_be(), MemoryMode.LOCAL, ClusterEngine()
        )
        assert verdict.admitted

    def test_concurrency_ceiling_vetoes(self):
        fleet = ClusterFleet(n_nodes=1)
        engine = fleet.engines[0]
        engine.deploy(profile_be(), MemoryMode.REMOTE)
        monitor = SafetyMonitor(
            SafetyEnvelope((SafetyConstraint("max_concurrent_remote", 1),))
        )
        verdict = monitor.review(
            profile_be(), MemoryMode.REMOTE, engine, fleet=fleet
        )
        assert verdict.action == "veto"
        assert verdict.constraint == "max_concurrent_remote"
        assert monitor.vetoes == {"max_concurrent_remote": 1}

    def test_breaker_gate_downgrades_while_open(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=100.0)
        breaker.record_failure(0.0)
        monitor = SafetyMonitor(
            SafetyEnvelope(
                (SafetyConstraint("breaker_closed", action="downgrade"),)
            ),
            breaker=breaker,
        )
        verdict = monitor.review(
            profile_be(), MemoryMode.REMOTE, ClusterEngine()
        )
        assert verdict.action == "downgrade"
        assert monitor.downgrades == {"breaker_closed": 1}
        breaker.record_success(200.0)
        breaker.allow(200.0)

    def test_qos_burn_ceiling(self):
        slo = SloEngine(targets={"redis": 1.0}, windows=(60.0,))
        for i in range(10):
            slo.record("redis", p99_ms=5.0, clock=float(i))  # all violations
        monitor = SafetyMonitor(
            SafetyEnvelope((SafetyConstraint("max_qos_burn_rate", 2.0),)),
            slo=slo,
        )
        verdict = monitor.review(
            profile_lc(), MemoryMode.REMOTE, ClusterEngine(), clock=10.0
        )
        assert verdict.action == "veto"
        assert verdict.constraint == "max_qos_burn_rate"

    def test_pool_capacity_ceiling(self):
        fleet = ClusterFleet(
            n_nodes=2, pool=RemotePoolConfig(capacity_gb=20.0)
        )
        monitor = SafetyMonitor(
            SafetyEnvelope((SafetyConstraint("max_pool_capacity", 0.5),))
        )
        verdict = monitor.review(
            profile_lc(), MemoryMode.REMOTE, fleet.engines[0], fleet=fleet
        )
        # redis is 16 GB against a 10 GB effective ceiling.
        assert verdict.action == "veto"
        assert verdict.constraint == "max_pool_capacity"

    def test_first_violation_wins_declared_order(self):
        fleet = ClusterFleet(n_nodes=1)
        engine = fleet.engines[0]
        engine.deploy(profile_be(), MemoryMode.REMOTE)
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=100.0)
        breaker.record_failure(0.0)
        monitor = SafetyMonitor(
            SafetyEnvelope(
                (
                    SafetyConstraint("breaker_closed"),
                    SafetyConstraint("max_concurrent_remote", 1),
                )
            ),
            breaker=breaker,
        )
        verdict = monitor.review(
            profile_be(), MemoryMode.REMOTE, engine, fleet=fleet
        )
        assert verdict.constraint == "breaker_closed"

    def test_state_dict_round_trip(self):
        monitor = SafetyMonitor(SafetyEnvelope())
        monitor.vetoes = {"max_pool_capacity": 3}
        monitor.downgrades = {"breaker_closed": 1}
        monitor._active = {"max_pool_capacity"}
        fresh = SafetyMonitor(SafetyEnvelope())
        fresh.load_state_dict(
            json.loads(json.dumps(monitor.state_dict()))
        )
        assert fresh.vetoes == monitor.vetoes
        assert fresh.downgrades == monitor.downgrades
        assert fresh._active == monitor._active


class TestObservability:
    def test_veto_metered_and_streamed_edge_triggered(self, tmp_path):
        live = obs.enable_live(tmp_path / "live", flush_every=1,
                               profile=False)
        fleet = ClusterFleet(n_nodes=1)
        engine = fleet.engines[0]
        engine.deploy(profile_be(), MemoryMode.REMOTE)
        monitor = SafetyMonitor(
            SafetyEnvelope((SafetyConstraint("max_concurrent_remote", 1),))
        )
        monitor.review(profile_be(), MemoryMode.REMOTE, engine, fleet=fleet)
        monitor.review(profile_be(), MemoryMode.REMOTE, engine, fleet=fleet)
        snapshot = obs.metrics().snapshot()
        family = next(
            f for f in snapshot if f["name"] == "safety_vetoes_total"
        )
        (series,) = family["series"]
        assert series["labels"] == {
            "constraint": "max_concurrent_remote", "node": "n0"
        }
        assert series["value"] == 2
        live.flush()
        records = [
            json.loads(line)
            for line in live.exporter.path.read_text().splitlines()
        ]
        vetoes = [r for r in records if r.get("kind") == "safety_veto"]
        assert len(vetoes) == 2
        assert vetoes[0]["constraint"] == "max_concurrent_remote"
        assert vetoes[0]["action"] == "veto"

    def test_clear_event_after_constraint_recovers(self, tmp_path):
        live = obs.enable_live(tmp_path / "live", flush_every=1,
                               profile=False)
        fleet = ClusterFleet(n_nodes=1)
        engine = fleet.engines[0]
        blocker = engine.deploy(profile_be(), MemoryMode.REMOTE)
        monitor = SafetyMonitor(
            SafetyEnvelope((SafetyConstraint("max_concurrent_remote", 1),))
        )
        monitor.review(profile_be(), MemoryMode.REMOTE, engine, fleet=fleet)
        blocker.progress_s = blocker.profile.nominal_runtime_s
        engine.tick()
        monitor.review(profile_be(), MemoryMode.REMOTE, engine, fleet=fleet)
        live.flush()
        records = [
            json.loads(line)
            for line in live.exporter.path.read_text().splitlines()
        ]
        kinds = [r.get("kind") for r in records if r.get("t") == "event"]
        assert "safety_clear" in kinds


class TestPolicyHook:
    def test_base_policy_consults_safety_hook(self):
        policy = InterferenceThresholdPolicy(max_link_utilization=1.0)
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=100.0)
        breaker.record_failure(0.0)
        policy.safety = SafetyMonitor(
            SafetyEnvelope((SafetyConstraint("breaker_closed"),)),
            breaker=breaker,
        )
        engine = ClusterEngine()
        assert policy(profile_be(), engine) is MemoryMode.LOCAL
        breaker.record_success(0.0)
        policy.safety = None
        assert policy(profile_be(), engine) is MemoryMode.REMOTE
