"""Bench Fig. 13a/c/d — BE performance-model accuracy.

Paper numbers: R² 0.942 average with oracle future state (0.945 local /
0.939 remote); per-benchmark MAEs around 10% of the median runtime with
the practical configuration.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig13_be_accuracy


def test_fig13_be_accuracy(benchmark, report, scale, strict):
    result = run_once(benchmark, fig13_be_accuracy.run, scale=scale)
    report(result.format())

    # Part (a): oracle-future accuracy.
    floor = 0.80 if strict else 0.45
    assert result.oracle_metrics["r2"] >= floor
    if strict:
        # Both modes individually predictable.
        assert result.oracle_metrics.get("r2_local", 0) >= 0.7
        assert result.oracle_metrics.get("r2_remote", 0) >= 0.6

    # Part (c): relative MAE per benchmark stays bounded.  The paper
    # reports ~10% of median; the simulated corpus carries heavier
    # congestion tails (runtime inflation up to ~10x in {5,20}
    # scenarios), which widens the achievable band — see EXPERIMENTS.md.
    rel_maes = [result.relative_mae(name) for name in result.mae_per_benchmark]
    assert sum(rel_maes) / len(rel_maes) <= (0.50 if strict else 0.8)

    # Part (d): residuals correlate with the truth.
    from repro.nn.metrics import pearson

    assert pearson(result.actual, result.predicted) > (0.85 if strict else 0.6)
