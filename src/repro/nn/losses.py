"""Regression losses.

Each loss exposes ``forward(pred, target) -> float`` and
``backward() -> dL/dpred``; they plug into the same explicit-backward
pipeline as the layers.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Loss", "MSELoss", "MAELoss", "HuberLoss"]


class Loss:
    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> float:
        return self.forward(pred, target)

    @staticmethod
    def _check(pred: np.ndarray, target: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        pred = np.asarray(pred, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if pred.shape != target.shape:
            raise ValueError(
                f"prediction shape {pred.shape} != target shape {target.shape}"
            )
        if pred.size == 0:
            raise ValueError("loss of empty arrays is undefined")
        return pred, target


class MSELoss(Loss):
    """Mean squared error — the training loss for both Adrias models."""

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        pred, target = self._check(pred, target)
        self._diff = pred - target
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._diff.size


class MAELoss(Loss):
    """Mean absolute error; reported per benchmark in Fig. 13c / Fig. 14a."""

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        pred, target = self._check(pred, target)
        self._diff = pred - target
        return float(np.mean(np.abs(self._diff)))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return np.sign(self._diff) / self._diff.size


class HuberLoss(Loss):
    """Smooth-L1 loss; robust option for heavy-tailed latency targets."""

    def __init__(self, delta: float = 1.0) -> None:
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = delta
        self._diff: np.ndarray | None = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        pred, target = self._check(pred, target)
        self._diff = pred - target
        abs_diff = np.abs(self._diff)
        quad = np.minimum(abs_diff, self.delta)
        return float(np.mean(0.5 * quad**2 + self.delta * (abs_diff - quad)))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return (
            np.clip(self._diff, -self.delta, self.delta) / self._diff.size
        )
