import math

import pytest

from repro.cluster import ClusterEngine, Deployment
from repro.hardware import Testbed, TestbedConfig
from repro.workloads import MEMCACHED, MemoryMode, REDIS, ibench_profile, spark_profile


@pytest.fixture
def engine():
    return ClusterEngine(testbed=Testbed(TestbedConfig(counter_noise=0.0)))


class TestLifecycle:
    def test_be_finishes_at_nominal_runtime_in_isolation(self, engine):
        deployment = engine.deploy(spark_profile("wordcount"), MemoryMode.LOCAL)
        engine.run_until_idle()
        record = deployment.record()
        assert record.runtime_s == pytest.approx(40.0, abs=1.0)
        assert record.mode is MemoryMode.LOCAL
        assert math.isnan(record.p99_ms)

    def test_be_remote_takes_remote_slowdown_longer(self, engine):
        profile = spark_profile("nweight")
        deployment = engine.deploy(profile, MemoryMode.REMOTE)
        engine.run_until_idle()
        expected = profile.nominal_runtime_s * profile.remote_slowdown
        assert deployment.record().runtime_s == pytest.approx(expected, rel=0.02)

    def test_interference_runs_for_fixed_duration(self, engine):
        deployment = engine.deploy(
            ibench_profile("cpu"), MemoryMode.LOCAL, duration_s=30.0
        )
        engine.run_for(29.0)
        assert deployment.running
        engine.run_for(2.0)
        assert not deployment.running
        assert deployment.record().runtime_s == pytest.approx(30.0, abs=1.5)

    def test_lc_serves_request_budget(self, engine):
        deployment = engine.deploy(REDIS, MemoryMode.LOCAL)
        engine.run_until_idle()
        record = deployment.record()
        assert record.runtime_s == pytest.approx(REDIS.nominal_runtime_s, rel=0.02)
        assert record.p99_ms == pytest.approx(REDIS.base_p99_ms, rel=0.1)
        assert record.p999_ms > record.p99_ms

    def test_advance_after_finish_raises(self, engine):
        deployment = engine.deploy(spark_profile("scan"), MemoryMode.LOCAL)
        engine.run_until_idle()
        with pytest.raises(RuntimeError):
            deployment.advance(engine.now, 1.0, engine.current_pressure())

    def test_record_before_finish_raises(self, engine):
        deployment = engine.deploy(spark_profile("scan"), MemoryMode.LOCAL)
        with pytest.raises(RuntimeError):
            deployment.record()


class TestValidation:
    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            Deployment(
                app_id=0,
                profile=spark_profile("scan"),
                mode=MemoryMode.LOCAL,
                arrival_time=-1.0,
            )

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            Deployment(
                app_id=0,
                profile=ibench_profile("cpu"),
                mode=MemoryMode.LOCAL,
                arrival_time=0.0,
                duration_s=0.0,
            )

    def test_bad_dt_rejected(self, engine):
        deployment = engine.deploy(spark_profile("scan"), MemoryMode.LOCAL)
        with pytest.raises(ValueError):
            deployment.advance(1.0, 0.0, engine.current_pressure())


class TestAccounting:
    def test_mean_slowdown_tracked(self, engine):
        deployment = engine.deploy(spark_profile("nweight"), MemoryMode.REMOTE)
        engine.run_until_idle()
        record = deployment.record()
        assert record.mean_slowdown == pytest.approx(
            spark_profile("nweight").remote_slowdown, rel=0.02
        )

    def test_remote_deployment_accumulates_link_traffic(self, engine):
        deployment = engine.deploy(spark_profile("lr"), MemoryMode.REMOTE)
        engine.run_until_idle()
        record = deployment.record()
        profile = spark_profile("lr")
        expected = profile.remote_bw_gbps * record.runtime_s / 8.0
        assert record.link_traffic_gb == pytest.approx(expected, rel=0.05)

    def test_local_deployment_has_no_link_traffic(self, engine):
        deployment = engine.deploy(spark_profile("lr"), MemoryMode.LOCAL)
        engine.run_until_idle()
        assert deployment.record().link_traffic_gb == 0.0

    def test_performance_selects_kind_metric(self, engine):
        be = engine.deploy(spark_profile("scan"), MemoryMode.LOCAL)
        lc = engine.deploy(MEMCACHED, MemoryMode.LOCAL)
        engine.run_until_idle()
        assert be.record().performance == be.record().runtime_s
        assert lc.record().performance == lc.record().p99_ms
