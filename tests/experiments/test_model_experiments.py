"""Smoke tests for the training-based experiment drivers at micro scale.

These verify plumbing (shapes, keys, formatting, result invariants), not
accuracy bands — accuracy is asserted at real scale by the benchmark
harness (see ``benchmarks/``).
"""

import numpy as np
import pytest

from repro.experiments import (
    fig06_correlation,
    fig09_10_distributions,
    fig13_be_accuracy,
    fig14_lc_accuracy,
    table1_system_state,
)
from repro.hardware import METRIC_NAMES
from repro.workloads import WorkloadKind
from tests.experiments.test_common import MICRO


class TestFig6:
    def test_result_structure(self):
        result = fig06_correlation.run(scale=MICRO)
        assert set(result.be.prior) == set(METRIC_NAMES)
        assert result.lc.n_samples >= 3
        assert "Pearson" in result.format()


class TestFig9And10:
    def test_be_distributions(self):
        result = fig09_10_distributions.run(WorkloadKind.BEST_EFFORT, scale=MICRO)
        assert len(result.distributions) > 0
        for dist in result.distributions.values():
            assert dist.local.count >= 2 and dist.remote.count >= 2
        assert "Fig. 9" in result.format()

    def test_lc_distributions(self):
        result = fig09_10_distributions.run(
            WorkloadKind.LATENCY_CRITICAL, scale=MICRO
        )
        assert "Fig. 10" in result.format()
        for dist in result.distributions.values():
            # Remote p99 medians sit at or above local ones.
            assert dist.median_shift > -0.2


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1_system_state.run(scale=MICRO)

    def test_all_metrics_reported(self, result):
        assert set(result.r2_per_metric) == set(METRIC_NAMES)
        assert result.average_r2 == pytest.approx(
            np.mean(list(result.r2_per_metric.values()))
        )

    def test_residual_arrays_aligned(self, result):
        assert result.actual.shape == result.predicted.shape

    def test_format(self, result):
        text = result.format()
        assert "Table I" in text and "Avg." in text


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        return fig13_be_accuracy.run(scale=MICRO)

    def test_ablation_entries_present(self, result):
        pairs = {(e.train_variant, e.test_variant) for e in result.ablation}
        assert ("none", "none") in pairs
        assert ("exec", "exec") in pairs
        assert ("120", "pred") in pairs

    def test_oracle_metrics_keys(self, result):
        assert {"r2", "mae"} <= set(result.oracle_metrics)

    def test_mae_per_benchmark_positive(self, result):
        assert all(v > 0 for v in result.mae_per_benchmark.values())
        for name in result.mae_per_benchmark:
            assert result.relative_mae(name) > 0

    def test_unknown_ablation_pair_raises(self, result):
        with pytest.raises(KeyError):
            result.ablation_r2("x", "y")

    def test_format(self, result):
        text = result.format()
        assert "Fig. 13b" in text and "{120,pred}" in text


class TestFig14:
    def test_result_structure(self):
        result = fig14_lc_accuracy.run(scale=MICRO)
        assert {"r2", "mae"} <= set(result.metrics)
        assert set(result.mae_per_benchmark) <= {"redis", "memcached"}
        assert "Fig. 14" in result.format()
