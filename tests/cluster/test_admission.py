"""CapacityError admission paths of the engine, incl. the outage queue."""

import pytest

from repro.cluster.engine import (
    CapacityError,
    ClusterEngine,
    RemoteUnavailableError,
)
from repro.hardware import NodeConfig, Testbed, TestbedConfig
from repro.workloads import MemoryMode, spark_profile


def tiny_engine(dram_gb=9.0, remote_gb=9.0):
    return ClusterEngine(
        testbed=Testbed(
            TestbedConfig(node=NodeConfig(dram_gb=dram_gb, remote_gb=remote_gb))
        )
    )


class TestCapacityAdmission:
    def test_overcommit_local_raises(self):
        engine = tiny_engine()
        engine.deploy(spark_profile("scan"), MemoryMode.LOCAL)  # 8 GB
        with pytest.raises(CapacityError, match="does not fit"):
            engine.deploy(spark_profile("scan"), MemoryMode.LOCAL)

    def test_pools_are_independent(self):
        engine = tiny_engine()
        engine.deploy(spark_profile("scan"), MemoryMode.LOCAL)
        engine.deploy(spark_profile("scan"), MemoryMode.REMOTE)  # other pool

    def test_capacity_frees_on_completion(self):
        engine = tiny_engine()
        engine.deploy(spark_profile("scan"), MemoryMode.LOCAL)
        engine.run_until_idle()
        engine.deploy(spark_profile("scan"), MemoryMode.LOCAL)

    def test_fits_is_consistent_with_deploy(self):
        engine = tiny_engine()
        profile = spark_profile("scan")
        assert engine.fits(profile, MemoryMode.LOCAL)
        engine.deploy(profile, MemoryMode.LOCAL)
        assert not engine.fits(profile, MemoryMode.LOCAL)


class TestOutageAdmission:
    def test_remote_blocked_raises_remote_unavailable(self):
        engine = tiny_engine()
        engine.remote_blocked = True
        with pytest.raises(RemoteUnavailableError, match="unavailable"):
            engine.deploy(spark_profile("scan"), MemoryMode.REMOTE)
        # Local placements are unaffected by a link outage.
        engine.deploy(spark_profile("scan"), MemoryMode.LOCAL)

    def test_remote_unavailable_is_a_capacity_error(self):
        # Callers catching CapacityError keep working under outages.
        assert issubclass(RemoteUnavailableError, CapacityError)

    def test_queue_drains_after_outage_clears(self):
        engine = tiny_engine()
        engine.remote_blocked = True
        engine.queue_remote(spark_profile("scan"))
        assert engine.queued_remote == 1
        engine.run_for(5.0)
        assert engine.queued_remote == 1  # still blocked, backing off
        engine.remote_blocked = False
        engine.run_for(70.0)  # beyond the backoff cap
        assert engine.queued_remote == 0
        remote = [
            d for d in engine.deployments if d.mode is MemoryMode.REMOTE
        ]
        assert len(remote) == 1

    def test_queue_entry_dropped_after_retry_limit(self):
        engine = tiny_engine()
        engine.remote_blocked = True
        engine.queue_remote(spark_profile("scan"))
        # Never unblock: backoff 1,2,4,...,64 caps out and the entry is
        # dropped after 8 failed attempts (~191 simulated seconds).
        engine.run_for(300.0)
        assert engine.queued_remote == 0
        assert not engine.deployments

    def test_requeued_deployment_joins_its_audit_row(self):
        # The decision is logged when the placement is chosen; the
        # deployment starts later (after the outage) — the outcome must
        # still join through the recorded decision time.
        from repro import obs

        engine = tiny_engine()
        engine.remote_blocked = True
        profile = spark_profile("scan")
        obs.enable()
        try:
            obs.audit().record(
                engine=engine,
                policy="test",
                app_name=profile.name,
                kind=profile.kind.value,
                chosen_mode="remote",
            )
            engine.queue_remote(profile)
            engine.remote_blocked = False
            engine.run_until_idle()
            (record,) = obs.audit().records
            assert record.outcome is not None
            assert record.outcome["mode"] == "remote"
        finally:
            obs.disable()

    def test_run_until_idle_waits_for_queue(self):
        engine = tiny_engine()
        engine.remote_blocked = True
        engine.queue_remote(spark_profile("scan"), duration_s=5.0)
        engine.remote_blocked = False
        engine.run_until_idle()
        assert engine.queued_remote == 0
        assert engine.trace.records, "queued deployment must finish"
