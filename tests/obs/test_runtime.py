import json

import numpy as np
import pytest

from repro import obs
from repro.cluster.engine import ClusterEngine
from repro.cluster.scenario import ScenarioConfig, run_scenario
from repro.obs.metrics import NullRegistry
from repro.workloads import MemoryMode, spark_profile


class TestLifecycle:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert isinstance(obs.metrics(), NullRegistry)
        assert obs.wall_time() == 0.0

    def test_session_enables_and_restores(self):
        with obs.session() as handles:
            assert obs.enabled()
            assert obs.metrics() is handles.metrics
            assert obs.wall_time() > 0.0
        assert not obs.enabled()

    def test_nested_session_shares_collectors(self):
        with obs.session() as outer:
            with obs.session() as inner:
                assert inner.metrics is outer.metrics
            assert obs.enabled()  # inner exit must not tear down outer
        assert not obs.enabled()

    def test_enable_is_idempotent(self):
        try:
            first = obs.enable()
            second = obs.enable()
            assert first.metrics is second.metrics
        finally:
            obs.disable()

    def test_reset_clears_without_disabling(self):
        with obs.session() as handles:
            handles.metrics.counter("x_total").inc()
            obs.reset()
            assert obs.enabled()
            assert len(handles.metrics) == 0


class TestEngineInstrumentation:
    def test_tick_metrics_collected(self):
        with obs.session() as handles:
            engine = ClusterEngine()
            engine.deploy(spark_profile("scan"), MemoryMode.REMOTE)
            engine.run_for(10.0)
            names = {f["name"] for f in handles.metrics.snapshot()}
            assert {
                "engine_ticks_total",
                "engine_running_apps",
                "engine_link_utilization",
                "engine_tick_seconds",
                "link_resolves_total",
                "link_latency_cycles",
            } <= names

    def test_outputs_identical_with_and_without_obs(self):
        # The acceptance bar: enabling observability must not perturb
        # simulation results (no RNG draws, no behavioural branches).
        config = ScenarioConfig(duration_s=200.0, seed=11)
        baseline = run_scenario(config)
        with obs.session():
            observed = run_scenario(config)
        assert np.array_equal(baseline.metrics, observed.metrics)
        assert [r.runtime_s for r in baseline.records] == [
            r.runtime_s for r in observed.records
        ]


class TestDump:
    def test_dump_is_atomic_under_write_failure(self, tmp_path, monkeypatch):
        """An injected os.replace failure must leave the previous dump
        intact and no temporary files behind."""
        out = tmp_path / "out"
        with obs.session():
            run_scenario(ScenarioConfig(duration_s=60.0, seed=4))
            obs.dump(out)
            before = (out / "metrics.json").read_text()

            def boom(src, dst):
                raise OSError("disk full")

            monkeypatch.setattr("repro.obs.fsio.os.replace", boom)
            with pytest.raises(OSError, match="disk full"):
                obs.dump(out)
        assert (out / "metrics.json").read_text() == before
        json.loads(before)  # still a complete, parseable artifact
        assert not list(out.glob("*.tmp"))

    def test_dump_writes_all_artifacts(self, tmp_path):
        with obs.session():
            run_scenario(ScenarioConfig(duration_s=120.0, seed=4))
            paths = obs.dump(tmp_path / "out")
        assert set(paths) == set(obs.ARTIFACT_NAMES)
        metrics = json.loads((tmp_path / "out" / "metrics.json").read_text())
        assert metrics["metrics"]  # non-empty
        trace = json.loads((tmp_path / "out" / "trace.json").read_text())
        assert any(e["ph"] == "X" for e in trace["traceEvents"])
        prom = (tmp_path / "out" / "metrics.prom").read_text()
        assert "# TYPE engine_ticks_total counter" in prom
