"""``repro obs watch`` — terminal dashboard over a live JSONL stream.

Tails the ``stream.jsonl`` written by :class:`LiveSession` and renders a
refreshing plain-text dashboard: tick rate, link saturation regime,
per-policy decision mix, drift scores, SLO burn and profiler hot spots.
Works on a finished stream too (post-mortem), and in ``--once`` mode
renders a single frame and exits — the non-interactive path CI uses.

The reader is deliberately forgiving: a run killed mid-flush can leave a
torn final line, which is skipped (and counted) rather than fatal, so
``watch`` can follow a stream that is still being written.  A stream
file that vanishes *mid-watch* (log rotation, a fresh ``--obs-out`` run
replacing the directory) is likewise survivable: the watcher waits for
it to reappear with bounded exponential backoff, printing a reconnect
notice, and only gives up after the attempt budget is exhausted.
"""

from __future__ import annotations

import json
import sys
import time
from collections import defaultdict
from pathlib import Path

from repro.analysis.reporting import format_kv, format_table

__all__ = ["read_stream", "render_frame", "watch"]

#: Ticks used for the instantaneous tick-rate estimate.
_RATE_WINDOW = 50

#: Reconnect budget when the stream file vanishes mid-watch.
_RECONNECT_ATTEMPTS = 5
_RECONNECT_MAX_DELAY_S = 10.0


def read_stream(path: str | Path) -> tuple[list[dict], int]:
    """Parse a JSONL stream; returns ``(records, skipped_lines)``.

    Lines that fail to parse (a torn tail from a killed run) are
    skipped, never fatal.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no stream at {path}")
    records, skipped = [], 0
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                skipped += 1
    return records, skipped


def _tick_rate(ticks: list[dict]) -> float:
    """Simulated ticks per wall-second over the trailing rate window."""
    recent = ticks[-_RATE_WINDOW:]
    if len(recent) < 2:
        return float("nan")
    dw = recent[-1].get("wall", 0.0) - recent[0].get("wall", 0.0)
    dn = recent[-1].get("n", 0) - recent[0].get("n", 0)
    return dn / dw if dw > 0 else float("nan")


def render_frame(records: list[dict], skipped: int = 0) -> str:
    """One dashboard frame from the records parsed so far."""
    ticks = [r for r in records if r.get("t") == "tick"]
    events = [r for r in records if r.get("t") == "event"]
    profiles = [r for r in records if r.get("t") == "profile"]
    ended = any(r.get("t") == "end" for r in records)
    if not ticks:
        return "live stream: no tick records yet"
    last = ticks[-1]

    sections = []
    header = {
        "status": "finished" if ended else "running",
        "ticks": last.get("n", len(ticks)),
        "session clock s": f"{last.get('clock', 0.0):.0f}",
        "engine / sim s": f"#{last.get('engine', 0)} @ {last.get('sim', 0.0):.0f}",
        "tick rate /s": f"{_tick_rate(ticks):.0f}",
        "running apps": last.get("running", 0),
        "link util": f"{last.get('link_util', 0.0):.3f}",
    }
    if skipped:
        header["torn lines skipped"] = skipped
    sections.append(format_kv(header, title="Live observability"))

    regimes: dict[str, int] = defaultdict(int)
    decisions: dict[str, dict[str, int]] = defaultdict(lambda: defaultdict(int))
    for tick in ticks:
        for regime, count in tick.get("regimes", {}).items():
            regimes[regime] += count
        for policy, modes in tick.get("decisions", {}).items():
            for mode, count in modes.items():
                decisions[policy][mode] += count
    if regimes:
        total = sum(regimes.values())
        sections.append(
            format_table(
                ["regime", "resolves", "share"],
                [
                    (name, count, f"{count / total * 100:.1f}%")
                    for name, count in sorted(regimes.items())
                ],
                title="Link saturation regime",
            )
        )
    if decisions:
        sections.append(
            format_table(
                ["policy", "local", "remote", "total"],
                [
                    (
                        policy,
                        modes.get("local", 0),
                        modes.get("remote", 0),
                        sum(modes.values()),
                    )
                    for policy, modes in sorted(decisions.items())
                ],
                title="Decision mix",
            )
        )

    drift = last.get("drift") or _last_value(ticks, "drift")
    if drift:
        sections.append(
            format_table(
                ["stream", "score", "ewma |rel err|", "joins", "alarms"],
                [
                    (
                        stream,
                        f"{state.get('score', 0.0):.3f}",
                        f"{state.get('ewma', 0.0):.3f}",
                        state.get("n", 0),
                        state.get("alarms", 0),
                    )
                    for stream, state in sorted(drift.items())
                ],
                title="Predictor drift",
            )
        )

    slo = last.get("slo") or _last_value(ticks, "slo")
    if slo:
        windows = sorted(
            {w for state in slo.values() for w in state.get("burn", {})},
            key=float,
        )
        rows = []
        for app, state in sorted(slo.items()):
            rows.append(
                (
                    app,
                    *(
                        f"{state.get('burn', {}).get(w, 0.0):.2f}"
                        for w in windows
                    ),
                    state.get("violations", 0),
                    state.get("total", 0),
                    "ALERT" if state.get("alerting") else "-",
                )
            )
        sections.append(
            format_table(
                ["app", *(f"burn {w}s" for w in windows),
                 "violations", "total", "state"],
                rows,
                title="SLO burn",
            )
        )

    safety = [e for e in events if e.get("kind") in ("safety_veto",
                                                     "safety_clear")]
    if safety:
        state: dict[str, dict] = {}
        for event in safety:
            constraint = event.get("constraint", "?")
            entry = state.setdefault(
                constraint, {"vetoes": 0, "clock": 0.0, "state": "clear"}
            )
            entry["clock"] = event.get("clock", 0.0)
            if event.get("kind") == "safety_veto":
                entry["vetoes"] += 1
                entry["state"] = "TRIPPED"
            else:
                entry["state"] = "clear"
        sections.append(
            format_table(
                ["constraint", "vetoes", "last clock s", "state"],
                [
                    (name, entry["vetoes"], f"{entry['clock']:.0f}",
                     entry["state"])
                    for name, entry in sorted(state.items())
                ],
                title="Safety envelope",
            )
        )

    if events:
        rows = [
            (
                event.get("kind", "?"),
                f"{event.get('clock', 0.0):.0f}",
                event.get("stream") or event.get("app") or "-",
                f"{event.get('score', event.get('violations', 0)):.2f}"
                if isinstance(
                    event.get("score", event.get("violations", 0)), float
                )
                else str(event.get("score", event.get("violations", 0))),
            )
            for event in events[-8:]
        ]
        sections.append(
            format_table(
                ["event", "clock s", "subject", "score"],
                rows,
                title="Recent events",
            )
        )

    if profiles:
        top = profiles[-1].get("top", [])
        if top:
            sections.append(
                format_table(
                    ["function", "samples", "share"],
                    [
                        (
                            entry["fn"],
                            entry["n"],
                            f"{entry.get('share', 0.0) * 100:.1f}%",
                        )
                        for entry in top[:8]
                    ],
                    title=(
                        f"Hot functions "
                        f"({profiles[-1].get('samples', 0)} samples)"
                    ),
                )
            )

    return "\n\n".join(sections)


def _last_value(ticks: list[dict], key: str):
    for tick in reversed(ticks):
        if tick.get(key):
            return tick[key]
    return None


def _await_stream(path: Path, interval: float, out, sleep) -> bool:
    """Bounded-backoff wait for a vanished stream file to reappear."""
    delay = max(interval, 0.1)
    for attempt in range(1, _RECONNECT_ATTEMPTS + 1):
        print(
            f"watch: stream {path} vanished (rotated?); "
            f"retry {attempt}/{_RECONNECT_ATTEMPTS} in {delay:.1f}s",
            file=out, flush=True,
        )
        sleep(delay)
        if path.exists():
            print(f"watch: stream {path} is back; reconnecting",
                  file=out, flush=True)
            return True
        delay = min(delay * 2, _RECONNECT_MAX_DELAY_S)
    return False


def _end_reason(records: list[dict]) -> str:
    """Reason annotated on the last ``end`` record, if any."""
    for record in reversed(records):
        if record.get("t") == "end":
            return record.get("reason") or "run completed"
    return "run completed"


def watch(
    path: str | Path,
    interval: float = 1.0,
    once: bool = False,
    max_frames: int | None = None,
    out=None,
    sleep=time.sleep,
    fleet: bool = False,
    exit_on_end: bool | None = None,
) -> int:
    """Render the dashboard; refresh until the stream ends.

    ``once`` renders a single frame without clearing the screen (the CI
    mode); otherwise the terminal is redrawn every ``interval`` seconds
    until an ``end`` record appears (or ``max_frames`` is reached).
    When an ``end`` record arrives the watcher says *why* the stream
    ended (daemon drains annotate the record with a reason) instead of
    exiting wordlessly.  ``exit_on_end=False`` keeps following past the
    marker — a warm-restarted daemon appends to the same stream, so the
    watcher should be able to ride across the restart.  ``fleet``
    switches to the per-node rack dashboard
    (:func:`repro.obs.fleet.render_fleet_frame`) fed by the same
    stream.  A stream file deleted mid-watch triggers the reconnect
    loop instead of a crash; in ``once`` mode a missing stream fails
    fast with exit code 2.  ``sleep`` is injectable so tests can drive
    the reconnect path without waiting out the backoff.
    """
    out = out if out is not None else sys.stdout
    path = Path(path)
    frames = 0
    announced_end = False
    if fleet:
        from repro.obs.fleet.report import render_fleet_frame
        renderer = render_fleet_frame
    else:
        renderer = render_frame
    while True:
        try:
            records, skipped = read_stream(path)
        except FileNotFoundError:
            if once or not _await_stream(path, interval, out, sleep):
                print(f"watch: no stream at {path}", file=out, flush=True)
                return 2
            continue
        frame = renderer(records, skipped)
        if once:
            print(frame, file=out)
            return 0
        print("\x1b[2J\x1b[H" + frame, file=out, flush=True)
        frames += 1
        if any(r.get("t") == "end" for r in records):
            if exit_on_end is None or exit_on_end:
                print(f"watch: stream ended: {_end_reason(records)}",
                      file=out, flush=True)
                return 0
            if not announced_end:
                announced_end = True
                print(
                    f"watch: stream ended: {_end_reason(records)} "
                    "(following for a restart; interrupt to stop)",
                    file=out, flush=True,
                )
        if max_frames is not None and frames >= max_frames:
            return 0
        sleep(interval)
