"""Bounded metric store for online monitoring.

The real Watcher runs continuously; holding an entire day of samples is
unnecessary because the Predictor only ever consumes the trailing
history window (r = 120 s).  :class:`MetricStore` keeps a fixed-size
ring of the latest samples with O(1) appends and fixed-shape window
reads.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.counters import METRIC_NAMES, PerfCounters

__all__ = ["MetricStore"]


class MetricStore:
    """Ring buffer of perf-counter samples."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._data = np.zeros((capacity, len(METRIC_NAMES)))
        self._times = np.zeros(capacity)
        self._size = 0
        self._head = 0  # next write position

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        return self._size == self.capacity

    def push(self, time: float, counters: PerfCounters) -> None:
        if self._size > 0 and time <= self.latest_time:
            raise ValueError("samples must arrive in increasing time order")
        self._data[self._head] = counters.as_array()
        self._times[self._head] = time
        self._head = (self._head + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    @property
    def latest_time(self) -> float:
        if self._size == 0:
            raise ValueError("store is empty")
        return float(self._times[(self._head - 1) % self.capacity])

    def last(self, n: int) -> np.ndarray:
        """The latest ``n`` samples as an ``(n, n_metrics)`` matrix.

        Zero-pads at the front when fewer than ``n`` samples exist, so
        the Predictor always receives fixed-shape windows (matching the
        zero-padded warm-up behaviour of trace windows).
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if n > self.capacity:
            raise ValueError(f"window {n} exceeds store capacity {self.capacity}")
        take = min(n, self._size)
        rows = np.zeros((n, self._data.shape[1]))
        if take:
            # The window is at most two contiguous slices of the ring:
            # [start, min(start+take, capacity)) and the wrapped prefix.
            start = (self._head - take) % self.capacity
            end = start + take
            if end <= self.capacity:
                rows[n - take:] = self._data[start:end]
            else:
                split = self.capacity - start
                rows[n - take : n - take + split] = self._data[start:]
                rows[n - take + split :] = self._data[: end - self.capacity]
        return rows

    def window_mean(self, n: int) -> np.ndarray:
        """Mean of the latest ``n`` samples per metric (no padding)."""
        if self._size == 0:
            raise ValueError("store is empty")
        take = min(n, self._size)
        return self.last(take).mean(axis=0)
