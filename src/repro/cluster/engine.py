"""Discrete-time cluster engine.

Advances the testbed in fixed ticks (1 s by default, matching the
Watcher's sampling period).  Each tick:

1. aggregate the demand of all running deployments,
2. resolve shared-resource contention on the testbed,
3. advance every deployment under the resolved pressure,
4. sample the perf counters into the trace.

Contention is resolved from the demands at the *start* of the tick —
the standard explicit-update scheme for analytic interference models.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro import obs
from repro.cluster.deployment import Deployment
from repro.cluster.trace import Trace
from repro.hardware.counters import METRIC_NAMES, PerfCounters
from repro.hardware.testbed import SystemPressure, Testbed
from repro.obs.perf import accounting as perf_accounting
from repro.workloads.base import MemoryMode, WorkloadProfile

__all__ = [
    "ClusterEngine",
    "CapacityError",
    "RemoteUnavailableError",
    "NodeDownError",
]


class CapacityError(RuntimeError):
    """A deployment does not fit in the requested memory pool."""


class RemoteUnavailableError(CapacityError):
    """The remote pool is unreachable (link outage); retry or re-route."""


class NodeDownError(CapacityError):
    """The node is crashed (fail-stop); place elsewhere or park."""


#: Retry-queue backoff parameters: first retry after one tick, doubling
#: up to the cap, dropped after the attempt limit.
_RETRY_BACKOFF_CAP_S = 64.0
_RETRY_MAX_ATTEMPTS = 8
#: Seeded jitter spread on the doubled backoff: each failed attempt
#: waits ``backoff * (1 + U[0, _RETRY_JITTER_FRAC))`` so deployments
#: parked by the same outage decorrelate instead of thundering back on
#: one tick.  Worst case keeps the 8-attempt drop under ~287 simulated
#: seconds (the un-jittered base is ~191 s).
_RETRY_JITTER_FRAC = 0.5


class ClusterEngine:
    """Single-node disaggregated cluster simulator."""

    def __init__(
        self,
        testbed: Testbed | None = None,
        dt: float = 1.0,
    ) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.testbed = testbed if testbed is not None else Testbed()
        self.dt = dt
        self.now = 0.0
        self.deployments: list[Deployment] = []
        self.trace = Trace(dt=dt)
        self._next_app_id = 0
        #: Hook invoked with each finished deployment's record.
        self.on_finish: Callable | None = None
        self._tick_hooks: list[Callable[["ClusterEngine"], None]] = []
        #: While True (a fault injector flags a link outage) new remote
        #: placements raise :class:`RemoteUnavailableError` instead of
        #: being placed onto an unreachable pool.
        self.remote_blocked = False
        #: Per-tick ThymesisFlow capacity scale in (0, 1], written by the
        #: fleet's rack-pool arbiter; 1.0 (the default) is bit-inert.
        self.pool_capacity_factor = 1.0
        #: Optional rack-pool admission check consulted by :meth:`fits`
        #: for remote placements — the fleet wires this to the shared
        #: :class:`repro.hardware.pool.RemotePool` capacity accounting.
        self.remote_fits_hook: Callable[[WorkloadProfile], bool] | None = None
        #: Fleet node label (``"n3"``), set by :class:`ClusterFleet`;
        #: ``None`` outside a fleet.  Metric exports stamp their ``node``
        #: label with this, defaulting to ``"n0"`` when unset, so every
        #: engine-level family has one uniform label shape whether the
        #: engine runs alone or as one lane of a rack.
        self.node_label: str | None = None
        #: Journey recorder (:class:`repro.obs.fleet.NodeJourney`) wired
        #: by an obs-enabled fleet; ``None`` keeps every lifecycle-hop
        #: site a single ``is not None`` test.
        self.journey = None
        #: Deployments waiting out a remote outage: dicts with profile,
        #: duration_s, next_attempt_s, backoff_s and attempts, retried
        #: with exponential backoff at the start of each tick.
        self._retry_queue: list[dict] = []
        #: Seeded jitter source for retry backoff (checkpointed so a
        #: resumed run replays the same retry schedule bit-for-bit).
        self._retry_rng = np.random.default_rng(
            [int(self.testbed.config.seed), 0x5E77]
        )
        #: Parked deployments dropped after the retry limit — the
        #: conservation ledger's ``dropped`` term (see ClusterFleet
        #: ``accounting``).
        self.dropped_retries = 0
        #: Fail-stop flag driven by the fleet health manager: a dead
        #: node accepts no placements and its ticks only advance the
        #: clock, recording all-NaN telemetry gaps (it stopped
        #: reporting).  False (the default) is bit-inert.
        self.dead = False
        # Stream this engine when a live observability session is active
        # (obs.live_session() is None on the disabled path — one read, no hooks).
        live = obs.live_session()
        if live is not None:
            live.attach(self)

    # -- tick hooks ---------------------------------------------------------
    def add_tick_hook(self, hook: Callable[["ClusterEngine"], None]) -> None:
        """Register ``hook(engine)`` to run at the end of every tick.

        Registration is idempotent (the same hook is never invoked twice
        per tick), so callers on per-arrival paths — e.g. a Predictor
        keeping its per-tick Ŝ memo fresh — can attach unconditionally.
        """
        if hook not in self._tick_hooks:
            self._tick_hooks.append(hook)

    def remove_tick_hook(self, hook: Callable[["ClusterEngine"], None]) -> None:
        """Unregister a tick hook; safe to call when not registered."""
        if hook in self._tick_hooks:
            self._tick_hooks.remove(hook)

    # -- deployment -------------------------------------------------------
    @property
    def running(self) -> list[Deployment]:
        return [d for d in self.deployments if d.running]

    def used_capacity_gb(self, mode: MemoryMode) -> float:
        """Memory currently committed in the given pool."""
        if mode is MemoryMode.LOCAL:
            return sum(d.profile.footprint_gb for d in self.running
                       if d.mode is MemoryMode.LOCAL)
        return sum(d.profile.footprint_gb for d in self.running
                   if d.mode is MemoryMode.REMOTE)

    def fits(self, profile: WorkloadProfile, mode: MemoryMode) -> bool:
        if self.dead:
            return False
        node = self.testbed.config.node
        capacity = node.dram_gb if mode is MemoryMode.LOCAL else node.remote_gb
        if self.used_capacity_gb(mode) + profile.footprint_gb > capacity:
            return False
        if mode is MemoryMode.REMOTE and self.remote_fits_hook is not None:
            return bool(self.remote_fits_hook(profile))
        return True

    def deploy(
        self,
        profile: WorkloadProfile,
        mode: MemoryMode,
        duration_s: float | None = None,
        decided_s: float | None = None,
    ) -> Deployment:
        """Place a workload; raises :class:`CapacityError` if it cannot fit.

        While the remote pool is blocked by a link outage, remote
        placements raise :class:`RemoteUnavailableError` (a
        :class:`CapacityError`) — callers either fall back to local or
        park the workload via :meth:`queue_remote`.
        """
        if self.dead:
            raise NodeDownError(
                f"{profile.name}: node {self.node_label or 'n0'} is down"
            )
        if mode is MemoryMode.REMOTE and self.remote_blocked:
            raise RemoteUnavailableError(
                f"{profile.name}: remote pool unavailable (link outage)"
            )
        if not self.fits(profile, mode):
            raise CapacityError(
                f"{profile.name} ({profile.footprint_gb} GB) does not fit in "
                f"{mode.value} memory"
            )
        deployment = Deployment(
            app_id=self._next_app_id,
            profile=profile,
            mode=mode,
            arrival_time=self.now,
            duration_s=duration_s,
            decided_s=decided_s,
        )
        self._next_app_id += 1
        self.deployments.append(deployment)
        if self.journey is not None:
            self.journey.hop(
                profile.name,
                decided_s if decided_s is not None else self.now,
                "admission",
                self.now,
                mode=mode.value,
            )
        return deployment

    # -- outage retry queue --------------------------------------------------
    def queue_remote(
        self,
        profile: WorkloadProfile,
        duration_s: float | None = None,
        decided_s: float | None = None,
    ) -> None:
        """Park a remote deployment until the link outage clears.

        The entry is retried at the start of each tick once its backoff
        expires; backoff doubles per failed attempt (capped) and the
        entry is dropped after the attempt limit.  ``decided_s``
        preserves the original decision time across the park (it keys
        the audit-log join and the journey journal); it defaults to the
        park time.
        """
        decided = decided_s if decided_s is not None else self.now
        self._retry_queue.append(
            {
                "profile": profile,
                "duration_s": duration_s,
                "decided_s": decided,
                "next_attempt_s": self.now + self.dt,
                "backoff_s": self.dt,
                "attempts": 0,
            }
        )
        if obs.enabled():
            obs.metrics().counter(
                "engine_remote_queued_total",
                "Remote deployments parked during link outages",
                labels=("node",),
            ).labels(node=self.node_label or "n0").inc()
        if self.journey is not None:
            self.journey.hop(profile.name, decided, "parked", self.now)

    @property
    def queued_remote(self) -> int:
        """Deployments currently parked in the outage retry queue."""
        return len(self._retry_queue)

    def _drain_retry_queue(self) -> None:
        keep: list[dict] = []
        for entry in self._retry_queue:
            if entry["next_attempt_s"] > self.now + 1e-9:
                keep.append(entry)
                continue
            try:
                self.deploy(
                    entry["profile"], MemoryMode.REMOTE,
                    duration_s=entry["duration_s"],
                    decided_s=entry.get("decided_s"),
                )
            except CapacityError:
                entry["attempts"] += 1
                decided = entry.get("decided_s")
                decided = decided if decided is not None else self.now
                if entry["attempts"] >= _RETRY_MAX_ATTEMPTS:
                    self.dropped_retries += 1
                    if obs.enabled():
                        obs.metrics().counter(
                            "engine_remote_retries_dropped_total",
                            "Parked deployments dropped after the retry limit",
                            labels=("node",),
                        ).labels(node=self.node_label or "n0").inc()
                    if self.journey is not None:
                        self.journey.hop(
                            entry["profile"].name, decided, "dropped",
                            self.now, attempts=entry["attempts"],
                        )
                    continue
                entry["backoff_s"] = min(
                    entry["backoff_s"] * 2.0, _RETRY_BACKOFF_CAP_S
                )
                jitter = 1.0 + _RETRY_JITTER_FRAC * float(self._retry_rng.random())
                entry["next_attempt_s"] = self.now + entry["backoff_s"] * jitter
                if self.journey is not None:
                    self.journey.hop(
                        entry["profile"].name, decided, "retry", self.now,
                        attempt=entry["attempts"],
                        backoff_s=entry["backoff_s"],
                    )
                keep.append(entry)
            else:
                if obs.enabled():
                    obs.metrics().counter(
                        "engine_remote_retries_succeeded_total",
                        "Parked deployments placed after an outage cleared",
                        labels=("node",),
                    ).labels(node=self.node_label or "n0").inc()
        self._retry_queue = keep

    # -- simulation ---------------------------------------------------------
    def current_pressure(self) -> SystemPressure:
        """Pressure the testbed is under right now."""
        demands = [d.demand() for d in self.running]
        return self.testbed.resolve(
            demands, link_capacity_factor=self.pool_capacity_factor
        )

    def pressure_with(
        self, profile: WorkloadProfile, mode: MemoryMode
    ) -> SystemPressure:
        """Hypothetical pressure if ``profile`` were added in ``mode``.

        Used by the Orchestrator and by the isolated-performance
        estimators of the characterization drivers.
        """
        demands = [d.demand() for d in self.running]
        demands.append(profile.demand(mode))
        return self.testbed.resolve(
            demands, link_capacity_factor=self.pool_capacity_factor
        )

    def tick(self) -> SystemPressure:
        """Advance the simulation by one step.

        When phase accounting is enabled
        (:func:`repro.obs.perf.enable_phases`) the tick's cost is
        attributed to named sub-phases as *contiguous laps* — each lap
        starts where the previous ended, so the ``engine.*`` leaf totals
        sum exactly to the recorded ``engine.tick`` total.  Disabled
        (the default), the whole mechanism is one accessor call and a
        few ``is not None`` tests: no clock reads, no allocations, and
        bit-identical simulation output.
        """
        if self.dead:
            return self._tick_dead()
        start = obs.wall_time()
        acct = perf_accounting()
        t0 = tick_start = acct.clock() if acct is not None else 0.0
        if self._retry_queue:
            # Retried placements contribute demand from this tick on.
            self._drain_retry_queue()
        if acct is not None:
            t0 = acct.lap("engine.retry_queue", t0)
        pressure = self.current_pressure()
        if acct is not None:
            t0 = acct.lap("engine.arbitration", t0)
        self.now += self.dt
        finished = 0
        for deployment in self.running:
            deployment.advance(self.now, self.dt, pressure)
            if not deployment.running:
                finished += 1
                record = deployment.record()
                self.trace.add_record(record)
                if self.journey is not None:
                    decided = record.decided_s
                    self.journey.hop(
                        record.name,
                        decided if decided is not None else record.arrival_time,
                        "finished",
                        self.now,
                        mode=record.mode.value,
                    )
                if self.on_finish is not None:
                    self.on_finish(record)
        if acct is not None:
            t0 = acct.lap("engine.advance", t0)
        self.trace.append(
            self.now, self.testbed.sample_counters(pressure), len(self.running)
        )
        if acct is not None:
            t0 = acct.lap("engine.telemetry", t0)
        for hook in tuple(self._tick_hooks):
            hook(self)
        if acct is not None:
            t0 = acct.lap("engine.tick_hooks", t0)
        if obs.enabled():
            # Every engine family carries the node label (default "n0")
            # so fleet and single-node runs share one family shape and
            # the fleet registry aggregates per-node series natively.
            metrics = obs.metrics()
            node = self.node_label or "n0"
            metrics.counter(
                "engine_ticks_total", "Simulation ticks executed",
                labels=("node",),
            ).labels(node=node).inc()
            if finished:
                metrics.counter(
                    "engine_deployments_finished_total",
                    "Deployments that completed",
                    labels=("node",),
                ).labels(node=node).inc(finished)
            metrics.gauge(
                "engine_running_apps", "Deployments running after the tick",
                labels=("node",),
            ).labels(node=node).set(len(self.running))
            metrics.gauge(
                "engine_link_utilization",
                "ThymesisFlow offered/capacity ratio at the tick",
                labels=("node",),
            ).labels(node=node).set(pressure.link.utilization)
            metrics.gauge(
                "engine_sim_time_seconds", "Current simulation clock",
                labels=("node",),
            ).labels(node=node).set(self.now)
            metrics.histogram(
                "engine_tick_seconds",
                "Wall-clock duration of one engine tick",
                labels=("node",),
            ).labels(node=node).observe(obs.wall_time() - start)
        if acct is not None:
            t0 = acct.lap("engine.obs_export", t0)
            total = t0 - tick_start
            acct.add("engine.tick", total)
            if self.node_label is not None:
                # Per-node envelope so a fleet profile attributes tick
                # cost to individual lanes, not one collapsed phase.
                acct.add(f"engine.tick[{self.node_label}]", total)
        return pressure

    def _tick_dead(self) -> SystemPressure:
        """One tick of a fail-stopped node.

        Only the clock advances (the fleet's lockstep drift guard
        requires it).  Telemetry records an all-NaN gap *without*
        consuming the counter RNG — a crashed Watcher reports nothing —
        and no deployments advance: in-flight work is frozen until the
        health manager drains it into the failover queue.
        """
        self.now += self.dt
        self.trace.append(
            self.now,
            PerfCounters.from_array(np.full(len(METRIC_NAMES), np.nan)),
            0,
        )
        for hook in tuple(self._tick_hooks):
            hook(self)
        if obs.enabled():
            metrics = obs.metrics()
            node = self.node_label or "n0"
            metrics.counter(
                "engine_ticks_total", "Simulation ticks executed",
                labels=("node",),
            ).labels(node=node).inc()
            metrics.gauge(
                "engine_running_apps", "Deployments running after the tick",
                labels=("node",),
            ).labels(node=node).set(0.0)
            metrics.gauge(
                "engine_link_utilization",
                "ThymesisFlow offered/capacity ratio at the tick",
                labels=("node",),
            ).labels(node=node).set(0.0)
            metrics.gauge(
                "engine_sim_time_seconds", "Current simulation clock",
                labels=("node",),
            ).labels(node=node).set(self.now)
        return self.testbed.resolve(
            [], link_capacity_factor=self.pool_capacity_factor
        )

    def run_for(self, seconds: float) -> None:
        """Run the clock forward by ``seconds``."""
        if seconds < 0:
            raise ValueError("cannot run backwards")
        end = self.now + seconds
        while self.now < end - 1e-9:
            self.tick()

    def run_until_idle(self, max_seconds: float = 86400.0) -> None:
        """Run until every deployment (and the retry queue) has drained."""
        waited = 0.0
        while (self.running or self._retry_queue) and waited < max_seconds:
            self.tick()
            waited += self.dt
        if self.running or self._retry_queue:
            raise RuntimeError(
                f"{len(self.running)} deployments still running and "
                f"{len(self._retry_queue)} queued after {max_seconds} s drain"
            )

    def drain(self, max_seconds: float = 86400.0) -> bool:
        """Best-effort :meth:`run_until_idle`: advance until every
        deployment and retry-queue entry has drained or the deadline
        passes; returns whether the engine is fully idle.  Unlike
        :meth:`run_until_idle` a missed deadline is not an error — the
        serving daemon parks whatever is still in flight into its
        checkpoint instead of crashing the shutdown path.
        """
        waited = 0.0
        while (self.running or self._retry_queue) and waited < max_seconds - 1e-9:
            self.tick()
            waited += self.dt
        return not (self.running or self._retry_queue)

    # -- measurement helpers -------------------------------------------------
    def measure_isolated(
        self, profile: WorkloadProfile, mode: MemoryMode
    ) -> float:
        """Run ``profile`` alone on a fresh engine; return its performance.

        Best-effort profiles return runtime in seconds, latency-critical
        ones their p99 in ms (the paper's two performance metrics).
        """
        engine = ClusterEngine(testbed=Testbed(self.testbed.config), dt=self.dt)
        engine.deploy(profile, mode)
        engine.run_until_idle()
        return engine.trace.records[-1].performance
