"""Deployment lifecycle: one workload instance placed on the testbed."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.hardware.testbed import ResourceDemand, SystemPressure
from repro.workloads.base import MemoryMode, WorkloadKind, WorkloadProfile
from repro.workloads.loadgen import TailLatencyModel
from repro.workloads.redis import LCProfile

__all__ = ["DeploymentState", "Deployment", "DeploymentRecord"]


class DeploymentState(enum.Enum):
    RUNNING = "running"
    FINISHED = "finished"


@dataclass
class Deployment:
    """A running workload instance.

    Best-effort deployments accumulate *nominal-equivalent progress*:
    each tick contributes ``dt / slowdown`` seconds of work and the
    deployment finishes when the profile's nominal runtime has been
    earned.  Latency-critical deployments serve operations: they finish
    when the total request budget has been served, and they record the
    per-tick tail-latency samples of the load-generator model.
    Interference (iBench) deployments run for a fixed wall-clock
    duration at constant intensity.
    """

    app_id: int
    profile: WorkloadProfile
    mode: MemoryMode
    arrival_time: float
    #: Wall-clock duration override for interference workloads.
    duration_s: float | None = None
    #: Time of the placement decision when it precedes the deployment —
    #: outage-parked workloads retry later, but audit joins key on this.
    decided_s: float | None = None
    state: DeploymentState = DeploymentState.RUNNING
    finish_time: float | None = None
    progress_s: float = 0.0
    served_ops: float = 0.0
    #: Mean slowdown observed over the run (progress-weighted for BE).
    _slowdown_sum: float = 0.0
    _slowdown_ticks: int = 0
    p99_samples: list[float] = field(default_factory=list)
    p999_samples: list[float] = field(default_factory=list)
    #: Remote link bytes attributable to this deployment (Gb).
    link_traffic_gb: float = 0.0

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValueError("arrival_time cannot be negative")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ValueError("duration_s must be positive when given")
        if isinstance(self.profile, LCProfile):
            self._latency_model = TailLatencyModel(self.profile)
            self._request_budget = self.profile.ops_per_sec * self.profile.nominal_runtime_s
        else:
            self._latency_model = None
            self._request_budget = None

    # -- queries --------------------------------------------------------
    @property
    def running(self) -> bool:
        return self.state is DeploymentState.RUNNING

    @property
    def is_latency_critical(self) -> bool:
        return self.profile.kind is WorkloadKind.LATENCY_CRITICAL

    @property
    def is_interference(self) -> bool:
        return self.profile.kind is WorkloadKind.INTERFERENCE

    def demand(self) -> ResourceDemand:
        return self.profile.demand(self.mode)

    @property
    def mean_slowdown(self) -> float:
        if self._slowdown_ticks == 0:
            return 1.0
        return self._slowdown_sum / self._slowdown_ticks

    # -- simulation -----------------------------------------------------
    def advance(self, now: float, dt: float, pressure: SystemPressure) -> None:
        """Advance the deployment by one tick ending at time ``now``."""
        if not self.running:
            raise RuntimeError(f"deployment {self.app_id} already finished")
        if dt <= 0:
            raise ValueError("dt must be positive")
        slowdown = self.profile.slowdown(pressure, self.mode)
        self._slowdown_sum += slowdown
        self._slowdown_ticks += 1
        if self.mode is MemoryMode.REMOTE:
            # Fair share of the delivered link throughput.
            offered = pressure.total_demand.remote_bw_gbps
            if offered > 0:
                share = self.profile.remote_bw_gbps / offered
                # Gbps x s / 8 bits-per-byte = gigabytes moved this tick.
                self.link_traffic_gb += share * pressure.link.delivered_gbps * dt / 8.0

        if self.is_interference:
            duration = self.duration_s or self.profile.nominal_runtime_s
            if now - self.arrival_time >= duration:
                self._finish(now)
            return

        if self.is_latency_critical:
            sample = self._latency_model.sample(pressure, self.mode)
            self.p99_samples.append(sample.p99_ms)
            self.p999_samples.append(sample.p999_ms)
            self.served_ops += sample.served_ops * dt
            if self.served_ops >= self._request_budget:
                self._finish(now)
            return

        # Best-effort: earn nominal-equivalent progress.
        self.progress_s += dt / slowdown
        if self.progress_s >= self.profile.nominal_runtime_s:
            self._finish(now)

    def _finish(self, now: float) -> None:
        self.state = DeploymentState.FINISHED
        self.finish_time = now

    # -- results ----------------------------------------------------------
    def record(self) -> "DeploymentRecord":
        """Summarize a finished deployment for trace storage."""
        if self.running or self.finish_time is None:
            raise RuntimeError("cannot record an unfinished deployment")
        runtime = self.finish_time - self.arrival_time
        if self.is_latency_critical and self.p99_samples:
            # The run-wide p99 is approximated by a high quantile of the
            # per-tick tail samples: the overall latency distribution is
            # a mixture over ticks and its p99 sits in the upper region
            # of the per-tick p99s.
            p99 = float(np.percentile(self.p99_samples, 90))
            p999 = float(np.percentile(self.p999_samples, 90))
        else:
            p99 = float("nan")
            p999 = float("nan")
        return DeploymentRecord(
            app_id=self.app_id,
            name=self.profile.name,
            kind=self.profile.kind,
            mode=self.mode,
            arrival_time=self.arrival_time,
            finish_time=self.finish_time,
            runtime_s=runtime,
            p99_ms=p99,
            p999_ms=p999,
            mean_slowdown=self.mean_slowdown,
            link_traffic_gb=self.link_traffic_gb,
            decided_s=self.decided_s,
        )


@dataclass(frozen=True)
class DeploymentRecord:
    """Immutable summary of one completed deployment."""

    app_id: int
    name: str
    kind: WorkloadKind
    mode: MemoryMode
    arrival_time: float
    finish_time: float
    runtime_s: float
    p99_ms: float
    p999_ms: float
    mean_slowdown: float
    link_traffic_gb: float
    decided_s: float | None = None

    @property
    def performance(self) -> float:
        """The paper's performance metric: runtime for BE, p99 for LC."""
        if self.kind is WorkloadKind.LATENCY_CRITICAL:
            return self.p99_ms
        return self.runtime_s
