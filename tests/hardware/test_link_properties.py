"""Property tests for the ThymesisFlow two-regime link model.

Hypothesis-driven invariants over the whole (offered load, health)
space, including the degraded/outage operating points the fault
injector drives the link through:

* latency is monotone non-decreasing in utilization and stretches
  exactly linearly with ``latency_factor``;
* the regime switch sits at utilization >= 1.0 and ``saturated`` agrees
  with it;
* delivered throughput never exceeds min(offered, effective capacity)
  and back-pressure stays finite even during a full outage.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import LinkConfig, ThymesisFlowLink

offered_st = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)
capacity_st = st.floats(min_value=0.01, max_value=1.0, allow_nan=False)
stretch_st = st.floats(min_value=1.0, max_value=5.0, allow_nan=False)


class TestLatencyMonotonicity:
    @given(
        u=st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
        du=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_latency_monotone_in_utilization(self, u, du):
        link = ThymesisFlowLink()
        assert link.latency_at(u + du) >= link.latency_at(u) - 1e-9

    @given(offered=offered_st, factor=stretch_st)
    @settings(max_examples=50, deadline=None)
    def test_latency_factor_scales_linearly(self, offered, factor):
        link = ThymesisFlowLink()
        base = link.resolve(offered)
        stretched = link.resolve(offered, latency_factor=factor)
        assert stretched.latency_cycles == pytest.approx(
            base.latency_cycles * factor
        )

    @given(offered=offered_st)
    @settings(max_examples=50, deadline=None)
    def test_latency_bounded_by_regimes(self, offered):
        cfg = LinkConfig()
        state = ThymesisFlowLink(cfg).resolve(offered)
        assert cfg.base_latency_cycles <= state.latency_cycles
        assert state.latency_cycles <= cfg.saturated_latency_cycles + 1e-9


class TestRegimeSwitch:
    @given(offered=offered_st, capacity_factor=capacity_st)
    @settings(max_examples=100, deadline=None)
    def test_saturated_iff_utilization_at_least_one(
        self, offered, capacity_factor
    ):
        state = ThymesisFlowLink().resolve(
            offered, capacity_factor=capacity_factor
        )
        assert state.saturated == (state.utilization >= 1.0)

    @given(offered=st.floats(min_value=0.001, max_value=50.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_switch_sits_at_nominal_capacity_when_healthy(self, offered):
        cfg = LinkConfig()
        state = ThymesisFlowLink(cfg).resolve(offered)
        assert state.saturated == (offered >= cfg.capacity_gbps)

    @given(offered=offered_st, capacity_factor=capacity_st)
    @settings(max_examples=100, deadline=None)
    def test_backpressure_consistent_with_saturation(
        self, offered, capacity_factor
    ):
        state = ThymesisFlowLink().resolve(
            offered, capacity_factor=capacity_factor
        )
        if not state.saturated:
            assert state.backpressure == pytest.approx(1.0)
        else:
            assert state.backpressure >= 1.0 - 1e-12


class TestDeliveryEnvelope:
    @given(offered=offered_st, capacity_factor=capacity_st, factor=stretch_st)
    @settings(max_examples=100, deadline=None)
    def test_delivered_within_envelope(self, offered, capacity_factor, factor):
        cfg = LinkConfig()
        state = ThymesisFlowLink(cfg).resolve(
            offered, capacity_factor=capacity_factor, latency_factor=factor
        )
        effective = cfg.capacity_gbps * max(
            capacity_factor, cfg.outage_drain_fraction
        )
        assert state.delivered_gbps <= min(offered, effective) + 1e-12
        assert np.isfinite(state.backpressure)

    @given(offered=offered_st)
    @settings(max_examples=50, deadline=None)
    def test_outage_delivers_only_drain_trickle(self, offered):
        cfg = LinkConfig()
        state = ThymesisFlowLink(cfg).resolve(offered, capacity_factor=0.0)
        trickle = cfg.capacity_gbps * cfg.outage_drain_fraction
        assert state.delivered_gbps <= trickle + 1e-12
        assert np.isfinite(state.backpressure)
        assert state.backpressure >= 1.0

    def test_bad_factors_rejected(self):
        link = ThymesisFlowLink()
        with pytest.raises(ValueError):
            link.resolve(1.0, capacity_factor=1.5)
        with pytest.raises(ValueError):
            link.resolve(1.0, capacity_factor=-0.1)
        with pytest.raises(ValueError):
            link.resolve(1.0, latency_factor=0.9)

    def test_healthy_call_unchanged_by_default_factors(self):
        # Inertness at the resolve layer: explicit unity factors match
        # the implicit healthy path bit for bit.
        link = ThymesisFlowLink()
        assert link.resolve(1.7) == link.resolve(
            1.7, capacity_factor=1.0, latency_factor=1.0
        )
