"""Batch normalization.

Adrias' non-linear blocks combine "fully-connected layers with ReLU
activation functions, batch normalization and dropout layers" (§V-B2);
this module provides the batch-norm piece with running statistics for
inference-time use.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.nn.parameter import Parameter

__all__ = ["BatchNorm1d", "LayerNorm"]


class BatchNorm1d(Module):
    """Normalize each feature over the batch axis.

    Accepts ``(N, F)`` inputs.  In training mode, statistics come from
    the batch and running estimates are updated with ``momentum``; in
    eval mode the running estimates are used, so single-sample online
    predictions (the Orchestrator path) are deterministic.
    """

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        if not 0.0 < momentum <= 1.0:
            raise ValueError("momentum must be in (0, 1]")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features), "gamma")
        self.beta = Parameter(np.zeros(num_features), "beta")
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm1d expected (N, {self.num_features}), got {x.shape}"
            )
        if self.training:
            if x.shape[0] < 2:
                # A single sample has zero variance; fall back to running
                # stats so online fine-tuning does not divide by ~eps.
                mean, var = self.running_mean, self.running_var
                x_hat = (x - mean) / np.sqrt(var + self.eps)
                self._cache = (x_hat, np.sqrt(var + self.eps), False)
            else:
                mean = x.mean(axis=0)
                var = x.var(axis=0)
                std = np.sqrt(var + self.eps)
                x_hat = (x - mean) / std
                self._cache = (x_hat, std, True)
                self.running_mean[...] = (
                    (1 - self.momentum) * self.running_mean + self.momentum * mean
                )
                # Unbiased variance for the running estimate, as in PyTorch.
                n = x.shape[0]
                self.running_var[...] = (
                    (1 - self.momentum) * self.running_var
                    + self.momentum * var * n / (n - 1)
                )
        else:
            std = np.sqrt(self.running_var + self.eps)
            x_hat = (x - self.running_mean) / std
            self._cache = (x_hat, std, False)
        return self.gamma.value * x_hat + self.beta.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, std, batch_stats = self._cache
        n = grad.shape[0]
        self.gamma.accumulate((grad * x_hat).sum(axis=0))
        self.beta.accumulate(grad.sum(axis=0))
        dx_hat = grad * self.gamma.value
        if not batch_stats:
            # Statistics were constants w.r.t. the input.
            return dx_hat / std
        return (
            dx_hat - dx_hat.mean(axis=0) - x_hat * (dx_hat * x_hat).mean(axis=0)
        ) / std


class LayerNorm(Module):
    """Normalize over the last axis; batch-size independent alternative."""

    def __init__(self, num_features: int, eps: float = 1e-5) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        self.num_features = num_features
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features), "gamma")
        self.beta = Parameter(np.zeros(num_features), "beta")
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.num_features:
            raise ValueError(
                f"LayerNorm expected last axis {self.num_features}, got {x.shape[-1]}"
            )
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        std = np.sqrt(var + self.eps)
        x_hat = (x - mean) / std
        self._cache = (x_hat, std)
        return self.gamma.value * x_hat + self.beta.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, std = self._cache
        axes = tuple(range(grad.ndim - 1))
        self.gamma.accumulate((grad * x_hat).sum(axis=axes))
        self.beta.accumulate(grad.sum(axis=axes))
        dx_hat = grad * self.gamma.value
        return (
            dx_hat
            - dx_hat.mean(axis=-1, keepdims=True)
            - x_hat * (dx_hat * x_hat).mean(axis=-1, keepdims=True)
        ) / std
