"""Tests for the ``python -m repro`` command-line interface."""


from repro.__main__ import EXPERIMENTS, main


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_experiment_ids_cover_the_paper(self):
        expected = {
            "fig02", "fig03", "fig04", "fig05", "fig06", "fig08",
            "fig09", "fig10", "table1", "fig13", "fig14", "fig15",
            "fig16", "fig17", "traffic",
        }
        assert expected <= set(EXPERIMENTS)


class TestRun:
    def test_run_training_free_experiment(self, capsys):
        assert main(["run", "fig02"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out
        assert "2.50" in out  # the throughput cap

    def test_unknown_experiment_fails(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_scale_flag_sets_environment(self, capsys, monkeypatch):
        monkeypatch.delenv("ADRIAS_SCALE", raising=False)
        assert main(["run", "fig03", "--scale", "quick"]) == 0
        import os

        assert os.environ["ADRIAS_SCALE"] == "quick"

    def test_faults_flag_arms_the_plan_for_the_run(self, tmp_path, capsys):
        from repro.faults.plan import FaultPlan
        from repro.faults.runtime import current_plan

        plan_path = tmp_path / "plan.json"
        FaultPlan.sample(seed=1).to_file(plan_path)
        # fig02 never runs a scenario engine, so the armed plan is inert
        # here; the test pins the arming/cleanup plumbing itself.
        assert main(["run", "fig02", "--faults", str(plan_path)]) == 0
        out = capsys.readouterr().out
        assert "fault injection" in out
        assert current_plan() is None  # deactivated after the run

    def test_faults_flag_rejects_missing_plan(self, tmp_path, capsys):
        code = main(["run", "fig02", "--faults", str(tmp_path / "no.json")])
        assert code == 2
        assert "--faults" in capsys.readouterr().err

    def test_faults_flag_rejects_invalid_plan(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 1, "faults": [{"kind": "bogus"}]}')
        assert main(["run", "fig02", "--faults", str(bad)]) == 2
        assert "--faults" in capsys.readouterr().err


class TestFaultsSubcommand:
    def test_sample_prints_valid_plan(self, capsys):
        from repro.faults.plan import FaultPlan

        assert main(["faults", "sample", "--seed", "4"]) == 0
        plan = FaultPlan.from_json(capsys.readouterr().out)
        assert plan.seed == 4
        assert len(plan) == 6

    def test_sample_writes_file(self, tmp_path, capsys):
        out = tmp_path / "plan.json"
        assert main(["faults", "sample", "--out", str(out)]) == 0
        assert out.exists()
        assert "fault windows" in capsys.readouterr().out

    def test_sample_rejects_short_duration(self, capsys):
        assert main(["faults", "sample", "--duration", "100"]) == 2
        assert "runway" in capsys.readouterr().err

    def test_validate_accepts_good_plan(self, tmp_path, capsys):
        from repro.faults.plan import FaultPlan

        path = tmp_path / "plan.json"
        FaultPlan.sample(seed=2).to_file(path)
        assert main(["faults", "validate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "valid" in out
        assert "link_outage" in out

    def test_validate_rejects_bad_plan(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        path.write_text('{"version": 7}')
        assert main(["faults", "validate", str(path)]) == 2
        assert "invalid plan" in capsys.readouterr().err

    def test_validate_missing_file(self, tmp_path, capsys):
        assert main(["faults", "validate", str(tmp_path / "no.json")]) == 2
        assert "no such plan" in capsys.readouterr().err


class TestTrainerFaultsSample:
    def test_trainer_flag_emits_trainer_plan(self, capsys):
        from repro.faults.plan import TRAINER_KINDS, FaultPlan

        assert main(["faults", "sample", "--trainer", "--epochs", "8"]) == 0
        plan = FaultPlan.from_json(capsys.readouterr().out)
        assert {spec.kind for spec in plan.faults} == set(TRAINER_KINDS)

    def test_trainer_flag_rejects_short_epoch_runway(self, capsys):
        assert main(["faults", "sample", "--trainer", "--epochs", "3"]) == 2
        assert "epochs" in capsys.readouterr().err


class TestTrainCommand:
    def test_wiring_and_summary_output(self, tmp_path, capsys, monkeypatch):
        calls = {}

        def fake_run_training(ckpt, **kwargs):
            calls["ckpt"] = ckpt
            calls.update(kwargs)
            return {
                "scale": "quick", "epochs": 3, "resumed": kwargs["resume"],
                "train_loss": 0.25, "val_loss": 0.5, "recoveries": 1,
                "checkpoint_write_failures": 0, "digest": "ab" * 8,
                "checkpoint": str(ckpt),
            }

        monkeypatch.setattr(
            "repro.models.training_runtime.run_training", fake_run_training
        )
        ckpt = tmp_path / "fit.ckpt"
        assert main([
            "train", "--ckpt", str(ckpt), "--resume",
            "--epochs", "3", "--scale", "quick", "--seed", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "model digest:" in out and "ab" * 8 in out
        assert "(resumed)" in out
        assert calls["ckpt"] == str(ckpt)
        assert calls["resume"] is True
        assert calls["epochs"] == 3
        assert calls["seed"] == 4
        assert calls["plan"] is None

    def test_faults_flag_loads_trainer_plan(self, tmp_path, capsys, monkeypatch):
        from repro.faults.plan import FaultPlan

        plan_path = tmp_path / "plan.json"
        FaultPlan.sample_trainer(seed=0, epochs=8).to_file(plan_path)
        seen = {}

        def fake_run_training(ckpt, **kwargs):
            seen["plan"] = kwargs["plan"]
            return {
                "scale": "quick", "epochs": 1, "resumed": False,
                "train_loss": 0.1, "val_loss": None, "recoveries": 0,
                "checkpoint_write_failures": 0, "digest": "00" * 8,
                "checkpoint": str(ckpt),
            }

        monkeypatch.setattr(
            "repro.models.training_runtime.run_training", fake_run_training
        )
        assert main([
            "train", "--ckpt", str(tmp_path / "f.ckpt"),
            "--faults", str(plan_path), "--scale", "quick",
        ]) == 0
        assert seen["plan"] is not None
        assert len(seen["plan"].faults) == 3

    def test_rejects_missing_fault_plan(self, tmp_path, capsys):
        code = main([
            "train", "--ckpt", str(tmp_path / "f.ckpt"),
            "--faults", str(tmp_path / "no.json"),
        ])
        assert code == 2
        assert "--faults" in capsys.readouterr().err


class TestRetrainCommand:
    def test_gated_summary_output(self, capsys, monkeypatch):
        def fake_run_gated_retrain(**kwargs):
            assert kwargs["gate"].tolerance == 0.1
            return {
                "scale": "quick",
                "decisions": [
                    {"kind": "best_effort", "promoted": True,
                     "reason": "promoted", "candidate_r2": 0.9,
                     "incumbent_r2": 0.8, "elapsed_s": 1.0},
                    {"kind": "latency_critical", "promoted": False,
                     "reason": "regression", "candidate_r2": 0.2,
                     "incumbent_r2": 0.8, "elapsed_s": 1.0},
                ],
                "promoted": 1, "rejected": 1,
            }

        monkeypatch.setattr(
            "repro.models.training_runtime.run_gated_retrain",
            fake_run_gated_retrain,
        )
        assert main([
            "retrain", "--gate", "--tolerance", "0.1", "--scale", "quick",
        ]) == 0
        out = capsys.readouterr().out
        assert "gated promotion" in out
        assert "kept incumbent" in out
        assert "promoted 1, rejected 1" in out
