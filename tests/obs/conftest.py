import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _obs_disabled_after_test():
    """Never leak an enabled observability session into other tests."""
    yield
    obs.disable()
