"""Smoke tests: the shipped examples must run end to end.

The two training-free examples run fully; the training examples are
exercised through their underlying entry points elsewhere
(tests/integration/test_pipeline.py) to keep the suite fast.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestQuickstart:
    def test_runs_and_reports(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "throughput cap 2.50 Gbps" in out
        assert "mean remote degradation" in out
        assert "nweight" in out


class TestCapacityPlanning:
    def test_runs_and_ranks(self, capsys):
        load_example("capacity_planning").main()
        out = capsys.readouterr().out
        assert "saturation knee" in out
        assert "safest offload candidates" in out
        # The mild benchmarks must rank safest.
        tail = out.split("safest offload candidates:")[1]
        assert "gmm" in tail and "pca" in tail
        assert "nweight" not in tail


class TestMultiNodeFleet:
    def test_runs_and_pooling_throttles_less(self, capsys):
        load_example("multi_node_fleet").main()
        out = capsys.readouterr().out
        assert "pooled" in out
        assert "shared-segment" in out
        assert "more often than the pooled arbiter" in out


class TestHeterogeneousTiers:
    def test_runs_and_keeps_sensitive_apps_local(self, capsys):
        load_example("heterogeneous_tiers").main()
        out = capsys.readouterr().out
        assert "beta = 0.6" in out
        assert "nweight/lr stay in local DRAM" in out


class TestOfflineWorkflow:
    def test_runs_end_to_end(self, capsys, tmp_path, monkeypatch):
        module = load_example("offline_training_workflow")
        monkeypatch.setattr(sys, "argv", ["prog", str(tmp_path)])
        module.main()
        out = capsys.readouterr().out
        assert "verified after reload" in out
        assert (tmp_path / "system_state.npz").exists()
        assert (tmp_path / "scenario_0.npz").exists()


class TestTrainingExamplesImportable:
    @pytest.mark.parametrize("name", ["orchestrate_cluster", "online_prediction"])
    def test_module_loads_without_executing(self, name):
        # Importing must not kick off training (guarded by __main__).
        module = load_example(name)
        assert callable(module.main)
