import numpy as np
import pytest

from repro.cluster import ClusterEngine
from repro.hardware import METRIC_NAMES, PerfCounters, Testbed, TestbedConfig
from repro.telemetry import Watcher
from repro.workloads import MemoryMode, spark_profile


def sample(value: float) -> PerfCounters:
    return PerfCounters.from_array(np.full(len(METRIC_NAMES), value))


class TestObserve:
    def test_history_window_shape(self):
        watcher = Watcher(history_capacity_s=100.0)
        for i in range(10):
            watcher.observe(float(i + 1), sample(i))
        window = watcher.history(20.0)
        assert window.shape == (20, len(METRIC_NAMES))
        assert np.allclose(window[-10:, 0], np.arange(10.0))
        assert np.allclose(window[:10, 0], 0.0)  # zero-padded warm-up

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            Watcher().history(0.0)

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            Watcher(dt=0.0)


class TestAttach:
    def test_mirrors_engine_trace_exactly(self):
        engine = ClusterEngine(testbed=Testbed(TestbedConfig(counter_noise=0.05)))
        watcher = Watcher()
        watcher.attach(engine)
        engine.deploy(spark_profile("scan"), MemoryMode.LOCAL)
        engine.run_for(30.0)
        window = watcher.history(30.0)
        assert np.allclose(window, engine.trace.metrics[-30:])

    def test_attached_tick_still_returns_pressure(self):
        engine = ClusterEngine()
        watcher = Watcher()
        watcher.attach(engine)
        pressure = engine.tick()
        assert pressure.cpu_utilization == 0.0
        assert len(watcher.store) == 1

    def test_double_attach_is_idempotent(self):
        # Regression: re-attaching used to re-wrap engine.tick, so every
        # tick double-recorded (and push raised on the duplicate time).
        engine = ClusterEngine()
        watcher = Watcher()
        watcher.attach(engine)
        watcher.attach(engine)
        engine.run_for(5.0)
        assert len(watcher.store) == 5

    def test_two_watchers_each_record_once(self):
        engine = ClusterEngine()
        first, second = Watcher(), Watcher()
        first.attach(engine)
        second.attach(engine)
        first.attach(engine)  # re-attach after another watcher joined
        engine.run_for(4.0)
        assert len(first.store) == 4
        assert len(second.store) == 4
        assert np.allclose(first.history(4.0), second.history(4.0))

    def test_foreign_rewrap_raises(self):
        engine = ClusterEngine()
        Watcher().attach(engine)
        original = engine.tick
        engine.tick = lambda: original()  # someone re-wraps tick
        with pytest.raises(RuntimeError):
            Watcher().attach(engine)

    def test_detach_stops_recording(self):
        engine = ClusterEngine()
        watcher = Watcher()
        watcher.attach(engine)
        engine.run_for(3.0)
        watcher.detach(engine)
        engine.run_for(3.0)
        assert len(watcher.store) == 3
        watcher.detach(engine)  # safe when already detached
