"""Span tracing with Chrome trace-event export.

:class:`SpanTracer` records nested spans (context-manager API) against a
wall clock and, optionally, the simulator's own clock, and exports them
as Chrome trace-event JSON — the format rendered by ``chrome://tracing``
and `Perfetto <https://ui.perfetto.dev>`_.  Spans are "complete" events
(``ph: "X"``) so nesting is reconstructed by the viewer from timestamp
containment; the tracer additionally records each span's depth and its
simulation timestamp in ``args`` so tests (and post-hoc scripts) need no
viewer to reason about structure.

When observability is disabled the process uses :data:`NULL_TRACER`,
whose :meth:`~NullTracer.span` returns a shared no-op context manager.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Callable

__all__ = ["Span", "SpanTracer", "NullTracer", "NULL_TRACER", "NULL_SPAN"]


class Span:
    """One in-flight span; use via ``with tracer.span(...) as span:``."""

    __slots__ = ("tracer", "name", "category", "args", "start_us", "_done")

    def __init__(
        self, tracer: "SpanTracer", name: str, category: str, args: dict
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.category = category
        self.args = args
        self.start_us = 0.0
        self._done = False

    def set(self, **args: object) -> None:
        """Attach extra attributes to the span while it is open."""
        self.args.update(args)

    def __enter__(self) -> "Span":
        self.start_us = self.tracer._now_us()
        self.tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._done:  # pragma: no cover - double-exit guard
            return
        self._done = True
        end_us = self.tracer._now_us()
        depth = self.tracer._pop(self)
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        self.tracer._record(self, end_us, depth)


class SpanTracer:
    """Collects spans into an in-memory Chrome trace."""

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        process_name: str = "repro",
    ) -> None:
        self._clock = clock
        self._epoch = clock()
        self.process_name = process_name
        self.events: list[dict] = []
        self._stacks: dict[int, list[Span]] = {}
        self._lock = threading.Lock()

    # -- clock ----------------------------------------------------------------
    def _now_us(self) -> float:
        return (self._clock() - self._epoch) * 1e6

    # -- span lifecycle -------------------------------------------------------
    def span(
        self,
        name: str,
        category: str = "repro",
        sim_time: float | None = None,
        **args: object,
    ) -> Span:
        """Open a nested span.  ``sim_time`` stamps the simulator clock."""
        if sim_time is not None:
            args["sim_time_s"] = float(sim_time)
        return Span(self, name, category, args)

    def record_complete(
        self,
        name: str,
        start: float,
        end: float,
        category: str = "repro",
        **args: object,
    ) -> None:
        """Record an already-measured interval as a complete event.

        ``start``/``end`` are raw clock readings (the tracer's own
        clock, ``time.perf_counter`` by default) — the phase-accounting
        hot path measures intervals itself and forwards them here, so a
        phase costs one event append instead of a :class:`Span` object.
        """
        with self._lock:
            self.events.append(
                {
                    "name": name,
                    "cat": category,
                    "ph": "X",
                    "ts": (start - self._epoch) * 1e6,
                    "dur": max(0.0, end - start) * 1e6,
                    "pid": 1,
                    "tid": threading.get_ident() % 2**31,
                    "args": dict(args),
                }
            )

    def instant(self, name: str, category: str = "repro", **args: object) -> None:
        """Record a zero-duration marker event."""
        with self._lock:
            self.events.append(
                {
                    "name": name,
                    "cat": category,
                    "ph": "i",
                    "ts": self._now_us(),
                    "pid": 1,
                    "tid": threading.get_ident() % 2**31,
                    "s": "t",
                    "args": dict(args),
                }
            )

    def _push(self, span: Span) -> None:
        self._stacks.setdefault(threading.get_ident(), []).append(span)

    def _pop(self, span: Span) -> int:
        """Remove ``span`` from its thread's stack; return its depth."""
        stack = self._stacks.get(threading.get_ident(), [])
        if span in stack:
            depth = stack.index(span)
            del stack[depth:]
            return depth
        return 0  # pragma: no cover - exited out of order

    def _record(self, span: Span, end_us: float, depth: int) -> None:
        event = {
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": span.start_us,
            "dur": max(0.0, end_us - span.start_us),
            "pid": 1,
            "tid": threading.get_ident() % 2**31,
            "args": {**span.args, "depth": depth},
        }
        with self._lock:
            self.events.append(event)

    # -- queries / export ----------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def spans(self, name: str | None = None) -> list[dict]:
        """Completed span events, optionally filtered by name."""
        return [
            e
            for e in self.events
            if e["ph"] == "X" and (name is None or e["name"] == name)
        ]

    def reset(self) -> None:
        with self._lock:
            self.events.clear()
            self._stacks.clear()
            self._epoch = self._clock()

    def to_chrome_trace(self) -> dict:
        """Chrome trace-event JSON object (Perfetto-loadable)."""
        metadata = [
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": 1,
                "tid": 0,
                "args": {"name": self.process_name},
            }
        ]
        return {
            "traceEvents": metadata + sorted(self.events, key=lambda e: e["ts"]),
            "displayTimeUnit": "ms",
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_chrome_trace(), indent=indent)


class _NullSpan:
    """Shared no-op context manager for the disabled path."""

    __slots__ = ()

    def set(self, **args: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()

#: Public no-op span: hot paths write
#: ``with tracer.span(...) if obs.enabled() else obs.NULL_SPAN:`` so the
#: disabled path allocates nothing (not even the kwargs dict a
#: ``NullTracer.span(...)`` call would build).
NULL_SPAN = _NULL_SPAN


class NullTracer:
    """Zero-cost tracer used while observability is disabled."""

    events: list[dict] = []

    def span(
        self,
        name: str,
        category: str = "repro",
        sim_time: float | None = None,
        **args: object,
    ) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, category: str = "repro", **args: object) -> None:
        pass

    def record_complete(
        self,
        name: str,
        start: float,
        end: float,
        category: str = "repro",
        **args: object,
    ) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def spans(self, name: str | None = None) -> list[dict]:
        return []

    def reset(self) -> None:
        pass

    def to_chrome_trace(self) -> dict:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_chrome_trace(), indent=indent)


NULL_TRACER = NullTracer()
