#!/usr/bin/env python
"""Kill-and-resume soak for the resilient training runtime.

Repeatedly murders a checkpointed ``repro train`` run with SIGKILL at a
different epoch boundary each round, resumes it to completion, and
asserts the resumed fit is **bit-identical** to an uninterrupted
straight-through fit — same loss history length, same final losses, and
the same content digest over every model parameter and buffer.

Each round runs in a subprocess (``python -m repro train``) so the kill
is a real process death, not a simulated one: nothing in-memory
survives; only the atomically-written checkpoint file does.

Usage::

    python examples/train_resume_soak.py              # kill at 3 boundaries
    python examples/train_resume_soak.py --rounds 5   # more kill points
    python examples/train_resume_soak.py --epochs 8   # shorter fits

Exit status 0 iff every round resumed to the reference digest.
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ENV = {**os.environ, "PYTHONPATH": str(REPO / "src"), "ADRIAS_SCALE": "quick"}


def train(ckpt: Path, epochs: int, *extra: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", "train", "--ckpt", str(ckpt),
         "--epochs", str(epochs), "--seed", "0", *extra],
        capture_output=True, text=True, env=ENV, cwd=REPO,
    )


def digest_of(output: str) -> str:
    match = re.search(r"model digest:\s+([0-9a-f]+)", output)
    if not match:
        raise RuntimeError(f"no digest in output:\n{output}")
    return match.group(1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--rounds", type=int, default=3,
                        help="number of kill points to exercise")
    args = parser.parse_args()
    if args.rounds >= args.epochs:
        parser.error("need rounds < epochs so every kill leaves work to do")

    with tempfile.TemporaryDirectory() as tmp:
        reference_ckpt = Path(tmp) / "reference.ckpt"
        print(f"reference: straight-through fit, {args.epochs} epochs")
        ref = train(reference_ckpt, args.epochs)
        if ref.returncode != 0:
            print(ref.stdout + ref.stderr)
            return 1
        reference = digest_of(ref.stdout)
        print(f"  digest {reference}")

        failures = 0
        # Spread the kill points across the epoch range.
        kill_points = sorted({
            1 + (i * (args.epochs - 1)) // args.rounds
            for i in range(args.rounds)
        })
        for kill_at in kill_points:
            ckpt = Path(tmp) / f"kill{kill_at}.ckpt"
            crashed = train(
                ckpt, args.epochs, "--kill-after-epoch", str(kill_at)
            )
            if crashed.returncode != -signal.SIGKILL:
                print(f"round kill@{kill_at}: expected SIGKILL death, got "
                      f"rc={crashed.returncode}")
                failures += 1
                continue
            resumed = train(ckpt, args.epochs, "--resume")
            if resumed.returncode != 0:
                print(f"round kill@{kill_at}: resume failed\n"
                      + resumed.stdout + resumed.stderr)
                failures += 1
                continue
            digest = digest_of(resumed.stdout)
            ok = digest == reference
            print(f"  kill@{kill_at}: resumed, digest "
                  f"{'matches' if ok else 'MISMATCH ' + digest}")
            failures += 0 if ok else 1

    if failures:
        print(f"{failures} round(s) failed")
        return 1
    print(f"all {len(kill_points)} kill-and-resume rounds bit-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
