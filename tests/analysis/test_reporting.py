import pytest

from repro.analysis import format_kv, format_table


class TestFormatTable:
    def test_alignment_and_content(self):
        out = format_table(
            ["name", "value"],
            [("alpha", 1.5), ("b", 22)],
            title="Demo",
        )
        lines = out.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "alpha" in lines[3]
        assert "22" in lines[4]

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [("only-one",)])

    def test_empty_headers_raise(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out

    def test_float_formatting(self):
        out = format_table(["v"], [(1.23456,), (1e9,), (float("nan"),)])
        assert "1.235" in out
        assert "e+" in out
        assert "nan" in out


class TestFormatKv:
    def test_alignment(self):
        out = format_kv({"short": 1, "a-much-longer-key": 2.5}, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1].index(":") == lines[2].index(":")

    def test_empty(self):
        assert format_kv({}) == ""
