import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import SharedCache


class TestSharedCache:
    def test_no_inflation_below_floor(self):
        cache = SharedCache(20.0, pressure_floor=0.7)
        state = cache.resolve(10.0)
        assert state.miss_inflation == 0.0
        assert not state.oversubscribed

    def test_inflation_grows_linearly_past_floor(self):
        cache = SharedCache(20.0, pressure_floor=0.7, inflation_slope=1.0)
        assert cache.resolve(20.0).miss_inflation == pytest.approx(0.3)
        assert cache.resolve(40.0).miss_inflation == pytest.approx(1.3)

    def test_oversubscription_flag(self):
        cache = SharedCache(20.0)
        assert cache.resolve(25.0).oversubscribed
        assert not cache.resolve(20.0).oversubscribed

    @given(demand=st.floats(min_value=0, max_value=1000, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_inflation_nonnegative_and_monotone(self, demand):
        cache = SharedCache(20.0)
        state = cache.resolve(demand)
        assert state.miss_inflation >= 0.0
        bigger = cache.resolve(demand + 1.0)
        assert bigger.miss_inflation >= state.miss_inflation

    def test_negative_demand_raises(self):
        with pytest.raises(ValueError):
            SharedCache(20.0).resolve(-1.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SharedCache(0.0)
        with pytest.raises(ValueError):
            SharedCache(10.0, pressure_floor=1.0)
        with pytest.raises(ValueError):
            SharedCache(10.0, inflation_slope=0.0)
