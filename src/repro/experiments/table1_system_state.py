"""Experiment Table I / Fig. 12 — system-state prediction accuracy.

Trains the system-state model on 60% of the sliding-window dataset and
reports the per-metric R² on the held-out 40% plus residual diagnostics
(actual vs predicted, Fig. 12).  Paper numbers: R² 0.964-0.999 per
event, 0.993 average.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import format_table
from repro.experiments.common import (
    ExperimentScale,
    get_system_state_dataset,
    scale_from_env,
)
from repro.hardware.counters import METRIC_NAMES
from repro.models.system_state import SystemStatePredictor

__all__ = ["Table1Result", "run"]


@dataclass(frozen=True)
class Table1Result:
    r2_per_metric: dict[str, float]
    average_r2: float
    #: Fig. 12 residual data: per-metric (actual, predicted) pairs.
    actual: np.ndarray
    predicted: np.ndarray

    def residual_fraction_within(self, tolerance: float = 0.15) -> float:
        """Fraction of predictions within ±tolerance of the actual value.

        The tolerance is relative with an absolute floor of 10% of each
        metric's standard deviation: remote-traffic counters are ~0 in
        calm phases, where a purely relative criterion would demand
        sub-flit precision to call the 45-degree line a match (Fig. 12
        plots absolute values, not ratios).
        """
        floor = 0.1 * self.actual.std(axis=0, keepdims=True)
        denom = np.maximum(np.abs(self.actual), floor)
        return float(
            np.mean(np.abs(self.predicted - self.actual) / denom <= tolerance)
        )

    def format(self) -> str:
        rows = [
            (name, f"{self.r2_per_metric[name]:.4f}") for name in METRIC_NAMES
        ]
        rows.append(("Avg.", f"{self.average_r2:.4f}"))
        return format_table(
            ["event", "R2"],
            rows,
            title="Table I — system-state model R2 per performance event",
        )

    def plot(self, metric: str = "mem_loads") -> str:
        """Fig. 12-style actual-vs-predicted scatter for one event."""
        from repro.analysis.plotting import ascii_scatter

        column = METRIC_NAMES.index(metric)
        return ascii_scatter(
            self.actual[:, column],
            self.predicted[:, column],
            title=f"Fig. 12 — {metric}: actual (x) vs predicted (y)",
            diagonal=True,
        )


def run(
    scale: ExperimentScale | None = None,
    test_fraction: float = 0.4,
    seed: int = 7,
) -> Table1Result:
    scale = scale if scale is not None else scale_from_env()
    dataset = get_system_state_dataset(scale)
    n = len(dataset)
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    test_idx, train_idx = order[:n_test], order[n_test:]

    predictor = SystemStatePredictor(seed=seed)
    predictor.fit(
        dataset.windows[train_idx],
        dataset.targets[train_idx],
        epochs=scale.epochs_system,
    )
    scores = predictor.evaluate(dataset.windows[test_idx], dataset.targets[test_idx])
    predicted = predictor.predict(dataset.windows[test_idx])
    return Table1Result(
        r2_per_metric={name: scores[name] for name in METRIC_NAMES},
        average_r2=scores["average"],
        actual=dataset.targets[test_idx],
        predicted=predicted,
    )
