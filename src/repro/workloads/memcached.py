"""Memcached latency-critical workload profile.

Memcached is multi-threaded, so it sustains a higher nominal throughput
(~100,000 ops/s under the §IV-A memtier configuration: 4 threads x 200
clients, 40,000 requests per client) at a lower base tail latency than
Redis.  Like Redis it is mode-insensitive in isolation (R4) and mostly
memory-bandwidth sensitive (R6).
"""

from __future__ import annotations

from repro.workloads.base import SensitivityVector, WorkloadKind
from repro.workloads.redis import LCProfile

__all__ = ["MEMCACHED"]

MEMCACHED = LCProfile(
    name="memcached",
    kind=WorkloadKind.LATENCY_CRITICAL,
    nominal_runtime_s=320.0,  # ~32M requests at ~100k ops/s
    remote_slowdown=1.015,
    stacking=0.0,
    cpu_threads=8.0,
    l2_mb=0.8,
    llc_mb=2.0,
    llc_access_gbps=2.5,
    mem_bw_gbps=1.2,
    remote_bw_gbps=0.25,
    footprint_gb=24.0,
    sensitivity=SensitivityVector(cpu=0.35, l2=0.1, llc=0.2, membw=0.65, link=0.45),
    base_p99_ms=0.8,
    tail_ratio=2.0,
    ops_per_sec=100000.0,
    nominal_rho=0.5,
)
