"""repro.experiments — one driver per paper table/figure.

Every module exposes ``run(...)`` returning a structured result object
with a ``format()`` method that prints the same rows/series the paper
reports.  See DESIGN.md §3 for the experiment-to-module index.

Modules
-------
- ``fig02_link_saturation`` — Fig. 2 (R1-R3)
- ``fig03_spark_isolation`` — Fig. 3 (R4, BE)
- ``fig04_lc_isolation`` — Fig. 4 (R4, LC)
- ``fig05_interference_heatmap`` — Fig. 5 (R5-R7)
- ``fig06_correlation`` — Fig. 6 (R8)
- ``fig08_scenarios`` — Fig. 8 (scenario phases)
- ``fig09_10_distributions`` — Figs. 9-10 (distributions)
- ``table1_system_state`` — Table I + Fig. 12
- ``fig13_be_accuracy`` — Fig. 13a-d (BE accuracy + stacking ablation)
- ``fig14_lc_accuracy`` — Fig. 14 (LC accuracy)
- ``fig15_generalization`` — Fig. 15a/b (leave-one-out, sample scaling)
- ``fig16_be_orchestration`` — Fig. 16 (β comparison vs baselines)
- ``fig17_lc_orchestration`` — Fig. 17 (QoS violations/offloads)
- ``fleet_scaling`` — §VII rack scale-out (pooled vs shared-segment)
- ``availability`` — failure domains: crash/rejoin + device-loss recovery
- ``traffic_reduction`` — §VI-B traffic accounting
- ``ablations`` — DESIGN.md §5 extra ablations
"""

from repro.experiments import (
    ablations,
    availability,
    fig02_link_saturation,
    fig03_spark_isolation,
    fig04_lc_isolation,
    fig05_interference_heatmap,
    fig06_correlation,
    fig08_scenarios,
    fig09_10_distributions,
    fig13_be_accuracy,
    fig14_lc_accuracy,
    fig15_generalization,
    fig16_be_orchestration,
    fig17_lc_orchestration,
    fleet_scaling,
    table1_system_state,
    traffic_reduction,
)
from repro.experiments.common import (
    DEFAULT,
    PAPER,
    QUICK,
    ExperimentScale,
    scale_from_env,
)

__all__ = [
    "DEFAULT",
    "ExperimentScale",
    "PAPER",
    "QUICK",
    "ablations",
    "availability",
    "fig02_link_saturation",
    "fig03_spark_isolation",
    "fig04_lc_isolation",
    "fig05_interference_heatmap",
    "fig06_correlation",
    "fig08_scenarios",
    "fig09_10_distributions",
    "fig13_be_accuracy",
    "fig14_lc_accuracy",
    "fig15_generalization",
    "fig16_be_orchestration",
    "fig17_lc_orchestration",
    "fleet_scaling",
    "scale_from_env",
    "table1_system_state",
    "traffic_reduction",
]
