"""``repro.obs.perf`` — the repo's single performance-observability
surface.

Three pieces, one theme — *prove each step faster, not slower*:

* :mod:`repro.obs.perf.accounting` — deterministic phase-level tick
  accounting (wall time + call counts per named phase), bit-inert when
  disabled, exportable to the metrics registry and as a Chrome-trace
  timeline;
* :mod:`repro.obs.perf.profiler` — the statistical interval-sampling
  profiler (moved here from ``repro.obs.live.profiler``);
* :mod:`repro.obs.perf.gate` — the benchmark-baseline regression gate
  behind ``repro obs perfcheck`` and the CI ``perf-smoke`` job.

:mod:`repro.obs.perf.bench` (imported lazily — it pulls in the model
stack) measures engine ticks/sec and policy decisions/sec and emits
``BENCH_engine.json``.
"""

from repro.obs.perf.accounting import (
    PHASE_NAMES,
    PhaseAccounting,
    accounting,
    disable_phases,
    enable_phases,
    phases_session,
)
from repro.obs.perf.gate import (
    GateCheck,
    GateResult,
    compare_reports,
    extract_metrics,
    load_report,
)
from repro.obs.perf.profiler import IntervalProfiler

__all__ = [
    # accounting
    "PhaseAccounting",
    "accounting",
    "enable_phases",
    "disable_phases",
    "phases_session",
    "PHASE_NAMES",
    # gate
    "GateCheck",
    "GateResult",
    "compare_reports",
    "extract_metrics",
    "load_report",
    # profiler
    "IntervalProfiler",
]
