"""Performance-event definitions and counter synthesis.

The Watcher of §V-A monitors seven events; this module defines their
canonical names/ordering (used by models, datasets and the Table I
bench) and synthesizes per-second counter values from the resolved
hardware state.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

__all__ = ["METRIC_NAMES", "PerfCounters", "CounterSynthesizer"]

#: Canonical metric ordering (matches Table I of the paper).
METRIC_NAMES: tuple[str, ...] = (
    "llc_loads",
    "llc_misses",
    "mem_loads",
    "mem_stores",
    "rmt_tx_flits",
    "rmt_rx_flits",
    "link_latency",
)


@dataclass(frozen=True)
class PerfCounters:
    """One sample of the seven monitored events (per-second rates).

    Field order matches :data:`METRIC_NAMES`.
    """

    llc_loads: float
    llc_misses: float
    mem_loads: float
    mem_stores: float
    rmt_tx_flits: float
    rmt_rx_flits: float
    link_latency: float

    def as_array(self) -> np.ndarray:
        return np.array([getattr(self, f.name) for f in fields(self)])

    @classmethod
    def from_array(cls, values: np.ndarray) -> "PerfCounters":
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (len(METRIC_NAMES),):
            raise ValueError(
                f"expected {len(METRIC_NAMES)} metric values, got {values.shape}"
            )
        return cls(*(float(v) for v in values))

    @classmethod
    def zeros(cls) -> "PerfCounters":
        return cls(*([0.0] * len(METRIC_NAMES)))


class CounterSynthesizer:
    """Derive perf-counter samples from resolved hardware state.

    The causal chain mirrors the real machine:

    * LLC loads track the aggregate cache-access rate of the tenants;
      misses are loads times a miss rate inflated by LLC contention (R6).
    * Local memory loads/stores track local DRAM traffic *plus* the
      remote traffic, because ThymesisFlow remote pages are
      memory-mapped and all remote traffic is handled on-chip by the
      local node's memory controllers (R3).
    * RMT tx/rx flits count 32 B flits over the delivered link
      throughput; tx and rx are nearly symmetric (reads dominate but
      every read has a response).
    * Link latency comes straight from the back-pressure model (R2).
    """

    #: Cache-line size of the POWER9 LLC in bytes.
    line_bytes: float = 128.0
    #: Baseline LLC miss rate of a healthy mix.
    base_miss_rate: float = 0.08
    #: How much of a unit of miss inflation shows up in the measured rate.
    miss_rate_gain: float = 0.30
    #: Fraction of memory traffic that is loads (rest is stores).
    load_fraction: float = 0.68
    #: Fraction of remote traffic that additionally occupies local
    #: memory controllers (R3).
    remote_reflection: float = 0.9

    def __init__(self, flit_bytes: int = 32, noise: float = 0.0, seed: int = 0) -> None:
        if flit_bytes <= 0:
            raise ValueError("flit size must be positive")
        if not 0 <= noise < 1:
            raise ValueError("noise must be in [0, 1)")
        self.flit_bytes = flit_bytes
        self.noise = noise
        self._rng = np.random.default_rng(seed)

    def synthesize(
        self,
        llc_access_gbps: float,
        miss_inflation: float,
        local_bw_gbps: float,
        remote_delivered_gbps: float,
        link_latency_cycles: float,
    ) -> PerfCounters:
        """Produce one per-second counter sample."""
        if min(llc_access_gbps, local_bw_gbps, remote_delivered_gbps) < 0:
            raise ValueError("traffic inputs cannot be negative")
        llc_loads = llc_access_gbps * 1e9 / 8.0 / self.line_bytes
        miss_rate = min(0.95, self.base_miss_rate + self.miss_rate_gain * miss_inflation)
        llc_misses = llc_loads * miss_rate

        mem_traffic_gbps = local_bw_gbps + self.remote_reflection * remote_delivered_gbps
        mem_accesses = mem_traffic_gbps * 1e9 / 8.0 / self.line_bytes
        mem_loads = mem_accesses * self.load_fraction
        mem_stores = mem_accesses * (1.0 - self.load_fraction)

        remote_bytes = remote_delivered_gbps * 1e9 / 8.0
        flits = remote_bytes / self.flit_bytes
        # Read-dominated traffic: tx carries requests + write payloads,
        # rx carries read responses; both scale with delivered bytes.
        rmt_tx = flits * 0.52
        rmt_rx = flits * 0.48

        values = np.array(
            [llc_loads, llc_misses, mem_loads, mem_stores, rmt_tx, rmt_rx,
             link_latency_cycles]
        )
        if self.noise > 0:
            values = values * self._rng.normal(1.0, self.noise, size=values.shape)
            values = np.maximum(values, 0.0)
        return PerfCounters.from_array(values)
