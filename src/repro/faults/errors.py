"""Exception taxonomy of the fault-injection subsystem.

The degradation contract between the Predictor and the policies is
expressed through :class:`InferenceFault`: any inference-path failure —
injected or organic — surfaces as a subclass, which the AdriasPolicy
catches, counts against its circuit breaker and converts into a
fallback decision instead of crashing the replay.
"""

from __future__ import annotations

__all__ = [
    "FaultPlanError",
    "InferenceFault",
    "InferenceTimeout",
    "CorruptPrediction",
    "CheckpointError",
    "RetrainTimeout",
]


class FaultPlanError(ValueError):
    """A fault plan failed validation (unknown kind, bad parameters)."""


class InferenceFault(RuntimeError):
    """Base class for recoverable Predictor inference failures."""


class InferenceTimeout(InferenceFault):
    """An inference call exceeded the caller's decision deadline."""

    def __init__(self, latency_s: float, deadline_s: float) -> None:
        super().__init__(
            f"inference took {latency_s:.3f}s > deadline {deadline_s:.3f}s"
        )
        self.latency_s = latency_s
        self.deadline_s = deadline_s


class CorruptPrediction(InferenceFault):
    """The Predictor produced non-finite (NaN/inf) estimates."""


class CheckpointError(RuntimeError):
    """A checkpoint file is unreadable or inconsistent with the run."""


class RetrainTimeout(RuntimeError):
    """A retrain attempt overran its wall-clock budget.

    Raised inside the gated-promotion path and handled there: the
    candidate is abandoned and the incumbent model stays in place.
    """

    def __init__(self, elapsed_s: float, budget_s: float) -> None:
        super().__init__(
            f"retrain took {elapsed_s:.3f}s > budget {budget_s:.3f}s"
        )
        self.elapsed_s = elapsed_s
        self.budget_s = budget_s
